"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's Section 7
and both prints it and archives it under ``benchmarks/results/`` so the
numbers behind EXPERIMENTS.md are always reproducible from a clean
checkout with ``pytest benchmarks/ --benchmark-only``.
"""

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def report():
    """Return a callable that prints and archives a rendered table.

    Benchmarks that produce :class:`repro.bench.BenchRow` objects pass
    them via ``rows=``; the fixture then also archives a machine-readable
    ``results/<name>.json`` in the bench-baseline schema, usable directly
    with ``python -m repro.bench --compare`` (see docs/benchmarks.md).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _report(name: str, text: str, rows=None, backend: str = "sim",
                app=None) -> None:
        print(text)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        if rows:
            from repro.bench.baseline import baseline_dict
            from repro.core.valves import memoization_enabled

            document = baseline_dict(rows, backend=backend, quick=False,
                                     memoization=memoization_enabled(),
                                     app=app)
            json_path = os.path.join(RESULTS_DIR, f"{name}.json")
            with open(json_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")

    return _report


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument callable exactly once under pytest-benchmark.

    The interesting output of these benchmarks is the virtual-time table,
    not the wall-clock timing, so one round is enough."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
