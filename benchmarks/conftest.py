"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's Section 7
and both prints it and archives it under ``benchmarks/results/`` so the
numbers behind EXPERIMENTS.md are always reproducible from a clean
checkout with ``pytest benchmarks/ --benchmark-only``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def report():
    """Return a callable that prints and archives a rendered table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(text)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    return _report


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument callable exactly once under pytest-benchmark.

    The interesting output of these benchmarks is the virtual-time table,
    not the wall-clock timing, so one round is enough."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
