"""Input sensitivity (the Section-7.2 claims, on a finer grid).

* graph apps: "Fluid achieves better speedups on dense graphs than on
  sparse", at two vertex scales;
* FFT / DCT / MedusaDock: "larger input sizes lead to better results";
* threshold sensitivity grows with input size (Section 7.3, Figure 7).
"""


from repro.apps.dct import DCTApp
from repro.apps.fft import FFTApp
from repro.apps.graph_coloring import GraphColoringApp
from repro.apps.medusadock import MedusaDockApp
from repro.bench import render_table
from repro.workloads import (random_graph, random_tensor, random_vector,
                             synthetic_poses)


def latency(app, **kwargs):
    precise = app.run_precise()
    fluid = app.run_fluid(**kwargs)
    return fluid.makespan / precise.makespan


def test_graph_density_grid(report, run_once):
    def work():
        rows = []
        for vertices in (1000, 2000):
            for degree in (4, 8, 16):
                edges = vertices * degree
                name = f"{vertices}V_deg{degree}"
                gc = GraphColoringApp(random_graph(vertices, edges,
                                                   seed=103, name=name))
                rows.append(["graph_coloring", name, degree,
                             latency(gc)])
        return rows

    rows = run_once(work)
    report("sensitivity_graph_density", render_table(
        "Input sensitivity: graph coloring over a size x density grid",
        ["app", "input", "avg degree", "norm latency"], rows))
    # Densest beats sparsest at each scale (the paper's density claim).
    for vertices in (1000, 2000):
        grid = {row[2]: row[3] for row in rows
                if row[1].startswith(f"{vertices}V")}
        assert grid[16] <= grid[4] + 0.02


def test_payload_size_scaling(report, run_once):
    def work():
        rows = []
        for length in (512, 2048, 8192):
            fft = FFTApp([random_vector(length, seed=107)])
            rows.append(["fft", f"N{length}", latency(fft)])
        for side in (48, 96):
            dct = DCTApp(random_tensor(side, side, seed=107))
            rows.append(["dct", f"{side}x{side}", latency(dct)])
        for poses in (32, 128):
            dockings = [synthetic_poses(num_poses=poses, seed=s,
                                        name=f"p{s}") for s in range(4)]
            md = MedusaDockApp(dockings)
            rows.append(["medusadock", f"{poses}poses",
                         latency(md, valve="convergence")])
        return rows

    rows = run_once(work)
    report("sensitivity_payload_size", render_table(
        "Input sensitivity: payload size ('larger input sizes lead to "
        "better results')",
        ["app", "input", "norm latency"], rows))
    by_key = {(row[0], row[1]): row[2] for row in rows}
    assert by_key[("fft", "N8192")] <= by_key[("fft", "N512")] + 0.02
    assert by_key[("medusadock", "128poses")] <= \
        by_key[("medusadock", "32poses")] + 0.02


def test_threshold_sensitivity_grows_with_input(report, run_once):
    """Larger inputs: the latency swing across the threshold range is at
    least as large as for small inputs (framework overheads amortize)."""

    def swing(app):
        precise = app.run_precise()
        low = app.run_fluid(threshold=0.2).makespan / precise.makespan
        high = app.run_fluid(threshold=1.0).makespan / precise.makespan
        return high - low

    def work():
        small = swing(GraphColoringApp(
            random_graph(800, 6400, seed=109, name="small")))
        large = swing(GraphColoringApp(
            random_graph(2000, 24000, seed=109, name="large")))
        return small, large

    small, large = run_once(work)
    report("sensitivity_threshold_swing", render_table(
        "Input sensitivity: latency swing across thresholds (GC)",
        ["input", "swing (lat@1.0 - lat@0.2)"],
        [["small (800V/6.4K)", small], ["large (2K/24K)", large]]))
    assert large >= small - 0.05
