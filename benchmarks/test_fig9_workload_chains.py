"""Figure 9: different producer/consumer chains for Edge Detection.

The two-by-two matrix {Gaussian, Mean} x {Sobel, Laplacian} on the three
image classes.  Paper shapes: Sobel chains achieve higher latency
benefits than Laplacian ("Laplacian runs faster than Sobel", so the
overlappable consumer work is smaller); the accuracy of Laplacian is
more sensitive on the noisy MSC inputs.
"""

import numpy as np

from repro.apps.edge_detection import EdgeDetectionApp
from repro.bench import render_table
from repro.workloads import image_classes


def test_fig9_filter_matrix(report, run_once):
    images = image_classes(48, 48, seed=59)

    def work():
        rows = []
        for noise_filter in ("gaussian", "mean"):
            for gradient in ("sobel", "laplacian"):
                for image_name, image in images.items():
                    app = EdgeDetectionApp(image, noise_filter, gradient)
                    precise = app.run_precise()
                    fluid = app.run_fluid()
                    rows.append([f"{noise_filter}+{gradient}", image_name,
                                 fluid.makespan / precise.makespan,
                                 fluid.accuracy])
        return rows

    rows = run_once(work)
    report("fig9_workload_chains", render_table(
        "Figure 9 (Edge Detection): workload chains, normalized to the "
        "non-Fluid version of each chain",
        ["chain", "image", "norm latency", "norm accuracy"], rows))

    def mean_latency(gradient):
        return np.mean([row[2] for row in rows if gradient in row[0]])

    # Sobel (heavier consumer) gains more overlap than Laplacian.
    assert mean_latency("sobel") < mean_latency("laplacian")
    # Every chain still completes with high accuracy.
    assert min(row[3] for row in rows) > 0.8
