"""Figure 12: Fluid composed with conventional multithreading.

K-means, Edge Detection, Graph Coloring and FFT at 1..16 threads on the
20-core simulated machine; the fluid version is compared against the
conventional multithreaded (precise, overhead-free) version at the same
degree of parallelism.  Paper shapes: fluid wins at every thread count;
K-means' margin shrinks as parallelism grows (per-thread work shrinks
while guard/work-thread overheads persist); ED and GC margins stay
roughly flat; FFT saturates near 16 threads as the machine runs out of
cores.
"""


from repro.apps.edge_detection import EdgeDetectionApp
from repro.apps.fft import FFTApp
from repro.apps.graph_coloring import GraphColoringApp
from repro.apps.kmeans import KMeansApp
from repro.bench import render_series
from repro.workloads import random_graph, random_vector, synthetic_image

PARALLELISM = [1, 2, 4, 8, 16]


def sweep(app_factory):
    ratios = []
    for parallelism in PARALLELISM:
        app = app_factory()
        baseline = app.run_multithreaded_baseline(parallelism)
        fluid = app.run_fluid(parallelism=parallelism)
        ratios.append(fluid.makespan / baseline.makespan)
    return ratios


def test_fig12_multithreaded_apps(report, run_once):
    def work():
        return {
            "kmeans": sweep(lambda: KMeansApp(
                synthetic_image(48, 48, diversity=6, seed=67),
                num_clusters=5, epochs=5)),
            "edge_detection": sweep(lambda: EdgeDetectionApp(
                synthetic_image(64, 64, noise=12.0, seed=67))),
            "graph_coloring": sweep(lambda: GraphColoringApp(
                random_graph(1000, 12000, seed=67, name="1K_12K"))),
            "fft": sweep(lambda: FFTApp(
                [random_vector(1024, seed=s) for s in range(16)])),
        }

    series = run_once(work)
    report("fig12_multithreading", render_series(
        "Figure 12: fluid / multithreaded-baseline latency by thread count",
        "threads", PARALLELISM, series))

    for app_name, ratios in series.items():
        # Fluid parallelism is complementary to multithreading: it keeps
        # winning (or at worst breaking even) at every thread count.
        assert min(ratios) < 0.95, f"{app_name} never wins"
        assert max(ratios) < 1.25, f"{app_name} regresses badly"

    # K-means' margin shrinks as parallelism grows.
    km = series["kmeans"]
    assert km[-1] > km[0] - 0.02

    # FFT saturates: by 16 threads the 20-core machine is full, so the
    # fluid advantage at 16 is no larger than at 4.
    fft = series["fft"]
    assert fft[-1] >= fft[2] - 0.05
