"""Figure 11: framework overhead with all start-valve thresholds at 100%.

With thresholds at 100% the producer executes exactly as in the
non-Fluid version, so any latency difference against the original
program is framework overhead (guard launches, region setup, end
checks).  Paper shape: "the overhead is only significant in K-means,
Graph-Coloring and MedusaDock" — the apps built from many small regions
or tasks; the heavyweight single-region kernels show negligible
overhead.

Note (documented in EXPERIMENTS.md): FFT and DCT have *sibling* task
parallelism inside their regions (two independent producers / two
consumers), so even at 100% thresholds the fluid version can be faster
than the serial original; their overhead is reported against that
parallel floor.
"""


from repro.apps.base import DEFAULT_OVERHEADS
from repro.bench import render_table, standard_suite
from repro.runtime.simulator import Overheads

SMALL_INPUT = {
    "kmeans": "div6", "bellman_ford": "2K_8K", "graph_coloring": "1K_12K",
    "edge_detection": "EM", "fft": "N1K", "dct": "64x64",
    "neural_network": "lenet", "medusadock": "pdb-early",
}


def test_fig11_overhead(report, run_once):
    def work():
        rows = []
        for app_name, inputs in standard_suite().items():
            factory = inputs[SMALL_INPUT[app_name]]
            # with framework overheads
            app = factory()
            precise = app.run_precise()
            loaded = app.run_fluid(threshold=1.0, valve="percent",
                                   overheads=DEFAULT_OVERHEADS)
            # same schedule with a free framework: isolates the overhead
            app2 = factory()
            app2.run_precise()
            free = app2.run_fluid(threshold=1.0, valve="percent",
                                  overheads=Overheads.zero())
            overhead_fraction = (loaded.makespan - free.makespan) / \
                precise.makespan
            rows.append([app_name,
                         loaded.makespan / precise.makespan,
                         free.makespan / precise.makespan,
                         overhead_fraction])
        return rows

    rows = run_once(work)
    report("fig11_overhead", render_table(
        "Figure 11: overhead at 100% thresholds (normalized to original)",
        ["app", "fluid/original", "fluid(zero-ovh)/original",
         "overhead fraction"], rows))

    overhead = {row[0]: row[3] for row in rows}
    heavy = [overhead["kmeans"], overhead["graph_coloring"],
             overhead["medusadock"]]
    light = [overhead["edge_detection"], overhead["fft"],
             overhead["dct"], overhead["neural_network"],
             overhead["bellman_ford"]]
    # The paper's observation: overhead is significant only for K-means,
    # GC and MedusaDock.
    assert min(heavy) > max(light)
    assert max(light) < 0.05
    assert all(f >= -1e-9 for f in overhead.values())
