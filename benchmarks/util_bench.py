"""Shared helpers for the ablation benchmarks."""

from __future__ import annotations

import numpy as np

from repro.apps.base import FluidApp, SubmitPlan
from repro.core.region import FluidRegion
from repro.core.valves import PercentValve


class _RacingRegion(FluidRegion):
    """A producer/consumer pair where the consumer is much faster, so an
    aggressive threshold guarantees quality failures and re-executions —
    the stress case for threshold modulation."""

    def __init__(self, app, stage, source_box, name=None):
        self.app = app
        self.stage = stage
        self.source_box = source_box
        super().__init__(name or f"race_{stage}_{id(source_box) % 9973}")

    def build(self):
        n = self.app.n
        src = self.input_data("src", None)
        mid = self.add_array("mid", [0] * n)
        out = self.add_array("out", [0] * n)
        ct = self.add_count("ct")
        box = self.source_box

        def produce(ctx):
            src.init(list(box[0]))
            src.mark_input()
            values = src.read()
            for i in range(n):
                mid[i] = values[i] + 1
                ct.add()
                yield 4.0

        def consume(ctx):
            for i in range(n):
                out[i] = mid[i] * 2
                yield 0.4
            box[0] = list(out.read())

        # Regions build lazily at launch: later epochs see the failure
        # pressure earlier epochs accumulated and start less eagerly.
        threshold = self.app.threshold_box[0]
        modulation = self.app.active_modulation
        if modulation is not None:
            threshold = min(1.0, modulation.adjust(threshold))
        self.add_task("produce", produce, outputs=[mid])
        self.add_task("consume", consume,
                      start_valves=[PercentValve(ct, threshold, n)],
                      end_valves=[PercentValve(ct, 1.0, n)],
                      inputs=[mid], outputs=[out])


class RacingPipelineApp(FluidApp):
    """A chain of racing regions: modulation has epochs to act across."""

    name = "racing_pipeline"
    default_threshold = 0.2

    def __init__(self, n=120, stages=5):
        super().__init__()
        self.n = n
        self.stages = stages
        self.threshold_box = [0.2]

    def build_regions(self, threshold, valve, parallelism) -> SubmitPlan:
        self.threshold_box[0] = threshold
        source_box = [list(range(self.n))]
        plan = SubmitPlan()
        for stage in range(self.stages):
            plan.add_region(_RacingRegion(self, stage, source_box))
        plan.extras["box"] = source_box
        return plan

    def extract_output(self, plan):
        return list(plan.extras["box"][0])

    def compute_error(self, output, precise_output):
        if output == precise_output:
            return 0.0
        diffs = np.abs(np.array(output, dtype=float)
                       - np.array(precise_output, dtype=float))
        scale = np.abs(np.array(precise_output, dtype=float)).mean() or 1.0
        return float(min(1.0, diffs.mean() / scale))

    def compute_metric(self, output):
        return ("checksum", float(sum(output)))


def racing_pipeline_app():
    return RacingPipelineApp()
