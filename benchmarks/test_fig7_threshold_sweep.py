"""Figure 7: start-valve threshold sensitivity (K-means, GC, NN).

Paper shapes: as the threshold decreases, execution time decreases for
all applications and accuracy drops for GC and NN while K-means'
accuracy is insensitive; larger inputs are more sensitive to threshold
modulation.
"""


from repro.apps.graph_coloring import GraphColoringApp
from repro.apps.kmeans import KMeansApp
from repro.apps.neural_network import NeuralNetworkApp
from repro.bench import render_series
from repro.workloads import random_graph, synthetic_digits, synthetic_image

THRESHOLDS = [0.2, 0.4, 0.6, 0.8, 1.0]


def sweep(app_factory, thresholds=THRESHOLDS):
    app = app_factory()
    precise = app.run_precise()
    latencies, accuracies = [], []
    for threshold in thresholds:
        fluid = app.run_fluid(threshold=threshold)
        latencies.append(fluid.makespan / precise.makespan)
        accuracies.append(fluid.accuracy)
    return latencies, accuracies


def test_fig7_kmeans(report, run_once):
    def work():
        small = sweep(lambda: KMeansApp(
            synthetic_image(32, 32, diversity=6, seed=41),
            num_clusters=5, epochs=5))
        large = sweep(lambda: KMeansApp(
            synthetic_image(64, 64, diversity=6, seed=41),
            num_clusters=5, epochs=5))
        return small, large

    (lat_s, acc_s), (lat_l, acc_l) = run_once(work)
    report("fig7_kmeans", render_series(
        "Figure 7 (K-means): threshold sweep",
        "threshold", THRESHOLDS,
        {"latency(small)": lat_s, "accuracy(small)": acc_s,
         "latency(large)": lat_l, "accuracy(large)": acc_l}))
    # Latency never increases as the threshold decreases.
    assert lat_s[0] <= lat_s[-1] + 1e-6
    assert lat_l[0] <= lat_l[-1] + 1e-6
    # K-means accuracy is comparatively insensitive (stays high).
    assert min(acc_s[1:]) > 0.9


def test_fig7_graph_coloring(report, run_once):
    def work():
        small = sweep(lambda: GraphColoringApp(
            random_graph(1000, 12000, seed=43, name="1K_12K")))
        large = sweep(lambda: GraphColoringApp(
            random_graph(2000, 24000, seed=43, name="2K_24K")))
        return small, large

    (lat_s, acc_s), (lat_l, acc_l) = run_once(work)
    report("fig7_graph_coloring", render_series(
        "Figure 7 (Graph Coloring): threshold sweep",
        "threshold", THRESHOLDS,
        {"latency(small)": lat_s, "accuracy(small)": acc_s,
         "latency(large)": lat_l, "accuracy(large)": acc_l}))
    assert lat_s[0] < lat_s[-1]
    assert lat_l[0] < lat_l[-1]
    # Full threshold is exact.
    assert acc_s[-1] == 1.0 and acc_l[-1] == 1.0


def test_fig7_neural_network(report, run_once):
    dataset_small = synthetic_digits(samples=128, features=196, seed=47)
    dataset_large = synthetic_digits(samples=512, features=196, seed=47)

    def work():
        small = sweep(lambda: NeuralNetworkApp(dataset_small,
                                               architecture="lenet"))
        large = sweep(lambda: NeuralNetworkApp(dataset_large,
                                               architecture="vgg"))
        return small, large

    (lat_s, acc_s), (lat_l, acc_l) = run_once(work)
    report("fig7_neural_network", render_series(
        "Figure 7 (NN): threshold sweep",
        "threshold", THRESHOLDS,
        {"latency(lenet)": lat_s, "accuracy(lenet)": acc_s,
         "latency(vgg)": lat_l, "accuracy(vgg)": acc_l}))
    assert lat_s[0] < lat_s[-1]
    assert lat_l[0] < lat_l[-1]
    # Accuracy can only degrade as the threshold decreases.
    assert acc_l[0] <= acc_l[-1] + 1e-9
    # Several operating points give speedups without accuracy loss
    # ("the programmer may find several operation points with a
    # significant speedup boost without much accuracy drop").
    sweet = [lat for lat, acc in zip(lat_s, acc_s)
             if acc > 0.99 and lat < 0.95]
    assert sweet, "expected sweet-spot operating points"
