"""Figure 8: percentage vs convergence valves (MedusaDock, K-means).

Paper shapes: "MedusaDock prefers the convergence valve since the lowest
pose energy will be converged at an early stage for many proteins,
whereas K-means is more compatible with the percentage valve because it
will take more time for stability checking."
"""

from repro.apps.kmeans import KMeansApp
from repro.apps.medusadock import MedusaDockApp
from repro.bench import render_table
from repro.workloads import synthetic_image, synthetic_poses


def test_fig8_medusadock(report, run_once):
    def build(placement):
        dockings = [synthetic_poses(num_poses=64, seed=s,
                                    placement=placement, name=f"p{s}")
                    for s in range(8)]
        return MedusaDockApp(dockings)

    def work():
        rows = []
        for placement in ("early", "uniform"):
            app = build(placement)
            precise = app.run_precise()
            percent = app.run_fluid(valve="percent")
            convergence = app.run_fluid(valve="convergence")
            rows.append([placement, "percent",
                         percent.makespan / precise.makespan,
                         percent.accuracy])
            rows.append([placement, "convergence",
                         convergence.makespan / precise.makespan,
                         convergence.accuracy])
        return rows

    rows = run_once(work)
    report("fig8_medusadock", render_table(
        "Figure 8 (MedusaDock): valve types, normalized to non-Fluid",
        ["protein set", "valve", "norm latency", "norm accuracy"], rows))

    by_key = {(row[0], row[1]): (row[2], row[3]) for row in rows}
    early_pct = by_key[("early", "percent")]
    early_cnv = by_key[("early", "convergence")]
    # On early-converging proteins the convergence valve dominates:
    # faster AND at least as accurate (the paper's preference).
    assert early_cnv[0] < early_pct[0]
    assert early_cnv[1] >= early_pct[1] - 0.05


def test_fig8_kmeans(report, run_once):
    app = KMeansApp(synthetic_image(48, 48, diversity=6, seed=53),
                    num_clusters=5, epochs=6)

    def work():
        precise = app.run_precise()
        percent = app.run_fluid(valve="percent")
        stability = app.run_fluid(valve="stability")
        return [
            ["percent", percent.makespan / precise.makespan,
             percent.accuracy],
            ["convergence(stability)", stability.makespan / precise.makespan,
             stability.accuracy],
        ]

    rows = run_once(work)
    report("fig8_kmeans", render_table(
        "Figure 8 (K-means): valve types, normalized to non-Fluid",
        ["valve", "norm latency", "norm accuracy"], rows))
    # K-means prefers the percentage valve: stability checking takes
    # longer (higher latency) for a similar accuracy.
    assert rows[0][1] <= rows[1][1] + 1e-6
    assert rows[1][2] >= 0.95
