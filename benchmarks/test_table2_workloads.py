"""Table 2: characteristics of the fluidized workloads.

For each of the eight bundled FluidPy sources: total non-blank lines,
number of pragmas (including the ``__fluid__`` marker), and the pragma
ratio — the paper's ``tot/pragma (app)`` and ``tot/pragma (region)``
columns.  Paper shape: "on average, one needs to insert only 12.4
pragmas per application program, which corresponds to 3.9% of the total
program lines" — a small annotation burden.  Our sources are leaner than
AxBench's C++ (Python), so the ratios run higher, but the pragma
*counts* land in the same 8-19 band as the paper's 8-17.
"""

import glob
import os

import numpy as np

from repro.bench import render_table
from repro.lang import translate_file

FLUIDSRC = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                        "repro", "apps", "fluidsrc")

PRODUCERS_CONSUMERS = {
    "kmeans": ("assign cluster for each pixel", "re-calculate the centers"),
    "bellman_ford": ("one relax iteration", "next relax iteration"),
    "graph_coloring": ("find local maximum vertices", "color the vertices"),
    "edge_detection": ("noise removal filter", "edge detection"),
    "fft": ("sin/cos values", "calculate FFT"),
    "dct": ("cos values", "calculate sum"),
    "neural_network": ("previous layer", "next layer"),
    "medusadock": ("docking energy of poses", "select lowest poses"),
}


def test_table2_workload_characteristics(report, run_once):
    def work():
        rows = []
        for path in sorted(glob.glob(os.path.join(FLUIDSRC, "*.fpy"))):
            app_name = os.path.splitext(os.path.basename(path))[0]
            result = translate_file(path)
            producer, consumer = PRODUCERS_CONSUMERS[app_name]
            per_region = result.per_class_stats()[0]
            rows.append([
                app_name, producer, consumer,
                f"{result.total_lines()} / {result.total_pragmas()} / "
                f"{100 * result.pragma_ratio():.1f}%",
                f"{per_region.region_lines} / {per_region.region_pragmas} "
                f"/ {100 * per_region.region_ratio:.1f}%"])
        return rows

    rows = run_once(work)
    report("table2_workloads", render_table(
        "Table 2: fluidized workload characteristics",
        ["app", "producer", "consumer",
         "lines/pragmas/ratio (app)", "lines/pragmas/ratio (region)"],
        rows))

    assert len(rows) == 8, "all eight applications must be present"
    pragma_counts = []
    for row in rows:
        _lines, pragmas, _ratio = row[3].split(" / ")
        pragma_counts.append(int(pragmas))
    # Paper: 8-17 pragmas per app, 12.4 on average.
    assert min(pragma_counts) >= 8
    assert max(pragma_counts) <= 20
    assert 8 <= np.mean(pragma_counts) <= 16


def test_table2_sources_translate_cleanly(run_once):
    def work():
        diagnostics = []
        for path in sorted(glob.glob(os.path.join(FLUIDSRC, "*.fpy"))):
            result = translate_file(path)
            diagnostics.extend(result.diagnostics)
        return diagnostics

    diagnostics = run_once(work)
    assert not [d for d in diagnostics if d.severity == "error"]
    assert not diagnostics, f"unexpected warnings: {diagnostics}"
