"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the mechanisms the paper's
design leans on:

* runtime threshold modulation (Sections 4.4 / 6.1): tightening start
  valves after quality failures reduces re-execution churn at
  aggressive thresholds;
* early termination (Section 6.1): cancelling runs whose descendants
  all completed is where Graph Coloring's and MedusaDock's gains come
  from — disabling it erases them;
* the re-execution loop itself: with quality valves stripped, eager
  output is accepted unconditionally — fast but wrong, quantifying
  what the quality machinery buys;
* offline auto-tuning (Section 4.4 future work, `repro.tuning`): the
  tuner finds an operating point at least as good as the hand-picked
  default.
"""


from repro.apps.graph_coloring import GraphColoringApp
from repro.apps.kmeans import KMeansApp
from repro.apps.medusadock import MedusaDockApp
from repro.bench import render_table
from repro.core.guard import ModulationPolicy
from repro.tuning import ThresholdTuner
from repro.workloads import random_graph, synthetic_image, synthetic_poses

from util_bench import racing_pipeline_app  # local helper below


def test_ablation_threshold_modulation(report, run_once):
    """Quality failures tighten valves -> later epochs re-execute less."""

    def work():
        rows = []
        for fraction in (0.0, 0.5, 1.0):
            app = racing_pipeline_app()
            precise = app.run_precise()
            fluid = app.run_fluid(
                threshold=0.2,
                modulation=ModulationPolicy(fraction=fraction))
            reruns = sum(max(0, task.stats.runs - 1)
                         for region in fluid.regions
                         for task in region.tasks)
            rows.append([fraction, fluid.makespan / precise.makespan,
                         fluid.accuracy, reruns])
        return rows

    rows = run_once(work)
    report("ablation_modulation", render_table(
        "Ablation: runtime threshold modulation (racing pipeline chain, "
        "threshold 0.2)",
        ["modulation fraction", "norm latency", "accuracy",
         "re-executions"], rows))
    # Stronger modulation can only reduce re-execution churn.
    reruns = [row[3] for row in rows]
    assert reruns[-1] <= reruns[0]


def test_ablation_early_termination(report, run_once):
    """cancel_first_runs drives the GC / MedusaDock gains."""

    def work():
        rows = []
        gc = GraphColoringApp(random_graph(1500, 15000, seed=79,
                                           name="1.5K_15K"))
        gc_precise = gc.run_precise()
        with_cancel = gc.run_fluid()
        gc.cancel_first_runs = False
        without_cancel = gc.run_fluid()
        gc.cancel_first_runs = True
        rows.append(["graph_coloring", "on",
                     with_cancel.makespan / gc_precise.makespan,
                     with_cancel.accuracy])
        rows.append(["graph_coloring", "off",
                     without_cancel.makespan / gc_precise.makespan,
                     without_cancel.accuracy])

        dockings = [synthetic_poses(num_poses=64, seed=s, placement="early",
                                    name=f"p{s}") for s in range(6)]
        md = MedusaDockApp(dockings)
        md_precise = md.run_precise()
        with_cancel = md.run_fluid()
        md.cancel_first_runs = False
        without_cancel = md.run_fluid()
        md.cancel_first_runs = True
        rows.append(["medusadock", "on",
                     with_cancel.makespan / md_precise.makespan,
                     with_cancel.accuracy])
        rows.append(["medusadock", "off",
                     without_cancel.makespan / md_precise.makespan,
                     without_cancel.accuracy])
        return rows

    rows = run_once(work)
    report("ablation_early_termination", render_table(
        "Ablation: early termination of first runs",
        ["app", "early termination", "norm latency", "accuracy"], rows))
    by_key = {(row[0], row[1]): row[2] for row in rows}
    assert by_key[("graph_coloring", "on")] < \
        by_key[("graph_coloring", "off")]
    assert by_key[("medusadock", "on")] < by_key[("medusadock", "off")]


def test_ablation_quality_function(report, run_once):
    """Stripping end valves: faster, but the error is unbounded."""

    def work():
        rows = []
        for quality, label in ((1.0, "strict (100%)"),
                               (0.4, "lenient (40%)")):
            app = KMeansApp(synthetic_image(40, 40, diversity=6, seed=83),
                            num_clusters=5, epochs=5,
                            quality_fraction=quality)
            precise = app.run_precise()
            fluid = app.run_fluid(threshold=0.2)
            rows.append([label, fluid.makespan / precise.makespan,
                         fluid.accuracy])
        return rows

    rows = run_once(work)
    report("ablation_quality_function", render_table(
        "Ablation: K-means quality bar at aggressive threshold (0.2)",
        ["quality function", "norm latency", "accuracy"], rows))
    strict, lenient = rows[0], rows[1]
    # The strict bar costs latency but buys accuracy.
    assert strict[2] >= lenient[2] - 1e-9
    assert strict[1] >= lenient[1] - 1e-9


def test_ablation_autotuner_vs_default(report, run_once):
    """The Section-4.4 tuner matches or beats the hand-picked default.

    Three policies on the same strict-quality K-means: the hand-picked
    aggressive threshold (pays re-execution churn), the offline
    :class:`ThresholdTuner` (picks one static operating point by
    re-running the app), and the online closed-loop autotuner
    (``accuracy_floor`` SLO, tightening live within a single run; see
    docs/autotuning.md).  The online row must hold the floor while
    beating the static aggressive baseline it starts from.
    """

    def work():
        def strict_app():
            return KMeansApp(synthetic_image(40, 40, diversity=6, seed=83),
                             num_clusters=5, epochs=5,
                             quality_fraction=1.0)

        app = strict_app()
        precise = app.run_precise()
        static = app.run_fluid(threshold=0.2)
        tuner = ThresholdTuner(error_budget=max(0.02, static.error),
                               resolution=0.05)
        tuned = tuner.tune(strict_app())
        online_app = strict_app()
        online = online_app.run_fluid(
            threshold=0.2, autotune="accuracy_floor:target=0.9,window=1")
        return [["static aggressive", 0.2,
                 static.makespan / precise.makespan, static.accuracy],
                ["offline tuned", tuned.threshold,
                 tuned.normalized_latency, 1.0 - tuned.error],
                ["online accuracy_floor", 0.2,
                 online.makespan / online_app.run_precise().makespan,
                 online.accuracy]]

    rows = run_once(work)
    report("ablation_autotune", render_table(
        "Ablation: offline and online autotuning vs static (K-means, "
        "strict quality)",
        ["policy", "base threshold", "norm latency", "accuracy"], rows))
    static_latency, online_latency = rows[0][2], rows[2][2]
    online_accuracy = rows[2][3]
    # The closed-loop tuner must hold its floor and beat the static
    # baseline it modulates away from.
    assert online_accuracy >= 0.9
    assert online_latency < static_latency


def test_ablation_thread_pool(report, run_once):
    """The Section-3.3 conjecture: 'Using a thread-pool will clearly
    mitigate these overheads.'  Re-run the Figure-11 overhead
    measurement for the three overhead-heavy apps with pooled guards."""
    from repro.apps.base import DEFAULT_OVERHEADS
    from repro.apps.kmeans import KMeansApp
    from repro.runtime.simulator import Overheads
    from repro.workloads import synthetic_image, synthetic_poses, random_graph
    from repro.apps.graph_coloring import GraphColoringApp
    from repro.apps.medusadock import MedusaDockApp

    pooled = Overheads(
        task_init=DEFAULT_OVERHEADS.task_init,
        end_check=DEFAULT_OVERHEADS.end_check,
        region_setup=DEFAULT_OVERHEADS.region_setup,
        valve_check=DEFAULT_OVERHEADS.valve_check,
        signal=DEFAULT_OVERHEADS.signal,
        pool_size=8, pool_dispatch=DEFAULT_OVERHEADS.task_init / 20.0)

    def apps():
        yield "kmeans", KMeansApp(
            synthetic_image(40, 40, diversity=6, seed=97),
            num_clusters=5, epochs=6)
        yield "graph_coloring", GraphColoringApp(
            random_graph(1000, 8000, seed=97, name="pool"))
        yield "medusadock", MedusaDockApp(
            [synthetic_poses(num_poses=64, seed=s, name=f"p{s}")
             for s in range(6)])

    def work():
        rows = []
        for name, app in apps():
            precise = app.run_precise()
            unpooled = app.run_fluid(threshold=1.0, valve="percent",
                                     overheads=DEFAULT_OVERHEADS)
            pooled_run = app.run_fluid(threshold=1.0, valve="percent",
                                       overheads=pooled)
            rows.append([name,
                         unpooled.makespan / precise.makespan,
                         pooled_run.makespan / precise.makespan])
        return rows

    rows = run_once(work)
    report("ablation_thread_pool", render_table(
        "Ablation: guard thread pool (overheads at 100% thresholds)",
        ["app", "per-task guards", "pooled guards (8)"], rows))
    for row in rows:
        assert row[2] <= row[1] + 1e-9, f"pooling must not hurt {row[0]}"
    # At least one of the heavy apps improves visibly.
    assert any(row[1] - row[2] > 0.01 for row in rows)
