"""Figure 10: composing Fluid with other approximation techniques.

Paper: fluidizing LeNet saves ~28%; Squeezenet (an already-approximate
network) saves ~72% over LeNet; fluidizing Squeezenet reaches ~82% total
saving "without much accuracy drop" — the gains compose.
"""

from repro.apps.neural_network import NeuralNetworkApp
from repro.bench import render_table
from repro.workloads import synthetic_digits

BATCH_SIZES = [64, 128, 256]


def test_fig10_fluid_composes_with_approximation(report, run_once):
    dataset = synthetic_digits(samples=256, features=196, seed=61)

    def work():
        rows = []
        summary = {}
        for batch_size in BATCH_SIZES:
            lenet = NeuralNetworkApp(dataset, "lenet",
                                     batch_size=batch_size)
            squeezed = NeuralNetworkApp(dataset, "squeezed",
                                        batch_size=batch_size)
            base = lenet.run_precise()
            fluid_lenet = lenet.run_fluid()
            precise_squeezed = squeezed.run_precise()
            fluid_squeezed = squeezed.run_fluid()
            entries = [
                ("lenet", base.makespan, 1.0),
                ("fluid(lenet)", fluid_lenet.makespan,
                 fluid_lenet.accuracy),
                ("squeezed", precise_squeezed.makespan,
                 squeezed_accuracy(lenet, squeezed)),
                ("fluid(squeezed)", fluid_squeezed.makespan,
                 fluid_squeezed.accuracy),
            ]
            for name, makespan, accuracy in entries:
                saving = 1.0 - makespan / base.makespan
                rows.append([batch_size, name, makespan / base.makespan,
                             saving, accuracy])
                summary.setdefault(name, []).append(saving)
        return rows, summary

    rows, summary = run_once(work)
    report("fig10_composition", render_table(
        "Figure 10: Fluid atop an already-approximate network "
        "(normalized to precise LeNet)",
        ["batch", "version", "norm latency", "saving", "accuracy"], rows))

    import numpy as np
    fluid_lenet = float(np.mean(summary["fluid(lenet)"]))
    squeezed = float(np.mean(summary["squeezed"]))
    fluid_squeezed = float(np.mean(summary["fluid(squeezed)"]))
    # Paper: ~28% / ~72% / ~82%; require the same ordering and rough
    # magnitudes.
    assert 0.1 < fluid_lenet < 0.5
    assert 0.6 < squeezed < 0.9
    assert fluid_squeezed > squeezed            # composing helps further
    assert fluid_squeezed > fluid_lenet


def squeezed_accuracy(lenet, squeezed):
    """Accuracy of the squeezed net against the LeNet labels (both nets
    read the same dataset, so label accuracy is directly comparable)."""
    run = squeezed.run_precise()
    return squeezed.accuracy_vs_labels(run.output)
