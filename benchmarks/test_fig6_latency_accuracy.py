"""Figure 6: normalized latency and accuracy of every fluidized app.

Paper: "on average, Fluid brings 22.2% execution time improvements ...
with 1.4% reduction in accuracy, for empirically-chosen Fluid valve
hyperparameters."  Expected shape: every app below 1.0 normalized
latency at its default valve settings; accuracy close to 1.0; denser
graphs and larger vectors gain more than sparse/small ones.
"""

import numpy as np

from repro.bench import render_table, run_comparison, standard_suite


def test_fig6_all_apps(report, run_once):
    rows = []

    def run_suite():
        for app_name, inputs in standard_suite().items():
            for input_name, factory in inputs.items():
                row = run_comparison(factory(), input_name)
                rows.append(row)

    run_once(run_suite)

    table = [row.as_list() for row in rows]
    latencies = np.array([row.normalized_latency for row in rows])
    accuracies = np.array([row.normalized_accuracy for row in rows])
    table.append(["AVERAGE", "-", float(latencies.mean()),
                  float(accuracies.mean()), ""])
    report("fig6_latency_accuracy", render_table(
        "Figure 6: fluidized latency and accuracy, normalized to the "
        "original (precise, serial) version",
        ["app", "input", "norm latency", "norm accuracy", "native metric"],
        table), rows=rows)

    # Shape assertions (paper: 22.2% average improvement, small accuracy
    # loss; we require the same direction with generous tolerances).
    assert latencies.mean() < 0.9, "fluid should win on average"
    assert accuracies.mean() > 0.9, "accuracy loss should be small"
    assert (latencies < 1.05).mean() > 0.8, \
        "the vast majority of configurations should not regress"

    # Density axis: dense graphs gain at least as much as sparse ones.
    by_name = {(r.app, r.input_name): r.normalized_latency for r in rows}
    assert by_name[("graph_coloring", "1K_12K")] <= \
        by_name[("graph_coloring", "1K_4K")] + 0.05

    # Size axis: the larger FFT gains at least as much as the smaller.
    assert by_name[("fft", "N4K")] <= by_name[("fft", "N1K")] + 0.05
