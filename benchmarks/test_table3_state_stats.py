"""Table 3: runtime statistics — state-machine visits and residence times.

For every application's tasks, average number of visits to each state
and average (virtual) time per state.  Paper shapes: every task enters
Init/StartCheck/Complete exactly once; Running/EndCheck/Wait are visited
multiple times by tasks that re-execute (Bellman-Ford's relax chain, the
racing consumers); non-root tasks accumulate long StartCheck residence
(valve waiting).
"""

import numpy as np

from repro.bench import render_table, standard_suite

SMALL_INPUT = {
    "kmeans": "div6", "bellman_ford": "1K_4K", "graph_coloring": "1K_4K",
    "edge_detection": "EM", "fft": "N1K", "dct": "64x64",
    "neural_network": "lenet", "medusadock": "pdb-early",
}

STATE_NAMES = ["Init", "StartCheck", "Running", "EndCheck", "Wait/Stall",
               "Complete"]


def collect_stats(app):
    """Average per-task-name visit counts and times across regions."""
    fluid = app.run_fluid()
    merged = {}
    for region in fluid.regions:
        for task in region.tasks:
            name = _canonical(task.name)
            merged.setdefault(name, []).append(task.stats)
    rows = []
    for name, stats_list in sorted(merged.items()):
        visits = np.mean([s.visit_row() for s in stats_list], axis=0)
        times = np.mean([s.time_row() for s in stats_list], axis=0)
        rows.append((name, visits, times))
    return rows


def _canonical(task_name: str) -> str:
    """Collapse per-band task names (filter_0, filter_1 -> filter)."""
    base = task_name.rsplit("_", 1)
    if len(base) == 2 and base[1].isdigit():
        return base[0]
    return task_name


def test_table3_state_statistics(report, run_once):
    def work():
        table = []
        for app_name, inputs in standard_suite().items():
            app = inputs[SMALL_INPUT[app_name]]()
            app.run_precise()
            for task_name, visits, times in collect_stats(app):
                table.append([app_name, task_name]
                             + [round(float(v), 2) for v in visits]
                             + [round(float(t), 1) for t in times])
        return table

    table = run_once(work)
    headers = (["app", "task"]
               + [f"#{name}" for name in STATE_NAMES]
               + [f"t({name})" for name in STATE_NAMES])
    report("table3_state_stats", render_table(
        "Table 3: state-machine visits and residence times (virtual time)",
        headers, table))

    by_task = {(row[0], row[1]): row for row in table}
    visit_offset = 2

    for row in table:
        init_visits = row[visit_offset + 0]
        start_visits = row[visit_offset + 1]
        complete_visits = row[visit_offset + 5]
        # "Each task accesses the Init, StartCheck and Complete states
        # only once" (averaged over re-used task names).
        assert init_visits == 1.0
        assert start_visits == 1.0
        assert complete_visits == 1.0

    # Bellman-Ford's chained relax tasks re-execute (Running > 1).
    bf_rows = [row for row in table
               if row[0] == "bellman_ford" and row[1].startswith("relax")]
    assert any(row[visit_offset + 2] > 1 for row in bf_rows)

    # Non-root tasks spend time waiting in StartCheck.
    sobel = by_task[("edge_detection", "gradient")]
    time_offset = visit_offset + 6
    assert sobel[time_offset + 1] > 0  # StartCheck residence
