#!/usr/bin/env python
"""True parallelism with the multiprocessing backend.

The thread backend validates Fluid's semantics under real preemption,
but under CPython the GIL serializes the actual compute.  The process
backend runs task bodies in forked worker processes — guard decisions
stay in the parent — so a CPU-bound fan-out actually uses the cores.

This example times the same pure-Python crunch region on both real-time
backends and checks that every output matches the serially computed
value.  On a multi-core machine the process backend wins; on one core
it pays a small snapshot/IPC tax for no gain.

Run:  python examples/process_parallel.py
"""

import os

from repro import ProcessExecutor, ThreadExecutor
from repro.bench.harness import _lcg_kernel, make_cpu_bound_region

TASKS = max(2, os.cpu_count() or 1)
ITERATIONS = 120_000


def timed_run(executor, region):
    executor.submit(region)
    result = executor.run()
    outputs = [region.output(f"out_{index}") for index in range(TASKS)]
    return result, outputs


def main():
    expected = [_lcg_kernel(7 + 13 * index, ITERATIONS)
                for index in range(TASKS)]

    print(f"{TASKS} pure-Python crunch tasks x {ITERATIONS} iterations "
          f"({os.cpu_count()} cores)\n")

    region = make_cpu_bound_region("threads", tasks=TASKS,
                                   iterations=ITERATIONS)
    result, outputs = timed_run(ThreadExecutor(timeout=300), region)
    print(f"thread backend:  {result.makespan:6.2f} s  "
          f"outputs ok: {outputs == expected}  complete: {region.complete}")
    thread_seconds = result.makespan

    region = make_cpu_bound_region("processes", tasks=TASKS,
                                   iterations=ITERATIONS)
    result, outputs = timed_run(ProcessExecutor(timeout=300), region)
    print(f"process backend: {result.makespan:6.2f} s  "
          f"outputs ok: {outputs == expected}  complete: {region.complete}")

    print(f"\nspeedup: {thread_seconds / max(result.makespan, 1e-9):.2f}x "
          f"(expect >1 only with multiple cores)")


if __name__ == "__main__":
    main()
