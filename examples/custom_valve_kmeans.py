#!/usr/bin/env python
"""Application-specific valves: K-means with a change-rate valve.

Section 3.3 promises that users "can easily produce application-specific
valves and quality functions".  This example compares three policies for
when the recenter task may start consuming partial assignments:

* ``percent``   — a fixed fraction of pixels assigned (the stock valve);
* ``stability`` — a custom PredicateValve that watches the *change rate*
  among pixels assigned so far and opens early only when the clustering
  has stabilized (late epochs);
* serialized    — threshold 1.0, the precise schedule.

Run:  python examples/custom_valve_kmeans.py
"""

from repro.apps.kmeans import KMeansApp
from repro.workloads import synthetic_image


def main():
    image = synthetic_image(48, 48, diversity=6, noise=6.0, seed=7)
    app = KMeansApp(image, num_clusters=5, epochs=8)
    precise = app.run_precise()
    print(f"precise objective: {precise.metric:12.0f}  "
          f"makespan {precise.makespan:12.0f}")

    for label, kwargs in [
            ("percent valve (40%)", dict(valve="percent", threshold=0.4)),
            ("stability valve", dict(valve="stability", threshold=0.2)),
            ("fully serialized", dict(valve="percent", threshold=1.0))]:
        fluid = app.run_fluid(**kwargs)
        print(f"{label:22} latency {fluid.makespan / precise.makespan:6.3f}  "
              f"objective drift {fluid.error * 100:5.2f}%")

    # Per-epoch visibility: how often did recenter fail its quality bar?
    fluid = app.run_fluid(valve="percent", threshold=0.4)
    failures = sum(region.graph.task("recenter").stats.quality_failures
                   for region in fluid.regions)
    print(f"\nrecenter quality failures across "
          f"{len(fluid.regions)} epochs: {failures}")


if __name__ == "__main__":
    main()
