#!/usr/bin/env python
"""Edge detection, three ways: precise, fluid, and compiled FluidPy.

Reproduces the paper's running example (Sections 4.3 and 5): the same
Gaussian -> Sobel pipeline is executed (1) serially and precisely,
(2) through the hand-written fluid region from :mod:`repro.apps`, and
(3) by translating the pragma-annotated FluidPy source bundled with the
package — demonstrating that the compiler path and the library path
agree.

Run:  python examples/edge_detection_pipeline.py
"""

import os

import numpy as np

from repro import SimExecutor, run_serial
from repro.apps.edge_detection import EdgeDetectionApp
from repro.lang import load_file
from repro.workloads import synthetic_image

FLUIDSRC = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                        "repro", "apps", "fluidsrc", "edge_detection.fpy")


def main():
    image = synthetic_image(32, 32, noise=14.0, seed=3)

    # 1) Library path: precise vs fluid.
    app = EdgeDetectionApp(image)
    precise = app.run_precise()
    fluid = app.run_fluid(threshold=0.4)
    print("library path")
    print(f"  precise makespan: {precise.makespan:12.0f}")
    print(f"  fluid makespan:   {fluid.makespan:12.0f} "
          f"({100 * (1 - fluid.makespan / precise.makespan):.1f}% saved)")
    print(f"  accuracy:         {fluid.accuracy:12.4f}")

    # 2) Compiler path: translate the FluidPy source and run it.
    namespace = load_file(FLUIDSRC)
    flat = [float(v) for v in image.ravel()]
    region = namespace["EdgeDetection"](input_img=flat, height=32, width=32)
    executor = SimExecutor(cores=8)
    executor.submit(region)
    executor.run()
    compiled_edges = np.array(region.output("d3")).reshape(32, 32)

    serial_region = namespace["EdgeDetection"](
        input_img=flat, height=32, width=32)
    run_serial(serial_region)
    serial_edges = np.array(serial_region.output("d3")).reshape(32, 32)

    print("compiler path (FluidPy -> Python -> runtime)")
    print(f"  fluid == serial:  {np.allclose(compiled_edges, serial_edges)}")
    agree = np.allclose(serial_edges, precise.output)
    print(f"  matches library:  {agree}")


if __name__ == "__main__":
    main()
