#!/usr/bin/env python
"""Fluid as a service: one shared pool, many concurrent region requests.

A :class:`repro.service.FluidService` turns the single-shot executors
into a long-lived asyncio frontend: requests stream in, a bounded
admission queue sheds or parks overflow, small requests batch into one
launch, and every request's latency lands on the telemetry bus as
``svc.*`` counters and histograms.  See docs/service.md.

Run:  python examples/fluid_service.py
"""

import asyncio
import random

from repro import FluidRegion, PercentValve, PredicateValve
from repro.service import AdmissionError, FluidService
from repro.telemetry import Telemetry


def make_request(index: int, n: int) -> FluidRegion:
    """A tiny producer->consumer region standing in for one request."""

    class Request(FluidRegion):
        def build(self):
            src = self.input_data("src", list(range(n)))
            mid = self.add_array("mid", [0] * n)
            out = self.add_array("out", [0] * n)
            ct = self.add_count("ct")

            def produce(ctx):
                for i in range(n):
                    mid[i] = src.read()[i] * 2
                    ct.add()
                    yield 1.0

            def consume(ctx):
                for i in range(n):
                    out[i] = mid[i] + 1
                    yield 1.0

            self.add_task("produce", produce, inputs=[src], outputs=[mid])
            self.add_task(
                "consume", consume,
                start_valves=[PercentValve(ct, 0.4, n)],
                end_valves=[PredicateValve(
                    lambda: all(out[i] == 2 * i + 1 for i in range(n)),
                    name="exact")],
                inputs=[mid], outputs=[out])

    return Request(f"req-{index}")


async def main():
    rng = random.Random(42)
    telemetry = Telemetry(chrome=False)
    async with FluidService(slots=4, queue_capacity=8, max_concurrency=4,
                            batch_max=4, batch_cost_threshold=32.0,
                            latency_slo=2.0,
                            telemetry=telemetry) as service:
        completed, shed, correct = 0, 0, 0

        async def one(index):
            nonlocal completed, shed, correct
            n = rng.randint(8, 24)
            region = make_request(index, n)
            try:
                result = await service.submit(
                    region, sheddable=(index % 2 == 0), cost_estimate=n)
            except AdmissionError:
                shed += 1
                return
            completed += 1
            if list(region.output("out")) == [2 * i + 1 for i in range(n)]:
                correct += 1
            return result

        await asyncio.gather(*(one(index) for index in range(60)))

        print("fluid-as-a-service: 60 requests over one 4-slot pool")
        print(f"  completed:        {completed}")
        print(f"  shed (backpressure): {shed}")
        print(f"  correct outputs:  {correct} / {completed}")
        print(f"  all correct:      {correct == completed}")

    counters = telemetry.metrics.to_dict()["counters"]
    histograms = telemetry.metrics.to_dict()["histograms"]
    print("\nsvc.* telemetry (the operator's view):")
    for name in ("svc.requests", "svc.admitted", "svc.shed",
                 "svc.dispatched", "svc.batches", "svc.completed",
                 "svc.slo_met", "svc.slo_missed"):
        print(f"  {name:<22} {counters[name]:.0f}")
    latency = histograms["svc.latency"]
    print(f"  svc.latency count      {latency['count']:.0f}")


if __name__ == "__main__":
    asyncio.run(main())
