#!/usr/bin/env python
"""Quickstart: fluidize a producer/consumer pipeline in ~50 lines.

A slow producer doubles every element of an array; a consumer sums
neighbourhoods.  The consumer's start valve lets it begin once 40% of
the elements are produced; its end valve demands the producer finished
before the consumer's results count, triggering re-execution when the
consumer races too far ahead — the complete Fluid loop of the paper in
miniature.

Run:  python examples/quickstart.py
"""

from repro import (FluidRegion, Overheads, PercentValve, SimExecutor,
                   run_serial)

N = 400


class Pipeline(FluidRegion):
    def build(self):
        source = self.input_data("source", list(range(N)))
        doubled = self.add_array("doubled", [0] * N)
        smoothed = self.add_array("smoothed", [0] * N)
        progress = self.add_count("progress")

        def produce(ctx):
            values = source.read()
            for i in range(N):
                doubled[i] = values[i] * 2
                progress.add()
                yield 3.0            # virtual cost of one element

        def consume(ctx):
            for i in range(N):
                lo, hi = max(0, i - 1), min(N, i + 2)
                smoothed[i] = sum(doubled[lo:hi])
                yield 2.0

        self.add_task("produce", produce,
                      inputs=[source], outputs=[doubled])
        self.add_task("consume", consume,
                      start_valves=[PercentValve(progress, 0.4, N)],
                      end_valves=[PercentValve(progress, 1.0, N)],
                      inputs=[doubled], outputs=[smoothed])


def main():
    # The original program: strict dependency order, one task at a time.
    serial_region = Pipeline("serial")
    serial = run_serial(serial_region)
    print(f"precise (serial) makespan: {serial.makespan:10.1f}")

    # The fluidized program on a simulated 4-core machine.
    fluid_region = Pipeline("fluid")
    executor = SimExecutor(cores=4, overheads=Overheads.zero())
    executor.submit(fluid_region)
    fluid = executor.run()
    print(f"fluid makespan:            {fluid.makespan:10.1f}")
    print(f"speedup:                   {serial.makespan / fluid.makespan:10.2f}x")

    same = fluid_region.output("smoothed") == serial_region.output("smoothed")
    print(f"outputs identical:         {same}")
    consume = fluid_region.graph.task("consume")
    print(f"consumer executions:       {consume.stats.runs} "
          f"(quality failures: {consume.stats.quality_failures})")


if __name__ == "__main__":
    main()
