#!/usr/bin/env python
"""Inspect a fluid schedule as an ASCII Gantt chart, then auto-tune it.

Part 1 renders the task timeline of a racing pipeline: the consumer's
valve wait (``=``), its re-executions (repeated ``#`` stretches) and its
waits (``w``) are all visible — the runtime behaviour of the paper's
Figure 5/Table 3 as a picture.

Part 2 runs the Section-4.4 auto-tuner: find the smallest start-valve
threshold whose error stays inside a budget.

Run:  python examples/timeline_and_tuning.py
"""

from repro import (FluidRegion, PercentValve, SimExecutor,
                   ThresholdTuner, TimelineRecorder)
from repro.apps.kmeans import KMeansApp
from repro.workloads import synthetic_image

N = 120


class RacingPipeline(FluidRegion):
    """A consumer 10x faster than its producer: guaranteed re-execution."""

    def build(self):
        source = self.input_data("source", list(range(N)))
        mid = self.add_array("mid", [0] * N)
        out = self.add_array("out", [0] * N)
        ct = self.add_count("ct")

        def produce(ctx):
            for i in range(N):
                mid[i] = source.read()[i] * 2
                ct.add()
                yield 4.0

        def consume(ctx):
            for i in range(N):
                out[i] = mid[i] + 1
                yield 0.4

        self.add_task("produce", produce, inputs=[source], outputs=[mid])
        self.add_task("consume", consume,
                      start_valves=[PercentValve(ct, 0.3, N)],
                      end_valves=[PercentValve(ct, 1.0, N)],
                      inputs=[mid], outputs=[out])


def main():
    print("=== Part 1: the schedule, drawn ===")
    region = RacingPipeline("race")
    recorder = TimelineRecorder()
    recorder.attach(region)
    executor = SimExecutor(cores=4)
    executor.submit(region)
    executor.run()
    print(recorder.render(width=76))
    print(f"consumer executions: {recorder.runs_of('race/consume')}\n")

    print("=== Part 2: auto-tuning K-means (error budget 3%) ===")
    app = KMeansApp(synthetic_image(40, 40, diversity=6, seed=21),
                    num_clusters=5, epochs=5)
    tuner = ThresholdTuner(error_budget=0.03, resolution=0.05)
    result = tuner.tune(app)
    print(f"chosen threshold: {result.threshold:.3f}")
    print(f"normalized latency: {result.normalized_latency:.3f} "
          f"(error {100 * result.error:.2f}%)")
    print(f"probes spent: {result.num_probes}")
    for probe in result.probes:
        print(f"  threshold {probe.threshold:.3f} -> "
              f"latency {probe.normalized_latency:.3f}, "
              f"error {100 * probe.error:.2f}%")


if __name__ == "__main__":
    main()
