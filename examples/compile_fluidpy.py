#!/usr/bin/env python
"""Drive the FluidPy source-to-source translator programmatically.

Shows the Section-5 pipeline on a small inline program: parse the
pragma-annotated source, print the diagnostics, emit the generated
Python (the Figure-4 equivalent), and execute it.

Run:  python examples/compile_fluidpy.py
"""

import textwrap

from repro import SimExecutor
from repro.lang import check_source, load_source, translate_source

SOURCE = textwrap.dedent('''
    """A tiny fluid pipeline: scale then offset."""

    __fluid__
    class ScaleOffset:
        #pragma data {float *d_in;}
        #pragma data {float *d_mid;}
        #pragma data {float *d_out;}
        #pragma count {int ct;}
        #pragma valve {ValveCT v_start;}
        #pragma valve {ValveCT v_end;}

        def scale(self, ctx, ct):
            values = self.d_in.read()
            out = self.d_mid.read()
            for i in range(len(values)):
                out[i] = values[i] * self.factor
                self.d_mid.touch()
                ct.add()
                yield 2.0

        def offset(self, ctx):
            mid = self.d_mid.read()
            out = self.d_out.read()
            for i in range(len(mid)):
                out[i] = mid[i] + self.delta
                yield 1.0

        def region(self):
            n = len(self.values)
            d_in.init(list(self.values))
            d_mid.init([0.0] * n)
            d_out.init([0.0] * n)
            ct.init(0)
            #pragma task <<<t1, {}, {}, {d_in}, {d_mid}>>> scale(ct)
            v_start.init(ct, 0.5 * n)
            v_end.init(ct, 1.0 * n)
            #pragma task <<<t2, {v_start}, {v_end}, {d_mid}, {d_out}>>> offset()
            sync(t2)
''')


def main():
    print("=== diagnostics (lint mode) ===")
    for diagnostic in check_source(SOURCE, "scale_offset.fpy") or ["clean"]:
        print(" ", diagnostic)

    result = translate_source(SOURCE, "scale_offset.fpy")
    print("\n=== generated Python (Figure-4 equivalent) ===")
    print(result.python_source)

    print("=== execution ===")
    namespace = load_source(SOURCE, "scale_offset.fpy")
    region = namespace["ScaleOffset"](values=[1.0, 2.0, 3.0, 4.0],
                                      factor=10.0, delta=0.5)
    executor = SimExecutor(cores=2)
    executor.submit(region)
    executor.run()
    print("output:", region.output("d_out"))


if __name__ == "__main__":
    main()
