#!/usr/bin/env python
"""A tour of the unified telemetry layer.

One `Telemetry` object bundles the event bus with the standard
subscribers: the classic `Trace`, a `MetricsRegistry` (valve verdicts,
re-executions, early terminations, stall time, worker utilization), and
a Chrome trace-event exporter whose JSON loads directly in
chrome://tracing or https://ui.perfetto.dev, with one row per task and
re-execution stretches visible exactly like the paper's Gantt figures.

The same object works on every backend; here we run a K-means epoch
chain on the simulator, print the headline counters, and write both
artifacts next to this script.

Run:  python examples/telemetry_tour.py
"""

import os
import tempfile

import numpy as np

from repro import Telemetry
from repro.apps.kmeans import KMeansApp


def main():
    rng = np.random.default_rng(5)
    app = KMeansApp(rng.random((24, 24)), num_clusters=4, epochs=4, seed=5)

    telemetry = Telemetry()
    fluid = app.run_fluid(telemetry=telemetry)
    print(f"fluid K-means finished: makespan {fluid.makespan:.0f} cost "
          f"units, error {fluid.error:.4f}\n")

    counters = telemetry.metrics.counters
    print("headline counters:")
    for key in ("tasks.runs", "tasks.completed", "tasks.reexecutions",
                "tasks.early_terminations", "tasks.quality_failures",
                "valve.start.pass", "valve.start.fail",
                "valve.end.pass", "valve.end.fail"):
        print(f"  {key:<26} {counters[key]:g}")
    print(f"  {'time.waiting':<26} {counters['time.waiting']:.0f}")
    print(f"  {'time.dep_stalled':<26} {counters['time.dep_stalled']:.0f}")
    gauges = telemetry.metrics.gauges
    print(f"  worker utilization         {gauges['worker.utilization']:.3f} "
          f"({gauges['run.workers']:g} virtual cores)\n")

    # The classic Trace rides the same bus (scheduler + guard events).
    print("first trace lines:")
    print(telemetry.trace.render(limit=6), "\n")

    out_dir = tempfile.mkdtemp(prefix="fluid-telemetry-")
    trace_path = os.path.join(out_dir, "kmeans.perfetto.json")
    metrics_path = os.path.join(out_dir, "kmeans.metrics.json")
    telemetry.write(trace_out=trace_path, metrics_out=metrics_path)
    slices = sum(1 for event in telemetry.chrome_trace()["traceEvents"]
                 if event.get("ph") == "X")
    print(f"wrote {trace_path} ({slices} timeline slices; open it at "
          "https://ui.perfetto.dev)")
    print(f"wrote {metrics_path} (inspect with "
          "python -m repro.telemetry summarize)")


if __name__ == "__main__":
    main()
