#!/usr/bin/env python
"""Composing Fluid with conventional multithreading (Section 7.5).

Edge detection split into row bands — the conventional multithreaded
decomposition — with fluid valves layered on top, swept over thread
counts on a simulated 20-core machine.  Also demonstrates the real
OS-thread backend on a small region (semantics only: under CPython the
GIL serializes the actual compute, see DESIGN.md).

Run:  python examples/multithreaded_fluid.py
"""

from repro import ThreadExecutor
from repro.apps.edge_detection import EdgeDetectionApp
from repro.workloads import synthetic_image

from quickstart import Pipeline  # reuse the quickstart region


def main():
    image = synthetic_image(64, 64, noise=12.0, seed=11)
    app = EdgeDetectionApp(image)

    print("threads | multithreaded baseline | fluid | fluid/baseline")
    for threads in (1, 2, 4, 8, 16):
        baseline = app.run_multithreaded_baseline(threads)
        fluid = app.run_fluid(parallelism=threads)
        print(f"{threads:7} | {baseline.makespan:22.0f} | "
              f"{fluid.makespan:9.0f} | "
              f"{fluid.makespan / baseline.makespan:14.3f}")

    print("\nreal-thread backend (one guard thread per task):")
    region = Pipeline("threads-demo")
    executor = ThreadExecutor(timeout=30)
    executor.submit(region)
    result = executor.run()
    print(f"  wall-clock makespan: {result.makespan * 1000:.1f} ms")
    print(f"  region complete:     {region.complete}")


if __name__ == "__main__":
    main()
