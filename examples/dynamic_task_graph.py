#!/usr/bin/env python
"""Dynamic task graphs: spawning consumers while the region executes.

The paper's Section 8 lists "accommodating dynamic task-graphs"
(producer early-termination with non-fixed consumer count) as its first
piece of future work; this repository implements it as an extension.  A
scanning producer discovers work categories on the fly and calls
``ctx.spawn`` to create one fluid consumer per category — each gated by
its own start valve, overlapping the still-running scan.

Run:  python examples/dynamic_task_graph.py
"""

from repro import FluidRegion, PercentValve, SimExecutor, run_serial

ITEMS = 240
CATEGORIES = 4


class AdaptiveAnalysis(FluidRegion):
    """Scan a stream; spawn one aggregator per category discovered."""

    def build(self):
        stream = self.input_data("stream",
                                 [(i * 7919) % CATEGORIES for i in
                                  range(ITEMS)])
        scanned = self.add_array("scanned", [0] * ITEMS)
        progress = self.add_count("progress")
        self.totals = {}
        region = self

        def scan(ctx):
            seen = set()
            values = stream.read()
            for index in range(ITEMS):
                category = values[index]
                scanned[index] = category
                progress.add()
                if category not in seen:
                    seen.add(category)
                    spawn_aggregator(ctx, category)
                yield 2.0

        def spawn_aggregator(ctx, category):
            out = region.add_array(f"total_{category}", [0])
            region.totals[category] = out

            def aggregate(ctx2, category=category, out=out):
                total = 0
                values = stream.read()
                for index in range(ITEMS):
                    if values[index] == category:
                        total += index
                    yield 0.5
                out[0] = total

            # Each consumer waits until 30% of the scan is done, then
            # overlaps with it.
            ctx.spawn(f"aggregate_{category}", aggregate,
                      start_valves=[PercentValve(progress, 0.3, ITEMS)],
                      inputs=[scanned], outputs=[out])

        self.add_task("scan", scan, inputs=[stream], outputs=[scanned])


def main():
    serial_region = AdaptiveAnalysis("serial")
    serial = run_serial(serial_region)

    fluid_region = AdaptiveAnalysis("fluid")
    executor = SimExecutor(cores=8, trace=True)
    executor.submit(fluid_region)
    fluid = executor.run()

    print(f"tasks in the final graph: {len(fluid_region.graph)} "
          f"(1 static scan + {CATEGORIES} spawned aggregators)")
    print(f"spawn events in trace:    {fluid.trace.count('spawn')}")
    print(f"serial makespan:          {serial.makespan:10.1f}")
    print(f"fluid makespan:           {fluid.makespan:10.1f} "
          f"({serial.makespan / fluid.makespan:.2f}x)")
    agree = all(fluid_region.totals[c][0] == serial_region.totals[c][0]
                for c in range(CATEGORIES))
    print(f"outputs agree with serial: {agree}")
    for category in sorted(fluid_region.totals):
        print(f"  category {category}: {fluid_region.totals[category][0]}")


if __name__ == "__main__":
    main()
