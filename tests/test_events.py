"""Unit tests for the discrete-event queue."""

import pytest

from repro.core.errors import StateError
from repro.runtime.events import EventQueue
from repro.schedlab.policy import SeededRandomPolicy


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while queue:
            _, fn = queue.pop()
            fn()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        queue = EventQueue()
        order = []
        for label in "abcde":
            queue.push(1.0, lambda label=label: order.append(label))
        while queue:
            queue.pop()[1]()
        assert order == list("abcde")

    def test_pop_returns_time(self):
        queue = EventQueue()
        queue.push(2.5, lambda: None)
        time, _fn = queue.pop()
        assert time == 2.5

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(0.0, lambda: None)
        assert queue and len(queue) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_interleaved_push_pop(self):
        queue = EventQueue()
        seen = []
        queue.push(1.0, lambda: queue.push(1.5, lambda: seen.append("nested")))
        queue.push(2.0, lambda: seen.append("late"))
        while queue:
            queue.pop()[1]()
        assert seen == ["nested", "late"]

    def test_pop_empty_raises_state_error(self):
        with pytest.raises(StateError, match="empty EventQueue"):
            EventQueue().pop()

    def test_pop_empty_raises_state_error_after_drain(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.pop()
        with pytest.raises(StateError, match="no pending events"):
            queue.pop()

    def test_pop_empty_with_policy_raises_state_error(self):
        queue = EventQueue(SeededRandomPolicy(0))
        with pytest.raises(StateError, match="empty EventQueue"):
            queue.pop()

    def test_policy_breaks_ties_but_not_time_order(self):
        queue = EventQueue(SeededRandomPolicy(1))
        order = []
        for label in "abcd":
            queue.push(1.0, lambda label=label: order.append(label),
                       key=label)
        queue.push(0.5, lambda: order.append("first"), key="first")
        while queue:
            queue.pop()[1]()
        assert order[0] == "first"
        assert sorted(order[1:]) == list("abcd")

    def test_no_policy_keeps_fifo_among_ties(self):
        queue = EventQueue()
        order = []
        for label in "abcde":
            queue.push(2.0, lambda label=label: order.append(label),
                       key=label)
        while queue:
            queue.pop()[1]()
        assert order == list("abcde")
