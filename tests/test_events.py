"""Unit tests for the discrete-event queue."""

import pytest

from repro.runtime.events import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while queue:
            _, fn = queue.pop()
            fn()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        queue = EventQueue()
        order = []
        for label in "abcde":
            queue.push(1.0, lambda label=label: order.append(label))
        while queue:
            queue.pop()[1]()
        assert order == list("abcde")

    def test_pop_returns_time(self):
        queue = EventQueue()
        queue.push(2.5, lambda: None)
        time, _fn = queue.pop()
        assert time == 2.5

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(0.0, lambda: None)
        assert queue and len(queue) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_interleaved_push_pop(self):
        queue = EventQueue()
        seen = []
        queue.push(1.0, lambda: queue.push(1.5, lambda: seen.append("nested")))
        queue.push(2.0, lambda: seen.append("late"))
        while queue:
            queue.pop()[1]()
        assert seen == ["nested", "late"]
