"""Property-based tests for the FluidPy pragma parser and lexer."""

from hypothesis import given, settings, strategies as st

from repro.lang.diagnostics import DiagnosticSink
from repro.lang.lexer import tokenize
from repro.lang.parser import (parse_count_pragma, parse_data_pragma,
                               parse_task_pragma, parse_valve_pragma)
from repro.lang.tokens import TokenKind

identifier = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,12}", fullmatch=True
                           ).filter(lambda s: s not in ("in", "if", "for"))
name_list = st.lists(identifier, min_size=0, max_size=4, unique=True)


def fresh_sink():
    return DiagnosticSink("prop.fpy")


@settings(max_examples=150, deadline=None)
@given(type_name=identifier, member=identifier,
       is_array=st.booleans(), with_semi=st.booleans())
def test_data_pragma_roundtrip(type_name, member, is_array, with_semi):
    star = "*" if is_array else ""
    semi = ";" if with_semi else ""
    payload = f"{{{type_name} {star}{member}{semi}}}"
    sink = fresh_sink()
    pragma = parse_data_pragma(payload, 1, sink)
    assert not sink.errors
    assert pragma.type_name == type_name
    assert pragma.name == member
    assert pragma.is_array == is_array


@settings(max_examples=100, deadline=None)
@given(type_name=identifier, member=identifier)
def test_count_pragma_roundtrip(type_name, member):
    sink = fresh_sink()
    pragma = parse_count_pragma(f"{{{type_name} {member};}}", 3, sink)
    assert not sink.errors
    assert (pragma.type_name, pragma.name, pragma.line) == \
        (type_name, member, 3)


@settings(max_examples=100, deadline=None)
@given(valve_type=identifier, member=identifier,
       args=st.one_of(st.none(),
                      st.lists(identifier, min_size=1, max_size=3)))
def test_valve_pragma_roundtrip(valve_type, member, args):
    args_src = ", ".join(args) if args else None
    payload = f"{{{valve_type} {member}"
    if args_src:
        payload += f"({args_src})"
    payload += ";}"
    sink = fresh_sink()
    pragma = parse_valve_pragma(payload, 1, sink)
    assert not sink.errors
    assert pragma.valve_type == valve_type
    assert pragma.name == member
    if args_src:
        assert pragma.args_src == args_src
    else:
        assert pragma.args_src is None


@settings(max_examples=150, deadline=None)
@given(task=identifier, sv=name_list, ev=name_list,
       inputs=name_list, outputs=name_list,
       func=identifier, args=st.lists(identifier, max_size=3))
def test_task_pragma_roundtrip(task, sv, ev, inputs, outputs, func, args):
    args_src = ", ".join(args)
    payload = (f"<<<{task}, {{{', '.join(sv)}}}, {{{', '.join(ev)}}}, "
               f"{{{', '.join(inputs)}}}, {{{', '.join(outputs)}}}>>> "
               f"{func}({args_src})")
    sink = fresh_sink()
    pragma = parse_task_pragma(payload, 7, sink)
    assert not sink.errors
    assert pragma.task_name == task
    assert pragma.start_valves == sv
    assert pragma.end_valves == ev
    assert pragma.inputs == inputs
    assert pragma.outputs == outputs
    assert pragma.func_name == func
    assert pragma.args_src == args_src


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet=st.characters(
    whitelist_categories=("Lu", "Ll", "Nd"),
    whitelist_characters=" _{}();,*.<>+-/"), max_size=60))
def test_lexer_never_crashes_and_terminates(payload):
    sink = fresh_sink()
    tokens = tokenize(payload, 1, sink)
    assert tokens[-1].kind is TokenKind.END
    # Token count is bounded by input length plus the END sentinel.
    assert len(tokens) <= len(payload) + 1


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 9))
def test_lexer_numbers(value):
    tokens = tokenize(str(value), 1, fresh_sink())
    assert tokens[0].kind is TokenKind.NUMBER
    assert tokens[0].text == str(value)
