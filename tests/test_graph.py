"""Unit tests for task graph inference and region validation."""

import pytest

from repro.core.data import FluidData
from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.task import FluidTask, TaskSpec
from repro.core.valves import AlwaysValve


def _body(ctx):
    yield 1.0


def task(name, inputs=(), outputs=(), end_valves=()):
    return FluidTask(TaskSpec(name, _body, inputs=inputs, outputs=outputs,
                              end_valves=end_valves))


def data(name):
    return FluidData(name)


class TestTopologyInference:
    def test_edge_from_shared_data(self):
        d = data("d")
        t1, t2 = task("t1", outputs=[d]), task("t2", inputs=[d])
        graph = TaskGraph([t1, t2])
        assert t2.parents == (t1,)
        assert t1.children == (t2,)

    def test_region_input_makes_no_edge(self):
        src = data("src").mark_input()
        t1 = task("t1", inputs=[src], outputs=[data("a")])
        graph = TaskGraph([t1])
        assert t1.parents == ()

    def test_descendants_transitive(self):
        a, b = data("a"), data("b")
        t1 = task("t1", outputs=[a])
        t2 = task("t2", inputs=[a], outputs=[b])
        t3 = task("t3", inputs=[b])
        graph = TaskGraph([t1, t2, t3])
        assert {t.name for t in t1.descendants} == {"t2", "t3"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([task("t"), task("t")])

    def test_two_producers_rejected(self):
        d = data("d")
        with pytest.raises(GraphError, match="two producers"):
            TaskGraph([task("t1", outputs=[d]), task("t2", outputs=[d])])

    def test_producer_recorded_on_data(self):
        d = data("d")
        t1 = task("t1", outputs=[d])
        TaskGraph([t1])
        assert d.producer is t1

    def test_diamond_parents(self):
        a, l, r = data("a"), data("l"), data("r")
        t0 = task("t0", outputs=[a])
        tl = task("tl", inputs=[a], outputs=[l])
        tr = task("tr", inputs=[a], outputs=[r])
        tj = task("tj", inputs=[l, r])
        graph = TaskGraph([t0, tl, tr, tj])
        assert set(tj.parents) == {tl, tr}
        assert set(t0.children) == {tl, tr}


class TestTopoOrder:
    def test_respects_dependencies(self):
        a, b = data("a"), data("b")
        t1 = task("t1", outputs=[a])
        t2 = task("t2", inputs=[a], outputs=[b])
        t3 = task("t3", inputs=[b])
        order = [t.name for t in TaskGraph([t3, t1, t2]).topo_order()]
        assert order.index("t1") < order.index("t2") < order.index("t3")

    def test_cycle_detected(self):
        a, b = data("a"), data("b")
        t1 = task("t1", inputs=[b], outputs=[a])
        t2 = task("t2", inputs=[a], outputs=[b])
        with pytest.raises(GraphError, match="cyclic"):
            TaskGraph([t1, t2]).topo_order()


class TestValidation:
    def test_valid_chain_passes(self):
        a = data("a")
        TaskGraph([task("t1", outputs=[a]), task("t2", inputs=[a])]).validate()

    def test_empty_region_rejected(self):
        with pytest.raises(GraphError, match="at least one task"):
            TaskGraph([]).validate()

    def test_multiple_roots_rejected(self):
        a, b = data("a"), data("b")
        t1 = task("t1", outputs=[a])
        t2 = task("t2", outputs=[b])
        t3 = task("t3", inputs=[a, b])
        with pytest.raises(GraphError, match="exactly one root"):
            TaskGraph([t1, t2, t3]).validate()

    def test_end_valves_on_interior_task_rejected(self):
        a = data("a")
        t1 = task("t1", outputs=[a], end_valves=[AlwaysValve()])
        t2 = task("t2", inputs=[a])
        with pytest.raises(GraphError, match="end valves"):
            TaskGraph([t1, t2]).validate()

    def test_end_valves_on_leaf_allowed(self):
        a = data("a")
        t1 = task("t1", outputs=[a])
        t2 = task("t2", inputs=[a], end_valves=[AlwaysValve()])
        TaskGraph([t1, t2]).validate()

    def test_single_task_region_valid(self):
        TaskGraph([task("only")]).validate()

    def test_unreachable_island_is_second_root(self):
        a = data("a")
        t1 = task("t1", outputs=[a])
        t2 = task("t2", inputs=[a])
        island = task("island")
        with pytest.raises(GraphError):
            TaskGraph([t1, t2, island]).validate()


class TestRegionIO:
    def test_region_inputs_are_unproduced(self):
        src = data("src").mark_input()
        a = data("a")
        t1 = task("t1", inputs=[src], outputs=[a])
        t2 = task("t2", inputs=[a])
        graph = TaskGraph([t1, t2])
        assert graph.region_inputs() == [src]

    def test_region_outputs_come_from_leaves(self):
        a, out = data("a"), data("out")
        t1 = task("t1", outputs=[a])
        t2 = task("t2", inputs=[a], outputs=[out])
        graph = TaskGraph([t1, t2])
        assert graph.region_outputs() == [out]

    def test_roots_and_leaves(self):
        a = data("a")
        t1 = task("t1", outputs=[a])
        t2 = task("t2", inputs=[a])
        graph = TaskGraph([t1, t2])
        assert graph.roots == [t1]
        assert graph.leaves == [t2]
