"""Unit tests for repro.core.data."""

import pytest

from repro.core.data import FluidArray, FluidData, FluidScalar
from repro.core.errors import DataError


class TestLifecycle:
    def test_fresh_data_is_partial(self):
        d = FluidData("d")
        assert not d.final and not d.precise and d.version == 0

    def test_region_input_is_final_and_precise(self):
        d = FluidData("in", 42).mark_input()
        assert d.final and d.precise
        assert d.read_final() == 42

    def test_write_bumps_version(self):
        d = FluidData("d")
        d.write(1)
        d.write(2)
        assert d.version == 2
        assert d.read() == 2

    def test_write_clears_finality(self):
        d = FluidData("d", 0)
        d.mark_final(precise=True)
        d.write(1)
        assert not d.final and not d.precise

    def test_mark_final_imprecise(self):
        d = FluidData("d", 5)
        d.mark_final(precise=False)
        assert d.final and not d.precise

    def test_init_resets_state(self):
        d = FluidData("d", 1)
        d.write(2)
        d.mark_final(precise=True)
        d.init(9)
        assert d.read() == 9
        assert d.version == 0 and not d.final and not d.precise


class TestAccessControl:
    def test_read_final_rejects_partial(self):
        d = FluidData("d", 1)
        with pytest.raises(DataError):
            d.read_final()

    def test_read_final_after_mark_final(self):
        d = FluidData("d", 1)
        d.mark_final(precise=False)
        assert d.read_final() == 1

    def test_fluid_read_always_allowed(self):
        d = FluidData("d", 3)
        assert d.read() == 3


class TestSnapshots:
    def test_snapshot_captures_state(self):
        d = FluidData("d", 0)
        d.write(1)
        snap = d.snapshot()
        assert snap.version == 1 and not snap.final and not snap.precise

    def test_advanced_by_new_version(self):
        d = FluidData("d", 0)
        snap = d.snapshot()
        d.write(1)
        assert snap.advanced_in(d)

    def test_advanced_by_gaining_precision(self):
        d = FluidData("d", 0)
        d.write(1)
        snap = d.snapshot()
        d.mark_final(precise=True)
        assert snap.advanced_in(d)

    def test_not_advanced_when_unchanged(self):
        d = FluidData("d", 0)
        d.write(1)
        snap = d.snapshot()
        assert not snap.advanced_in(d)

    def test_final_without_precision_is_not_advancement(self):
        # mark_final(precise=False) does not bump version: the consumer
        # already saw all writes; re-running on it would be pointless.
        d = FluidData("d", 0)
        d.write(1)
        snap = d.snapshot()
        d.mark_final(precise=False)
        assert not snap.advanced_in(d)


class TestWatchers:
    def test_on_final_fires(self):
        d = FluidData("d", 0)
        fired = []
        d.on_final(lambda data: fired.append(data.name))
        d.mark_final(precise=True)
        assert fired == ["d"]


class TestFluidArray:
    def test_len_and_indexing(self):
        a = FluidArray("a", [10, 20, 30])
        assert len(a) == 3
        assert a[1] == 20

    def test_setitem_bumps_version(self):
        a = FluidArray("a", [0, 0])
        a[0] = 5
        a[1] = 6
        assert a.version == 2
        assert a.read() == [5, 6]

    def test_fill_slice_is_one_write(self):
        a = FluidArray("a", [0] * 6)
        a.fill_slice(2, 5, [1, 2, 3])
        assert a.read() == [0, 0, 1, 2, 3, 0]
        assert a.version == 1

    def test_empty_array_len(self):
        assert len(FluidArray("a")) == 0

    def test_numpy_payloads(self):
        numpy = pytest.importorskip("numpy")
        a = FluidArray("a", numpy.zeros(4))
        a.fill_slice(0, 2, numpy.ones(2))
        assert a.read()[0] == 1.0
        assert a.version == 1

    def test_touch_records_inplace_mutation(self):
        a = FluidArray("a", [0])
        a.read()[0] = 99  # mutate behind the cell's back
        a.touch()
        assert a.version == 1


class TestScalar:
    def test_scalar_is_fluid_data(self):
        s = FluidScalar("s", 1.5)
        s.write(2.5)
        assert s.read() == 2.5
        assert isinstance(s, FluidData)


class TestPayloadRebind:
    """apply_payload rebind telemetry (docs/api.md contract)."""

    @staticmethod
    def _watched(value):
        from types import SimpleNamespace

        from repro.telemetry.bus import TelemetryBus

        bus = TelemetryBus()
        events = []
        bus.subscribe(events.append)
        d = FluidData("buf", value)
        d.region = SimpleNamespace(telemetry=bus, name="r")
        return d, events

    def test_container_rebind_emits_event(self):
        d, events = self._watched([1, 2, 3])
        d.apply_payload((1, 2, 3, 4))      # type change: cannot copy
        rebounds = [e for e in events
                    if e.kind == "payload" and e.name == "rebound"]
        assert len(rebounds) == 1
        assert rebounds[0].data["cell"] == "buf"
        assert rebounds[0].data["from_type"] == "list"
        assert rebounds[0].data["to_type"] == "tuple"
        assert d.read() == (1, 2, 3, 4)

    def test_in_place_copy_is_silent(self):
        d, events = self._watched([1, 2, 3])
        d.apply_payload([4, 5, 6, 7])      # lists copy in place (resize)
        assert not [e for e in events if e.name == "rebound"]
        assert d.read() == [4, 5, 6, 7]

    def test_scalar_rebind_is_silent(self):
        d, events = self._watched(7)
        d.apply_payload(8)                 # scalars always rebind: normal
        assert not [e for e in events if e.name == "rebound"]

    def test_ndarray_shape_change_emits_event(self):
        np = pytest.importorskip("numpy")
        d, events = self._watched(np.zeros(3))
        d.apply_payload(np.zeros(4))
        rebounds = [e for e in events if e.name == "rebound"]
        assert len(rebounds) == 1
        assert rebounds[0].data["from_shape"] == (3,)
        assert rebounds[0].data["to_shape"] == (4,)

    def test_no_region_no_crash(self):
        d = FluidData("buf", [1, 2])
        d.apply_payload((1, 2, 3))
        assert d.read() == (1, 2, 3)

    def test_rebind_feeds_metrics_counter(self):
        from types import SimpleNamespace

        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        d = FluidData("buf", [1, 2])
        d.region = SimpleNamespace(telemetry=telemetry.bus, name="r")
        d.apply_payload((1, 2, 3))
        assert telemetry.metrics.counters["process.payload_rebinds"] == 1
