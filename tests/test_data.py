"""Unit tests for repro.core.data."""

import pytest

from repro.core.data import FluidArray, FluidData, FluidScalar
from repro.core.errors import DataError


class TestLifecycle:
    def test_fresh_data_is_partial(self):
        d = FluidData("d")
        assert not d.final and not d.precise and d.version == 0

    def test_region_input_is_final_and_precise(self):
        d = FluidData("in", 42).mark_input()
        assert d.final and d.precise
        assert d.read_final() == 42

    def test_write_bumps_version(self):
        d = FluidData("d")
        d.write(1)
        d.write(2)
        assert d.version == 2
        assert d.read() == 2

    def test_write_clears_finality(self):
        d = FluidData("d", 0)
        d.mark_final(precise=True)
        d.write(1)
        assert not d.final and not d.precise

    def test_mark_final_imprecise(self):
        d = FluidData("d", 5)
        d.mark_final(precise=False)
        assert d.final and not d.precise

    def test_init_resets_state(self):
        d = FluidData("d", 1)
        d.write(2)
        d.mark_final(precise=True)
        d.init(9)
        assert d.read() == 9
        assert d.version == 0 and not d.final and not d.precise


class TestAccessControl:
    def test_read_final_rejects_partial(self):
        d = FluidData("d", 1)
        with pytest.raises(DataError):
            d.read_final()

    def test_read_final_after_mark_final(self):
        d = FluidData("d", 1)
        d.mark_final(precise=False)
        assert d.read_final() == 1

    def test_fluid_read_always_allowed(self):
        d = FluidData("d", 3)
        assert d.read() == 3


class TestSnapshots:
    def test_snapshot_captures_state(self):
        d = FluidData("d", 0)
        d.write(1)
        snap = d.snapshot()
        assert snap.version == 1 and not snap.final and not snap.precise

    def test_advanced_by_new_version(self):
        d = FluidData("d", 0)
        snap = d.snapshot()
        d.write(1)
        assert snap.advanced_in(d)

    def test_advanced_by_gaining_precision(self):
        d = FluidData("d", 0)
        d.write(1)
        snap = d.snapshot()
        d.mark_final(precise=True)
        assert snap.advanced_in(d)

    def test_not_advanced_when_unchanged(self):
        d = FluidData("d", 0)
        d.write(1)
        snap = d.snapshot()
        assert not snap.advanced_in(d)

    def test_final_without_precision_is_not_advancement(self):
        # mark_final(precise=False) does not bump version: the consumer
        # already saw all writes; re-running on it would be pointless.
        d = FluidData("d", 0)
        d.write(1)
        snap = d.snapshot()
        d.mark_final(precise=False)
        assert not snap.advanced_in(d)


class TestWatchers:
    def test_on_final_fires(self):
        d = FluidData("d", 0)
        fired = []
        d.on_final(lambda data: fired.append(data.name))
        d.mark_final(precise=True)
        assert fired == ["d"]


class TestFluidArray:
    def test_len_and_indexing(self):
        a = FluidArray("a", [10, 20, 30])
        assert len(a) == 3
        assert a[1] == 20

    def test_setitem_bumps_version(self):
        a = FluidArray("a", [0, 0])
        a[0] = 5
        a[1] = 6
        assert a.version == 2
        assert a.read() == [5, 6]

    def test_fill_slice_is_one_write(self):
        a = FluidArray("a", [0] * 6)
        a.fill_slice(2, 5, [1, 2, 3])
        assert a.read() == [0, 0, 1, 2, 3, 0]
        assert a.version == 1

    def test_empty_array_len(self):
        assert len(FluidArray("a")) == 0

    def test_numpy_payloads(self):
        numpy = pytest.importorskip("numpy")
        a = FluidArray("a", numpy.zeros(4))
        a.fill_slice(0, 2, numpy.ones(2))
        assert a.read()[0] == 1.0
        assert a.version == 1

    def test_touch_records_inplace_mutation(self):
        a = FluidArray("a", [0])
        a.read()[0] = 99  # mutate behind the cell's back
        a.touch()
        assert a.version == 1


class TestScalar:
    def test_scalar_is_fluid_data(self):
        s = FluidScalar("s", 1.5)
        s.write(2.5)
        assert s.read() == 2.5
        assert isinstance(s, FluidData)
