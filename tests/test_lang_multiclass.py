"""A whole FluidPy program: two fluid classes plus passthrough driver code.

Mirrors the paper's Figure 3 ``main()`` that instantiates two
EdgeDetection objects and runs both regions (inter-region concurrency).
"""

import textwrap


from repro import SimExecutor, submit_all
from repro.lang import load_source, translate_source

PROGRAM = textwrap.dedent('''
    """Two-stage pipeline program with a helper and a driver."""

    SCALE = 3


    def helper(value):
        return value * SCALE


    __fluid__
    class Doubler:
        #pragma data {int *d_in;}
        #pragma data {int *d_out;}
        #pragma count {int ct;}
        #pragma valve {ValveCT v_end;}

        def run(self, ctx, ct):
            values = self.d_in.read()
            out = self.d_out.read()
            for i in range(len(values)):
                out[i] = values[i] * 2
                self.d_out.touch()
                ct.add()
                yield 1.0

        def check(self, ctx):
            for _ in range(2):
                yield 0.5

        def region(self):
            n = len(self.values)
            d_in.init(list(self.values))
            d_out.init([0] * n)
            ct.init(0)
            #pragma task <<<t1, {}, {}, {d_in}, {d_out}>>> run(ct)
            v_end.init(ct, 1.0 * n)
            sync(t1)


    __fluid__
    class Scaler:
        #pragma data {int *d_in;}
        #pragma data {int *d_out;}
        #pragma count {int ct;}

        def run(self, ctx, ct):
            values = self.d_in.read()
            out = self.d_out.read()
            for i in range(len(values)):
                out[i] = helper(values[i])
                self.d_out.touch()
                ct.add()
                yield 1.0

        def region(self):
            n = len(self.values)
            d_in.init(list(self.values))
            d_out.init([0] * n)
            ct.init(0)
            #pragma task <<<t1, {}, {}, {d_in}, {d_out}>>> run(ct)
            sync(t1)


    def build_all(values):
        """Passthrough driver: the Figure-3 main() shape."""
        return [Doubler(values=values), Scaler(values=values)]
''')


class TestMultiClassProgram:
    def test_both_classes_translated(self):
        result = translate_source(PROGRAM, "pair.fpy")
        assert result.class_names == ["Doubler", "Scaler"]

    def test_passthrough_helpers_survive(self):
        source = translate_source(PROGRAM, "pair.fpy").python_source
        assert "def helper(value):" in source
        assert "SCALE = 3" in source
        assert "def build_all(values):" in source

    def test_driver_builds_and_runs_both_regions(self):
        namespace = load_source(PROGRAM, "pair.fpy")
        regions = namespace["build_all"]([1, 2, 3, 4])
        executor = SimExecutor(cores=4)
        submit_all(executor, regions)
        executor.run()
        doubler, scaler = regions
        assert doubler.output("d_out") == [2, 4, 6, 8]
        assert scaler.output("d_out") == [3, 6, 9, 12]

    def test_regions_overlap(self):
        namespace = load_source(PROGRAM, "pair.fpy")
        values = list(range(200))
        regions = namespace["build_all"](values)
        executor = SimExecutor(cores=4, trace=True)
        submit_all(executor, regions)
        result = executor.run()
        # Inter-region concurrency: the second region launches before the
        # first finishes.
        launches = {e.region: e.time for e in result.trace.events
                    if e.event == "launch"}
        dones = {e.region: e.time for e in result.trace.events
                 if e.event == "region-done"}
        names = list(launches)
        assert launches[names[1]] < min(dones.values())

    def test_table2_stats_count_both_classes(self):
        result = translate_source(PROGRAM, "pair.fpy")
        per_class = result.per_class_stats()
        assert [s.class_name for s in per_class] == ["Doubler", "Scaler"]
        assert all(s.region_pragmas >= 4 for s in per_class)
