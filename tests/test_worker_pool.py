"""Persistent worker pools: reuse, crash respawn, batched-dispatch parity.

PID stability is the pool's whole point — ``FluidService`` requests and
``repro.stream`` windows must stop forking a fresh worker set per run —
so these tests read ``os.getpid()`` out of worker-run task bodies and
assert the processes stay put.  Crash recovery and the private
``Queue._reader`` dependency get their own regression tests because both
lean on fragile OS/CPython detail.
"""

import os

import pytest

from repro.core.region import FluidRegion
from repro.runtime import (PersistentProcessPool, ProcessExecutor,
                           SimExecutor, ThreadExecutor, pool_blob)
from repro.runtime.context import RunContext
from repro.service.pools import OneShotPool
from repro.stream import Pipeline, Stage
from repro.telemetry import Telemetry

from util import make_pipeline, pipeline_expected


# ------------------------------------------------------- region factories

def make_pid_region(name="pids", tasks=2):
    """Every task writes its worker's PID to its own output cell."""

    from repro.core.valves import DataFinalValve

    class _Pids(FluidRegion):
        def build(self):
            token = self.add_data("token", 0)

            def header(ctx):
                token.write(1)
                yield 1.0

            self.add_task("header", header, inputs=[], outputs=[token])
            for index in range(tasks):
                out = self.add_data(f"pid_{index}", 0)

                def body(ctx, out=out):
                    out.write(os.getpid())
                    yield 1.0

                self.add_task(f"t{index}", body,
                              start_valves=[DataFinalValve(token)],
                              inputs=[token], outputs=[out])

    region = _Pids(name)
    region.remote_factory = (make_pid_region, (name, tasks), {})
    return region


def make_crasher_region(flag_path, name="crasher"):
    """The body hard-kills its worker once (gated on a flag file), so
    the retry after the respawn completes normally."""

    class _Crasher(FluidRegion):
        def build(self):
            out = self.add_data("out", 0)

            def body(ctx):
                if not os.path.exists(flag_path):
                    with open(flag_path, "w") as handle:
                        handle.write("crashed")
                    os._exit(13)
                out.write(42)
                yield 1.0

            self.add_task("boom", body, inputs=[], outputs=[out])

    region = _Crasher(name)
    region.remote_factory = (make_crasher_region, (flag_path, name), {})
    return region


def make_pooled_pipeline(n=30, name=None):
    """tests.util.make_pipeline with a factory so pools accept it."""
    region = make_pipeline(n=n, exact_quality=True, name=name)
    region.remote_factory = (make_pipeline, (n,),
                             {"exact_quality": True, "name": name})
    return region


def _pid_stage(state, seq, value):
    return state, (value, os.getpid())


# ------------------------------------------------------------- pool_blob

class TestPoolBlob:
    def test_fork_only_region_has_no_blob(self):
        assert pool_blob(make_pipeline(n=5)) is None

    def test_factory_region_pickles(self):
        blob = pool_blob(make_pid_region())
        assert isinstance(blob, bytes) and blob

    def test_unpicklable_factory_is_refused(self):
        region = make_pid_region()
        region.remote_factory = (lambda: region, (), {})
        assert pool_blob(region) is None


# ----------------------------------------------------------- pool reuse

class TestPoolReuse:
    def test_worker_pids_stable_across_sequential_runs(self):
        with PersistentProcessPool(workers=2) as pool:
            before = [process.pid for process in pool.processes]
            observed = set()
            for round_index in range(3):
                region = make_pid_region(name=f"pids{round_index}", tasks=4)
                executor = ProcessExecutor(timeout=60, pool=pool)
                executor.submit(region)
                executor.run()
                observed.update(region.output(f"pid_{index}")
                                for index in range(4))
            assert [process.pid for process in pool.processes] == before
            assert observed <= set(before)

    def test_pool_runs_full_pipeline_semantics(self):
        with PersistentProcessPool(workers=2) as pool:
            for round_index in range(2):
                region = make_pooled_pipeline(n=30, name=f"p{round_index}")
                executor = ProcessExecutor(timeout=60, pool=pool)
                executor.submit(region)
                executor.run()
                assert region.output("out") == pipeline_expected(30)

    def test_fork_only_region_is_refused_on_a_pool(self):
        from repro.core.errors import SchedulerError

        with PersistentProcessPool(workers=2) as pool:
            executor = ProcessExecutor(timeout=60, pool=pool)
            executor.submit(make_pipeline(n=5))
            with pytest.raises(SchedulerError, match="remote_factory"):
                executor.run()

    def test_lease_is_exclusive_and_close_is_idempotent(self):
        pool = PersistentProcessPool(workers=1)
        try:
            assert pool.lease() is pool
            pool.release()
        finally:
            pool.close()
            pool.close()  # second close is a no-op
        from repro.core.errors import SchedulerError

        with pytest.raises(SchedulerError, match="closed"):
            pool.lease()


# -------------------------------------------------------- crash respawn

class TestRespawn:
    def test_killed_worker_respawned_without_failing_run(self, tmp_path):
        telemetry = Telemetry()
        with PersistentProcessPool(workers=2) as pool:
            region = make_crasher_region(str(tmp_path / "crashed-once"))
            executor = ProcessExecutor(timeout=60, pool=pool,
                                       telemetry=telemetry)
            executor.submit(region)
            executor.run()
            assert region.output("out") == 42
            assert all(pool.alive())
            # The replacement worker serves the next run normally.
            follow_up = make_pid_region(name="after-crash", tasks=2)
            executor = ProcessExecutor(timeout=60, pool=pool)
            executor.submit(follow_up)
            executor.run()
            pids = {follow_up.output(f"pid_{index}") for index in range(2)}
            assert pids <= {process.pid for process in pool.processes}
        assert telemetry.metrics.counters.get(
            "process.worker_respawns", 0) >= 1

    def test_non_pool_executor_still_fails_on_dead_worker(self, tmp_path):
        from repro.core.errors import SchedulerError

        region = make_crasher_region(str(tmp_path / "never-retried"))
        executor = ProcessExecutor(workers=2, timeout=60)
        executor.submit(region)
        with pytest.raises(SchedulerError, match="died"):
            executor.run()


# ------------------------------------------------- batched-dispatch parity

class TestBatchedDispatchParity:
    """Batch size is a transport knob, not a semantics knob."""

    @pytest.mark.parametrize("batch_size", [1, 4, 16])
    def test_outputs_agree_across_backends(self, batch_size):
        sim = SimExecutor(cores=4)
        sim_region = make_pipeline(n=30, exact_quality=True)
        sim.submit(sim_region)
        sim.run()

        thread = ThreadExecutor(timeout=30)
        thread_region = make_pipeline(n=30, exact_quality=True)
        thread.submit(thread_region)
        thread.run()

        process_region = make_pipeline(n=30, exact_quality=True)
        executor = ProcessExecutor(workers=2, timeout=60,
                                   batch_size=batch_size)
        executor.submit(process_region)
        executor.run()

        expected = pipeline_expected(30)
        assert sim_region.output("out") == expected
        assert thread_region.output("out") == expected
        assert process_region.output("out") == expected

    @pytest.mark.parametrize("batch_size", [1, 4, 16])
    def test_serialized_end_verdicts_agree(self, batch_size):
        """Fully serialized, every backend accepts on the first run."""
        regions = []
        for build in (
                lambda: self._run_sim(),
                lambda: self._run_thread(),
                lambda: self._run_process(batch_size)):
            regions.append(build())
        for region in regions:
            consume = region.graph.task("consume")
            assert consume.stats.runs == 1
            assert consume.stats.quality_failures == 0

    @staticmethod
    def _serialized_region():
        return make_pipeline(n=20, start_fraction=1.0, exact_quality=True)

    def _run_sim(self):
        executor = SimExecutor(cores=4)
        region = self._serialized_region()
        executor.submit(region)
        executor.run()
        return region

    def _run_thread(self):
        executor = ThreadExecutor(timeout=30)
        region = self._serialized_region()
        executor.submit(region)
        executor.run()
        return region

    def _run_process(self, batch_size):
        executor = ProcessExecutor(workers=2, timeout=60,
                                   batch_size=batch_size)
        region = self._serialized_region()
        executor.submit(region)
        executor.run()
        return region

    def test_batch_telemetry_counters(self):
        telemetry = Telemetry()
        region = make_pid_region(name="batched", tasks=8)
        executor = ProcessExecutor(workers=2, timeout=60, batch_size=8,
                                   telemetry=telemetry)
        executor.submit(region)
        executor.run()
        counters = telemetry.metrics.counters
        assert counters.get("process.dispatch_batches", 0) >= 1
        assert "process.batch_size" in telemetry.metrics.histograms
        # Batching coalesces: strictly fewer round-trips than tasks.
        assert counters["process.dispatch_batches"] <= \
            counters["process.dispatches"]


# ------------------------------------------------ Queue._reader fallback

class _NoReaderOutbox:
    """Proxy that hides the private ``Queue._reader`` connection."""

    def __init__(self, outbox):
        object.__setattr__(self, "_wrapped", outbox)

    def __getattr__(self, name):
        if name == "_reader":
            raise AttributeError(name)
        return getattr(object.__getattribute__(self, "_wrapped"), name)


class TestAwaitActivityFallback:
    def test_run_completes_without_private_reader(self):
        """``_await_activity`` leans on CPython's private ``Queue._reader``
        for event-driven wakeups; interpreters without it must fall back
        to timed-get polling with identical results."""
        region = make_pid_region(name="noreader", tasks=4)
        executor = ProcessExecutor(workers=2, timeout=60)
        original = executor._start_pool

        def start_and_hide_reader():
            original()
            executor._outbox = _NoReaderOutbox(executor._outbox)

        executor._start_pool = start_and_hide_reader
        executor.submit(region)
        executor.run()
        pids = {region.output(f"pid_{index}") for index in range(4)}
        assert pids and all(pid > 0 for pid in pids)


# ----------------------------------------------------- service pool reuse

class TestServicePoolReuse:
    def _run_ctx(self, pool, region):
        ctx = RunContext(label=region.name)
        ctx.submit(region)
        pool.start(ctx)
        assert ctx.finished.wait(timeout=60)
        if ctx.body_error is not None:
            raise ctx.body_error
        return ctx

    def test_sequential_requests_share_worker_pids(self):
        service_pool = OneShotPool("process", workers=1,
                                   executor_options={"workers": 2})
        try:
            pids = []
            for index in range(2):
                region = make_pid_region(name=f"req{index}", tasks=4)
                self._run_ctx(service_pool, region)
                pids.append({region.output(f"pid_{i}") for i in range(4)})
            assert service_pool._process_pool is not None
            assert pids[0] == pids[1]
        finally:
            service_pool.shutdown()
        assert service_pool._process_pool is None

    def test_fork_only_regions_keep_legacy_path(self):
        service_pool = OneShotPool("process", workers=1,
                                   executor_options={"workers": 2})
        try:
            region = make_pipeline(n=10, exact_quality=True, name="legacy")
            self._run_ctx(service_pool, region)
            assert region.output("out") == pipeline_expected(10)
            assert service_pool._process_pool is None
        finally:
            service_pool.shutdown()


# ------------------------------------------------------ stream pool reuse

class TestStreamPoolReuse:
    def test_windows_share_worker_pids(self):
        pipeline = Pipeline([Stage("pid", _pid_stage, cost=0.1)],
                            window=4, name="pidstream")
        result = pipeline.run(range(12), backend="process", workers=2)
        assert result.delivered == 12
        pids = {pid for _value, pid in result.outputs.values()}
        # One persistent pool across all 3 windows: at most ``workers``
        # distinct PIDs ever touch a stage body.
        assert 1 <= len(pids) <= 2

    def test_unpicklable_must_falls_back_to_forks(self):
        pipeline = Pipeline([Stage("pid", _pid_stage, cost=0.1)],
                            window=4, name="lambdamust",
                            must=lambda seq: False)
        result = pipeline.run(range(8), backend="process", workers=2)
        assert result.delivered == 8
        assert {value for value, _pid in result.outputs.values()} == \
            set(range(8))
