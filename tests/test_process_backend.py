"""Process-backend specifics: the payload/count wire protocol, worker
failure containment, timeouts, cancellation, and the real-core bench.

Parity with the other backends is covered by test_backend_parity; this
file tests what is unique to running bodies out-of-process.
"""

import os
import time

import numpy as np
import pytest

from repro import (FluidRegion, NeverValve, PercentValve, ProcessExecutor,
                   SchedulerError, TaskBodyError, make_executor)
from repro.core.count import Count, ImmediateSink, RecordingSink
from repro.core.data import (PAYLOAD_SHM_MIN_BYTES, FluidData,
                             InlinePayload, SharedArrayPayload,
                             export_payload, import_payload)

from util import make_pipeline, pipeline_expected


# ------------------------------------------------------- payload protocol

class TestPayloadProtocol:
    def test_small_values_travel_inline(self):
        handle = export_payload([1, 2, 3])
        assert isinstance(handle, InlinePayload)
        assert import_payload(handle) == [1, 2, 3]

    def test_small_arrays_travel_inline(self):
        array = np.arange(16, dtype=np.float64)
        handle = export_payload(array)
        assert isinstance(handle, InlinePayload)
        assert np.array_equal(import_payload(handle), array)

    def test_large_arrays_travel_through_shared_memory(self):
        array = np.arange(PAYLOAD_SHM_MIN_BYTES, dtype=np.uint8)
        handle = export_payload(array)
        assert isinstance(handle, SharedArrayPayload)
        out = import_payload(handle)
        assert np.array_equal(out, array)
        assert out.dtype == array.dtype

    def test_shared_memory_preserves_shape_and_dtype(self):
        array = np.arange(128 * 256, dtype=np.float32).reshape(128, 256)
        handle = export_payload(array, shm_min_bytes=1024)
        assert isinstance(handle, SharedArrayPayload)
        out = import_payload(handle)
        assert out.shape == (128, 256) and out.dtype == np.float32
        assert np.array_equal(out, array)

    def test_discard_releases_unclaimed_segments(self):
        handle = export_payload(np.zeros(4096), shm_min_bytes=1024)
        handle.discard()  # must not raise; segment is unlinked

    def test_apply_payload_preserves_aliases(self):
        # Bodies and valves close over the payload object itself; the
        # import path must update it in place, not rebind the cell.
        data = FluidData("d", np.zeros(8))
        alias = data.read()
        data.apply_payload(np.arange(8.0))
        assert data.read() is alias
        assert np.array_equal(alias, np.arange(8.0))

    def test_apply_payload_in_place_for_lists(self):
        data = FluidData("d", [0, 0, 0])
        alias = data.read()
        data.apply_payload([4, 5, 6])
        assert data.read() is alias and alias == [4, 5, 6]

    def test_apply_payload_rebinds_on_shape_change(self):
        data = FluidData("d", np.zeros(4))
        data.apply_payload(np.zeros((2, 2)))
        assert data.read().shape == (2, 2)

    def test_apply_payload_bumps_version_only_when_asked(self):
        data = FluidData("d", [0])
        before = data.version
        data.apply_payload([1], bump=False)
        assert data.version == before
        data.apply_payload([2])
        assert data.version > before


class TestCountReplay:
    def test_export_install_round_trip(self):
        count = Count("ct", sink=ImmediateSink())
        count.add()
        count.add(3)
        state = count.export_state()
        other = Count("ct")
        other.install_state(*state)
        assert other.value == count.value
        assert other.updates == count.updates

    def test_recording_sink_buffers_and_replay_dispatches(self):
        sink = RecordingSink()
        count = Count("ct", sink=sink)
        count.add()
        count.add(2)
        assert sink.drain() == [("ct", 1), ("ct", 3)]
        assert sink.drain() == []

        seen = []
        target = Count("ct", sink=ImmediateSink())
        target.subscribe(lambda _count, value: seen.append(value))
        target.replay(1)
        target.replay(3)
        assert target.value == 3
        assert target.updates == 2
        assert seen == [1, 3]


# --------------------------------------------------------- failure modes

def make_error_region(name=None):
    class Exploding(FluidRegion):
        def build(self):
            out = self.add_data("out", 0)

            def body(ctx):
                yield 1.0
                raise ValueError("kapow")

            self.add_task("boom", body, outputs=[out])

    return Exploding(name)


class TestFailureContainment:
    def test_body_exception_surfaces_as_task_body_error(self):
        executor = ProcessExecutor(workers=1, timeout=30)
        executor.submit(make_error_region("explode"))
        with pytest.raises(TaskBodyError) as info:
            executor.run()
        assert "kapow" in str(info.value)
        assert info.value.task_name == "boom"

    def test_failed_runs_are_counted(self):
        region = make_error_region("explode-stats")
        executor = ProcessExecutor(workers=1, timeout=30)
        executor.submit(region)
        with pytest.raises(TaskBodyError):
            executor.run()
        assert region.graph.task("boom").stats.failed_runs == 1

    def test_crashed_worker_is_detected(self):
        class Crashing(FluidRegion):
            def build(self):
                out = self.add_data("out", 0)

                def body(ctx):
                    yield 1.0
                    os._exit(13)

                self.add_task("crash", body, outputs=[out])

        executor = ProcessExecutor(workers=1, timeout=30)
        executor.submit(Crashing("crasher"))
        with pytest.raises(SchedulerError) as info:
            executor.run()
        assert "died" in str(info.value)

    def test_timeout_raises_with_diagnosis(self):
        class Stuck(FluidRegion):
            def build(self):
                out = self.add_data("out", 0)

                def body(ctx):
                    while True:
                        time.sleep(0.01)
                        yield 1.0

                self.add_task("spin", body, outputs=[out],
                              end_valves=[NeverValve()])

        executor = ProcessExecutor(workers=1, timeout=1.0)
        executor.submit(Stuck("stuck"))
        with pytest.raises(SchedulerError) as info:
            executor.run()
        assert "timed out" in str(info.value)

    def test_dynamic_spawn_is_rejected(self):
        class Spawner(FluidRegion):
            def build(self):
                out = self.add_data("out", 0)

                def body(ctx):
                    yield 1.0
                    ctx.spawn("child", lambda c: iter(()), outputs=[])
                    yield 1.0

                self.add_task("spawner", body, outputs=[out])

        executor = ProcessExecutor(workers=1, timeout=30)
        executor.submit(Spawner("spawn"))
        with pytest.raises(TaskBodyError):
            executor.run()

    def test_executors_are_single_shot(self):
        executor = ProcessExecutor(workers=1, timeout=30)
        executor.submit(make_pipeline(n=5, name="once"))
        executor.run()
        with pytest.raises(SchedulerError):
            executor.run()

    def test_zero_workers_rejected(self):
        with pytest.raises(SchedulerError):
            ProcessExecutor(workers=0)


# ----------------------------------------------------------- cancellation

class TestCancellation:
    def test_early_termination_cancels_running_producer(self):
        # The consumer completes from a partial read; the producer's
        # still-running rerun becomes pointless and is cancelled.
        class Early(FluidRegion):
            def build(self):
                n = 40
                src = self.input_data("src", list(range(n)))
                mid = self.add_array("mid", [0] * n)
                out = self.add_array("out", [0] * n)
                ct = self.add_count("ct")

                def produce(ctx):
                    for i in range(n):
                        mid[i] = src.read()[i]
                        ct.add()
                        time.sleep(0.004)
                        yield 1.0

                def consume(ctx):
                    for i in range(n):
                        out[i] = mid[i]
                        yield 0.5

                self.add_task("produce", produce, inputs=[src],
                              outputs=[mid])
                self.add_task("consume", consume,
                              start_valves=[PercentValve(ct, 0.2, n)],
                              end_valves=[PercentValve(ct, 0.5, n)],
                              inputs=[mid], outputs=[out])

        region = Early("early")
        executor = ProcessExecutor(workers=2, timeout=30,
                                   flush_interval=0.002)
        executor.submit(region)
        executor.run()
        assert region.complete
        produce = region.graph.task("produce")
        # The producer either finished or had its tail cancelled, but the
        # region completed early regardless.
        assert produce.stats.runs + produce.stats.cancelled_runs >= 1


# ------------------------------------------------------- factory and bench

class TestFactoryAndBench:
    def test_make_executor_builds_each_backend(self):
        from repro import SimExecutor, ThreadExecutor
        assert isinstance(make_executor("sim", cores=2), SimExecutor)
        assert isinstance(make_executor("thread"), ThreadExecutor)
        assert isinstance(make_executor("process", workers=1),
                          ProcessExecutor)

    def test_make_executor_rejects_unknown_names(self):
        with pytest.raises(SchedulerError):
            make_executor("gpu")

    def test_backend_bench_outputs_match(self):
        from repro.bench.harness import run_backend_bench
        row = run_backend_bench(backend="process", workers=2, tasks=2,
                                scale=0.01)
        assert row.outputs_match
        assert row.thread_seconds > 0 and row.backend_seconds > 0
        assert row.speedup > 0

    def test_backend_bench_rejects_simulator(self):
        from repro.bench.harness import run_backend_bench
        with pytest.raises(ValueError):
            run_backend_bench(backend="sim")

    def test_bench_cli_process_smoke(self, capsys):
        from repro.bench.__main__ import main as bench_main
        assert bench_main(["--backend", "process", "--scale", "0.01",
                           "--tasks", "2", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup vs thread" in out
        assert "process" in out

    def test_run_fluid_accepts_thread_backend(self):
        # The app protocol routes non-sim backends through make_executor;
        # wall-clock makespans replace virtual time.
        from repro.apps.fft import FFTApp
        from repro.workloads import random_vector
        app = FFTApp([random_vector(256, seed=3)])
        run = app.run_fluid(threshold=1.0, backend="thread")
        assert run.error <= 0.05
        assert run.makespan > 0


# -------------------------------------------------- shared-memory regions

class TestSharedMemoryRegions:
    def test_large_numpy_outputs_round_trip(self):
        rows = 256
        class Big(FluidRegion):
            def build(self):
                src = self.input_data(
                    "src", np.arange(rows * 64, dtype=np.float64)
                    .reshape(rows, 64))
                out = self.add_array("out", np.zeros((rows, 64)))

                def body(ctx):
                    data = src.read()
                    for i in range(rows):
                        out[i] = data[i] * 3.0
                        if i % 32 == 0:
                            yield 1.0
                    yield 1.0

                self.add_task("scale", body, inputs=[src], outputs=[out])

        region = Big("big")
        executor = ProcessExecutor(workers=1, timeout=30)
        executor.submit(region)
        executor.run()
        expected = np.arange(rows * 64, dtype=np.float64).reshape(rows, 64) * 3
        assert np.array_equal(region.output("out"), expected)

    def test_multi_region_after_clause(self):
        first = make_pipeline(n=10, name="first")
        second = make_pipeline(n=10, name="second")
        executor = ProcessExecutor(workers=2, timeout=30)
        executor.submit(first)
        executor.submit(second, after=[first])
        executor.run()
        assert first.output("out") == pipeline_expected(10)
        assert second.output("out") == pipeline_expected(10)


class TestShutdownDeadline:
    def test_hung_workers_share_one_shutdown_deadline(self):
        # Satellite regression: _shutdown joined each worker for 0.5s
        # sequentially, so a wedged 4-worker pool took >= 2s to tear
        # down.  The graceful pass now shares one 0.5s deadline and
        # stragglers are terminated in one batch.
        executor = ProcessExecutor(workers=4, timeout=30)

        def hung_worker(slot, inbox):
            while True:  # pragma: no cover - runs in the forked child
                time.sleep(60)

        executor._worker_main = hung_worker
        executor._start_pool()
        assert all(process.is_alive() for process in executor._processes)
        start = time.perf_counter()
        executor._shutdown()
        elapsed = time.perf_counter() - start
        assert all(not process.is_alive()
                   for process in executor._processes), \
            "hung workers survived shutdown"
        assert elapsed < 1.8, \
            f"shutdown took {elapsed:.2f}s; the graceful join must " \
            "share one deadline across workers, not 0.5s each"
