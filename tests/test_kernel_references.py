"""Cross-validation of the app kernels against independent references.

The precise versions of the evaluation kernels are checked against
scipy/numpy/networkx implementations, so the accuracy metrics of the
benchmarks rest on independently verified ground truth.
"""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.apps.dct import dct2_blocks_reference, dct_basis_reference
from repro.apps.neural_network import NeuralNetworkApp
from repro.workloads import (random_graph, random_tensor, synthetic_digits,
                             synthetic_poses)
from repro.workloads.graphs import (bellman_ford_reference,
                                    greedy_coloring_reference)
from repro.workloads.molecules import energy_reference


class TestBellmanFordVsNetworkx:
    def test_distances_match(self):
        graph = random_graph(150, 600, seed=101)
        mine = bellman_ford_reference(graph, source=0)
        g = networkx.DiGraph()
        g.add_nodes_from(range(graph.num_vertices))
        for s, d, w in zip(graph.src.tolist(), graph.dst.tolist(),
                           graph.weight.tolist()):
            if g.has_edge(s, d):
                g[s][d]["weight"] = min(g[s][d]["weight"], w)
            else:
                g.add_edge(s, d, weight=w)
        lengths = networkx.single_source_dijkstra_path_length(
            g, 0, weight="weight")
        for vertex in range(graph.num_vertices):
            expected = lengths.get(vertex, np.inf)
            assert mine[vertex] == pytest.approx(expected, rel=1e-12)


class TestColoringValidity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reference_coloring_is_proper_and_compact(self, seed):
        graph = random_graph(80, 400, seed=seed)
        colors = greedy_coloring_reference(graph)
        for s, d in zip(graph.src.tolist(), graph.dst.tolist()):
            if s != d:
                assert colors[s] != colors[d]
        # Greedy bound: at most max degree + 1 colors.
        degrees = np.zeros(graph.num_vertices, dtype=int)
        for s, d in zip(graph.src.tolist(), graph.dst.tolist()):
            if s != d:
                degrees[s] += 1
                degrees[d] += 1
        assert colors.max() <= degrees.max()


class TestDCTBasis:
    def test_basis_is_orthonormal(self):
        basis = dct_basis_reference()
        assert np.allclose(basis @ basis.T, np.eye(8), atol=1e-12)

    def test_block_dct_matches_scipy(self):
        scipy_fft = pytest.importorskip("scipy.fft")
        tensor = random_tensor(16, 16, seed=7)
        mine = dct2_blocks_reference(tensor)
        for by in range(0, 16, 8):
            for bx in range(0, 16, 8):
                block = tensor[by:by + 8, bx:bx + 8]
                expected = scipy_fft.dctn(block, norm="ortho")
                assert np.allclose(mine[by:by + 8, bx:bx + 8], expected,
                                   atol=1e-10)


class TestNeuralNetworkFit:
    def test_weights_deterministic(self):
        dataset = synthetic_digits(samples=64, seed=5)
        a = NeuralNetworkApp(dataset, seed=3)
        b = NeuralNetworkApp(dataset, seed=3)
        for (wa, _), (wb, _) in zip(a.weights, b.weights):
            assert np.array_equal(wa, wb)

    def test_different_seeds_differ(self):
        dataset = synthetic_digits(samples=64, seed=5)
        a = NeuralNetworkApp(dataset, seed=3)
        b = NeuralNetworkApp(dataset, seed=4)
        assert not np.array_equal(a.weights[0][0], b.weights[0][0])

    def test_squeezed_pooling_halves_features(self):
        dataset = synthetic_digits(samples=32, features=196, seed=5)
        squeezed = NeuralNetworkApp(dataset, architecture="squeezed")
        assert squeezed.pooled_inputs().shape == (32, 98)


class TestDockingEnergy:
    def test_translation_far_away_is_near_zero(self):
        docking = synthetic_poses(num_poses=4, seed=9)
        far_pose = docking.poses[0] + 100.0
        from repro.workloads.molecules import pose_energy
        assert abs(pose_energy(docking.protein, far_pose)) < 1e-6

    def test_energies_finite(self):
        docking = synthetic_poses(num_poses=16, seed=9)
        energies = energy_reference(docking)
        assert np.isfinite(energies).all()
