"""Tests for repro.service: the async multi-region frontend.

Covers admission/backpressure semantics, request batching, SLO
accounting on the telemetry bus, the capacity-curve concurrency policy,
the >= 100 concurrent regions acceptance bar, and the SchedLab-seeded
isolation fuzz: N overlapping regions on one shared thread pool must
produce exactly what N isolated single-shot runs produce.
"""

import asyncio
import random
import threading

import pytest

from repro import SchedulerError, TaskBodyError, TaskState, PredicateValve
from repro.service import (AdmissionError, AdmissionQueue, FluidService,
                           OneShotPool, pick_concurrency)
from repro.telemetry import Telemetry

from util import (chain_expected, diamond_expected, make_chain, make_diamond,
                  make_pipeline, pipeline_expected)

# Wall-clock constants, deliberately far from any plausible run time so
# shared-runner timing noise cannot flip an assertion: an SLO a healthy
# request must always meet, an SLO nothing can meet (the missed branch
# is then deterministic), the cancellation deadline for a request that
# can never start, and the hang ceiling for isolated reference runs.
SLO_GENEROUS = 300.0
SLO_IMPOSSIBLE = 1e-9
STUCK_DEADLINE = 0.4
ISOLATED_RUN_DEADLINE = 120.0


def svc_counters(telemetry):
    return {key: value
            for key, value in telemetry.metrics.to_dict()["counters"].items()
            if key.startswith("svc.")}


class TestServiceBasics:
    def test_single_request(self):
        async def main():
            async with FluidService(slots=2) as service:
                region = make_pipeline(n=12, exact_quality=True)
                result = await service.submit(region)
                assert region.output("out") == pipeline_expected(12)
                assert result.region is region
                assert result.batch_size == 1
                assert result.latency >= result.queue_wait >= 0.0
                assert result.makespan > 0.0
                assert result.slo_met is None

        asyncio.run(main())

    def test_sequential_requests_reuse_the_pool(self):
        async def main():
            async with FluidService(slots=2) as service:
                for index in range(5):
                    region = make_pipeline(n=8, exact_quality=True,
                                           name=f"seq{index}")
                    await service.submit(region)
                    assert region.output("out") == pipeline_expected(8)
                assert service.stats()["dispatched_total"] == 5

        asyncio.run(main())

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchedulerError):
            FluidService(backend="quantum")

    def test_bad_batch_max_rejected(self):
        with pytest.raises(SchedulerError):
            FluidService(batch_max=0)

    def test_submit_after_close_is_refused(self):
        async def main():
            service = FluidService(slots=1)
            region = make_pipeline(n=5, exact_quality=True)
            await service.submit(region)
            await service.close()
            with pytest.raises(AdmissionError):
                await service.submit(make_pipeline(n=5))

        asyncio.run(main())

    def test_one_shot_pool_backends(self):
        for backend in ("sim", "process"):
            async def main():
                async with FluidService(backend=backend,
                                        slots=2) as service:
                    regions = [make_pipeline(n=8, exact_quality=True,
                                             name=f"{backend}{i}")
                               for i in range(4)]
                    await asyncio.gather(
                        *(service.submit(region) for region in regions))
                    for region in regions:
                        assert region.output("out") == pipeline_expected(8)

            asyncio.run(main())

    def test_one_shot_pool_rejects_thread_backend(self):
        with pytest.raises(SchedulerError):
            OneShotPool("thread")


class TestBackpressure:
    def test_sheddable_overflow_is_shed_observably(self):
        telemetry = Telemetry(chrome=False)

        async def main():
            service = FluidService(slots=1, max_concurrency=1,
                                   queue_capacity=2, telemetry=telemetry)
            shed = 0
            done = 0

            async def one(index):
                nonlocal shed, done
                region = make_pipeline(n=10, exact_quality=True,
                                       name=f"bp{index}")
                try:
                    await service.submit(region, sheddable=True)
                except AdmissionError:
                    shed += 1
                    return
                done += 1
                assert region.output("out") == pipeline_expected(10)

            await asyncio.gather(*(one(index) for index in range(12)))
            await service.close()
            return shed, done

        shed, done = asyncio.run(main())
        assert shed > 0, "a 2-deep queue behind a 1-wide service must shed"
        assert shed + done == 12
        counters = svc_counters(telemetry)
        assert counters["svc.requests"] == 12
        assert counters["svc.shed"] == shed
        assert counters["svc.admitted"] == done
        assert counters["svc.completed"] == done

    def test_must_run_requests_are_parked_never_shed(self):
        async def main():
            service = FluidService(slots=1, max_concurrency=1,
                                   queue_capacity=1)
            regions = [make_pipeline(n=8, exact_quality=True,
                                     name=f"mr{index}")
                       for index in range(10)]
            await asyncio.gather(
                *(service.submit(region, sheddable=False)
                  for region in regions))
            deferrals = service.queue.counters()["deferrals"]
            await service.close()
            for region in regions:
                assert region.output("out") == pipeline_expected(8)
            assert deferrals > 0, \
                "must-run overflow should park (defer), not shed"

        asyncio.run(main())


class TestBatching:
    def test_small_requests_coalesce(self):
        telemetry = Telemetry(chrome=False)

        async def main():
            async with FluidService(
                    slots=2, max_concurrency=1, queue_capacity=64,
                    batch_max=4, batch_cost_threshold=100.0,
                    telemetry=telemetry) as service:
                regions = [make_pipeline(n=6, exact_quality=True,
                                         name=f"batch{index}")
                           for index in range(12)]
                results = await asyncio.gather(
                    *(service.submit(region, cost_estimate=6.0)
                      for region in regions))
                for region in regions:
                    assert region.output("out") == pipeline_expected(6)
                return results

        results = asyncio.run(main())
        assert max(result.batch_size for result in results) > 1
        counters = svc_counters(telemetry)
        assert counters["svc.batches"] > 0
        assert counters["svc.dispatched"] == 12

    def test_expensive_requests_stay_solo(self):
        async def main():
            async with FluidService(
                    slots=2, max_concurrency=1, batch_max=4,
                    batch_cost_threshold=1.0) as service:
                results = await asyncio.gather(
                    *(service.submit(
                        make_pipeline(n=6, exact_quality=True,
                                      name=f"solo{index}"),
                        cost_estimate=50.0)
                      for index in range(6)))
                assert all(result.batch_size == 1 for result in results)

        asyncio.run(main())


class TestSloAccounting:
    def test_slo_met_and_missed(self):
        telemetry = Telemetry(chrome=False)

        async def main():
            async with FluidService(slots=2,
                                    telemetry=telemetry) as service:
                relaxed = await service.submit(
                    make_pipeline(n=6, exact_quality=True),
                    latency_slo=SLO_GENEROUS)
                strict = await service.submit(
                    make_pipeline(n=6, exact_quality=True),
                    latency_slo=SLO_IMPOSSIBLE)
                assert relaxed.slo_met is True
                assert strict.slo_met is False

        asyncio.run(main())
        counters = svc_counters(telemetry)
        assert counters["svc.slo_met"] == 1
        assert counters["svc.slo_missed"] == 1

    def test_latency_histograms_recorded(self):
        telemetry = Telemetry(chrome=False)

        async def main():
            async with FluidService(slots=2,
                                    telemetry=telemetry) as service:
                await service.submit(make_pipeline(n=6, exact_quality=True))

        asyncio.run(main())
        histograms = telemetry.metrics.to_dict()["histograms"]
        assert histograms["svc.latency"]["count"] == 1
        assert histograms["svc.queue_wait"]["count"] == 1


class TestFailures:
    def test_body_error_fails_the_request_not_the_service(self):
        async def main():
            async with FluidService(slots=2) as service:
                from repro import FluidRegion

                class Boom(FluidRegion):
                    def build(self):
                        def body(ctx):
                            yield 1.0
                            raise ValueError("kaboom")
                        self.add_task("boom", body)

                with pytest.raises(TaskBodyError):
                    await service.submit(Boom("boom-region"))
                region = make_pipeline(n=8, exact_quality=True)
                await service.submit(region)
                assert region.output("out") == pipeline_expected(8)

        asyncio.run(main())

    def test_request_timeout_cancels_the_context(self):
        async def main():
            async with FluidService(slots=2) as service:
                from repro import FluidRegion

                class Stuck(FluidRegion):
                    def build(self):
                        def body(ctx):
                            yield 1.0
                        self.add_task(
                            "stuck", body,
                            start_valves=[PredicateValve(lambda: False,
                                                         name="never")])

                with pytest.raises(SchedulerError):
                    await service.submit(Stuck("stuck-region"),
                                         timeout=STUCK_DEADLINE)
                # The service stays healthy after the cancellation.
                region = make_pipeline(n=8, exact_quality=True)
                await service.submit(region)
                assert region.output("out") == pipeline_expected(8)

        asyncio.run(main())


class TestConcurrencyPolicy:
    def test_capacity_curves_pick_the_cap(self):
        document = {"workloads": {
            "fcfs/cores2/rate100": {"throughput": 150.0,
                                    "latency_p99": 0.200},
            "fcfs/cores4/rate100": {"throughput": 290.0,
                                    "latency_p99": 0.040},
            "fcfs/cores8/rate100": {"throughput": 300.0,
                                    "latency_p99": 0.015},
        }}
        assert pick_concurrency(document, latency_slo=0.050) == 4
        assert pick_concurrency(document, latency_slo=0.001) == 8
        assert pick_concurrency(document) == 4  # throughput knee
        assert pick_concurrency({"workloads": {}}, default=7) == 7
        service = FluidService(slots=2, capacity_curves=document,
                               latency_slo=0.050)
        assert service.max_concurrency == 4
        service.pool.shutdown()

    def test_admission_queue_validates_capacity(self):
        with pytest.raises(AdmissionError):
            AdmissionQueue(capacity=0)


@pytest.mark.stress
class TestConcurrentRegions:
    def test_100_concurrent_regions_shared_pool(self):
        """Acceptance bar: >= 100 regions in flight over one thread pool."""
        async def main():
            service = FluidService(slots=4, max_concurrency=128,
                                   queue_capacity=128)
            regions = [make_pipeline(n=6, exact_quality=True,
                                     name=f"wide{index}")
                       for index in range(100)]
            futures = [asyncio.ensure_future(service.submit(region))
                       for region in regions]
            await asyncio.sleep(0)  # let every submit admit + dispatch
            peak = service.stats()["inflight"]
            await asyncio.gather(*futures)
            await service.close()
            return regions, peak

        regions, peak = asyncio.run(main())
        assert peak == 100, f"expected 100 contexts in flight, saw {peak}"
        for region in regions:
            assert region.output("out") == pipeline_expected(6)
            assert all(task.state is TaskState.COMPLETE
                       for task in region.tasks)


def _build_case(kind, size, name, strict):
    """One fuzz case: (region, output-name, expected, count-floors).

    ``strict`` builds the region with fully-closed start valves
    (``start_fraction=1.0``): every consumer waits for its producers to
    finish, end valves pass on the first try, and no task ever re-runs
    — so final count values are schedule-independent and must bit-match
    an isolated run.  Relaxed cases can legitimately re-execute (extra
    count adds), so only the floor (one full pass) is deterministic.
    """
    fraction = 1.0 if strict else 0.4
    if kind == "pipeline":
        region = make_pipeline(n=size, exact_quality=True, name=name,
                               start_fraction=fraction)
        return region, "out", pipeline_expected(size), {"ct": size}
    if kind == "chain":
        depth = 3
        region = make_chain(depth=depth, n=size, exact_quality=True,
                            name=name, start_fraction=fraction)
        return (region, f"a{depth - 1}", chain_expected(depth, size),
                {f"ct{k}": size for k in range(depth)})
    region = make_diamond(n=size, exact_quality=True, name=name,
                          start_fraction=fraction)
    return (region, "out", diamond_expected(size),
            {"ct0": size, "ctl": size, "ctr": size})


@pytest.mark.stress
class TestIsolationFuzz:
    """Satellite: SchedLab-seeded fuzz of per-region isolation.

    N overlapping regions on one shared thread pool (with seeded
    wake-point jitter perturbing the schedule) must match N isolated
    single-shot runs on every timing-independent observable: exact
    outputs, terminal states, end-valve verdicts and the final values
    of deterministic counts.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_overlapping_regions_match_isolated_runs(self, seed):
        from repro import ThreadExecutor
        from repro.schedlab import SeededRandomPolicy

        rng = random.Random(f"service-fuzz:{seed}")
        cases = []
        for index in range(8):
            kind = rng.choice(("pipeline", "chain", "diamond"))
            size = rng.randint(10, 25)
            strict = rng.random() < 0.5
            cases.append((kind, size, strict))

        shared = [_build_case(kind, size, f"svc-{seed}-{index}", strict)
                  for index, (kind, size, strict) in enumerate(cases)]
        isolated = [_build_case(kind, size, f"iso-{seed}-{index}", strict)
                    for index, (kind, size, strict) in enumerate(cases)]

        async def main():
            service = FluidService(
                slots=3, max_concurrency=16, queue_capacity=16,
                backend_options={"policy": SeededRandomPolicy(
                    seed=seed, jitter_scale=0.001)})
            await asyncio.gather(
                *(service.submit(region) for region, *_ in shared))
            await service.close()

        asyncio.run(main())

        for region, *_ in isolated:
            executor = ThreadExecutor(timeout=ISOLATED_RUN_DEADLINE)
            executor.submit(region)
            executor.run()

        for case, (region_a, out, expected, floors), (region_b, *_rest) \
                in zip(cases, shared, isolated):
            _kind, _size, strict = case
            assert region_a.output(out) == expected, region_a.name
            assert region_b.output(out) == expected, region_b.name
            for region in (region_a, region_b):
                assert all(task.state is TaskState.COMPLETE
                           for task in region.tasks), region.name
                for task in region.tasks:
                    for valve in task.spec.end_valves:
                        assert valve.check(), \
                            f"{region.name}: end valve {valve.name} " \
                            "failed post-run"
            for count_name, floor in floors.items():
                value_a = region_a.counts[count_name].value
                value_b = region_b.counts[count_name].value
                if strict:
                    assert value_a == value_b == floor, \
                        f"{region_a.name}: strict count {count_name} " \
                        f"diverged ({value_a} shared vs {value_b} isolated" \
                        f" vs {floor} expected)"
                else:
                    assert value_a >= floor and value_b >= floor, \
                        f"{region_a.name}: count {count_name} below one " \
                        f"full pass ({value_a}/{value_b} < {floor})"


@pytest.mark.stress
class TestServiceThreadHygiene:
    def test_close_reaps_guard_threads(self):
        async def main():
            before = threading.active_count()
            service = FluidService(slots=2)
            regions = [make_pipeline(n=6, exact_quality=True,
                                     name=f"reap{index}")
                       for index in range(20)]
            await asyncio.gather(
                *(service.submit(region) for region in regions))
            await service.close()
            return before, threading.active_count()

        before, after = asyncio.run(main())
        assert after <= before + 1, \
            f"service leaked threads: {before} before, {after} after"


class TestLoadgen:
    def test_smoke_sweep_writes_baseline_schema(self, tmp_path, capsys):
        import json

        from repro.service.loadgen import main as loadgen_main

        out = tmp_path / "sweep.json"
        assert loadgen_main(["--requests", "15", "--rates", "150,300",
                             "--slots", "2", "--seed", "5",
                             "--out", str(out), "--check"]) == 0
        stdout = capsys.readouterr().out
        assert "loadgen check: PASS" in stdout
        document = json.loads(out.read_text())
        assert document["schema"] == "repro-bench-baseline/1"
        keys = sorted(document["workloads"])
        assert keys == ["fcfs/cores2/rate150", "fcfs/cores2/rate300"]
        for record in document["workloads"].values():
            assert record["must_run_shed"] == 0
            assert (record["tasks_completed"] + record["tasks_shed"]
                    + record["failures"]) == 15

    def test_sweep_feeds_pick_concurrency(self, tmp_path):
        import json

        from repro.service import load_capacity_document
        from repro.service.loadgen import main as loadgen_main

        out = tmp_path / "sweep.json"
        assert loadgen_main(["--requests", "10", "--rates", "200",
                             "--slots", "2", "--seed", "2",
                             "--out", str(out)]) == 0
        document = load_capacity_document(str(out))
        assert pick_concurrency(document, latency_slo=SLO_GENEROUS) == 2

    def test_check_sweep_flags_violations(self):
        from repro.service.loadgen import check_sweep

        healthy = {"tasks_offered": 10, "tasks_completed": 10,
                   "tasks_shed": 0, "failures": 0, "must_run_shed": 0,
                   "wrong_results": 0, "throughput": 100.0,
                   "offered_rate": 100.0}
        assert check_sweep({"fcfs/cores2/rate100": dict(healthy)}) == []

        shed = dict(healthy, must_run_shed=2, offered_rate=50.0)
        lost = dict(healthy, tasks_completed=8, offered_rate=100.0)
        collapsed = dict(healthy, throughput=10.0, offered_rate=200.0)
        violations = check_sweep({
            "fcfs/cores2/rate50": shed,
            "fcfs/cores2/rate100": lost,
            "fcfs/cores2/rate200": collapsed,
        })
        text = "\n".join(violations)
        assert "must-run requests shed" in text
        assert "accounted for" in text
        assert "collapsed" in text

    def test_bad_cli_args_rejected(self):
        import pytest

        from repro.service.loadgen import main as loadgen_main

        with pytest.raises(SystemExit):
            loadgen_main(["--requests", "0"])
        with pytest.raises(SystemExit):
            loadgen_main(["--rates", "-5"])
        with pytest.raises(SystemExit):
            loadgen_main(["--sheddable-fraction", "1.5"])
