"""Unit tests for pragma and translation-unit parsing."""

import textwrap


from repro.lang.diagnostics import DiagnosticSink
from repro.lang.parser import (parse_count_pragma, parse_data_pragma,
                               parse_source, parse_task_pragma,
                               parse_valve_pragma)


def sink():
    return DiagnosticSink("test.fpy")


class TestDataPragma:
    def test_scalar(self):
        pragma = parse_data_pragma("{int x;}", 1, sink())
        assert pragma.type_name == "int"
        assert pragma.name == "x"
        assert not pragma.is_array

    def test_array(self):
        pragma = parse_data_pragma("{Image *d1;}", 3, sink())
        assert pragma.is_array and pragma.name == "d1" and pragma.line == 3

    def test_semicolon_optional(self):
        assert parse_data_pragma("{int x}", 1, sink()).name == "x"

    def test_missing_brace_is_error(self):
        diagnostics = sink()
        assert parse_data_pragma("int x;", 1, diagnostics) is None
        assert diagnostics.errors

    def test_missing_name_is_error(self):
        diagnostics = sink()
        assert parse_data_pragma("{int;}", 1, diagnostics) is None
        assert diagnostics.errors


class TestCountPragma:
    def test_basic(self):
        pragma = parse_count_pragma("{int ct;}", 2, sink())
        assert pragma.type_name == "int" and pragma.name == "ct"

    def test_generic_type(self):
        pragma = parse_count_pragma("{float total;}", 2, sink())
        assert pragma.type_name == "float"


class TestValvePragma:
    def test_two_phase_declaration(self):
        pragma = parse_valve_pragma("{ValveCT v1;}", 4, sink())
        assert pragma.valve_type == "ValveCT"
        assert pragma.name == "v1"
        assert pragma.args_src is None

    def test_inline_constructor_args(self):
        pragma = parse_valve_pragma("{ValveCT v1(ct, 0.4 * n);}", 4, sink())
        assert pragma.args_src == "ct, 0.4 * n"

    def test_nested_parens_in_args(self):
        pragma = parse_valve_pragma("{ValvePred v(p(a, b), q);}", 1, sink())
        assert pragma.args_src == "p(a, b), q"

    def test_unbalanced_parens_error(self):
        diagnostics = sink()
        assert parse_valve_pragma("{ValveCT v(ct;}", 1, diagnostics) is None
        assert diagnostics.errors


class TestTaskPragma:
    def test_full_guard(self):
        pragma = parse_task_pragma(
            "<<<t2, {v1}, {v2}, {d2}, {d3}>>> Sobel(img, out)", 21, sink())
        assert pragma.task_name == "t2"
        assert pragma.start_valves == ["v1"]
        assert pragma.end_valves == ["v2"]
        assert pragma.inputs == ["d2"]
        assert pragma.outputs == ["d3"]
        assert pragma.func_name == "Sobel"
        assert pragma.args_src == "img, out"

    def test_empty_sets(self):
        pragma = parse_task_pragma(
            "<<<t1, {}, {}, {d1}, {d2}>>> Gaussian(a, b, ct)", 18, sink())
        assert pragma.start_valves == [] and pragma.end_valves == []

    def test_multiple_names_per_set(self):
        pragma = parse_task_pragma(
            "<<<j, {v1, v2}, {}, {a, b}, {c}>>> join()", 1, sink())
        assert pragma.start_valves == ["v1", "v2"]
        assert pragma.inputs == ["a", "b"]

    def test_dotted_function(self):
        pragma = parse_task_pragma(
            "<<<t, {}, {}, {d}, {e}>>> self.kernel(x)", 1, sink())
        assert pragma.func_name == "self.kernel"

    def test_no_args_call(self):
        pragma = parse_task_pragma(
            "<<<t, {}, {}, {d}, {e}>>> go()", 1, sink())
        assert pragma.args_src == ""

    def test_nested_call_args(self):
        pragma = parse_task_pragma(
            "<<<t, {}, {}, {d}, {e}>>> go(f(x, 2), y)", 1, sink())
        assert pragma.args_src == "f(x, 2), y"

    def test_missing_guard_is_error(self):
        diagnostics = sink()
        assert parse_task_pragma("t1, {}, {}", 1, diagnostics) is None
        assert diagnostics.errors

    def test_wrong_set_count_is_error(self):
        diagnostics = sink()
        assert parse_task_pragma(
            "<<<t1, {}, {d1}, {d2}>>> f()", 1, diagnostics) is None
        assert diagnostics.errors


FLUID_SOURCE = textwrap.dedent('''
    import math

    __fluid__
    class Demo:
        #pragma data {int *a;}
        #pragma data {int *b;}
        #pragma count {int ct;}
        #pragma valve {ValveCT v;}

        helper_constant = 42

        def work(self, ctx, ct):
            for i in range(4):
                self.b[i] = self.a[i]
                ct.add()
                yield 1.0

        def finish(self, ctx):
            for i in range(4):
                yield 1.0

        def region(self):
            a.init([1, 2, 3, 4])
            b.init([0, 0, 0, 0])
            #pragma task <<<t1, {}, {}, {a}, {b}>>> work(ct)
            v.init(ct, 2)
            sync(t1)

    class NotFluid:
        pass
''')


class TestTranslationUnit:
    def test_fluid_class_found(self):
        unit, diagnostics = parse_source(FLUID_SOURCE, "demo.fpy")
        assert not diagnostics.errors
        assert [fc.name for fc in unit.classes] == ["Demo"]

    def test_non_fluid_class_ignored(self):
        unit, _ = parse_source(FLUID_SOURCE, "demo.fpy")
        names = [fc.name for fc in unit.classes]
        assert "NotFluid" not in names

    def test_members_collected(self):
        unit, _ = parse_source(FLUID_SOURCE, "demo.fpy")
        fc = unit.classes[0]
        assert [d.name for d in fc.datas] == ["a", "b"]
        assert [c.name for c in fc.counts] == ["ct"]
        assert [v.name for v in fc.valves] == ["v"]

    def test_methods_collected(self):
        unit, _ = parse_source(FLUID_SOURCE, "demo.fpy")
        fc = unit.classes[0]
        assert {m.name for m in fc.methods} == {"work", "finish"}
        assert all(m.is_generator for m in fc.methods)

    def test_region_statements_classified(self):
        unit, _ = parse_source(FLUID_SOURCE, "demo.fpy")
        fc = unit.classes[0]
        kinds = [s.kind for s in fc.region_body if s.text.strip()]
        assert "task" in kinds and "sync" in kinds and "python" in kinds

    def test_class_assigns_pass_through(self):
        unit, _ = parse_source(FLUID_SOURCE, "demo.fpy")
        assert any("helper_constant" in text
                   for text in unit.classes[0].class_assigns)

    def test_orphan_marker_is_error(self):
        _, diagnostics = parse_source("__fluid__\nx = 1\n", "bad.fpy")
        assert diagnostics.errors

    def test_region_required(self):
        source = textwrap.dedent('''
            __fluid__
            class NoRegion:
                #pragma data {int x;}
                placeholder = None
        ''')
        _, diagnostics = parse_source(source, "bad.fpy")
        assert any("no region()" in str(d) for d in diagnostics.errors)

    def test_init_rejected(self):
        source = textwrap.dedent('''
            __fluid__
            class HasInit:
                #pragma data {int x;}
                def __init__(self):
                    pass
                def region(self):
                    pass
        ''')
        _, diagnostics = parse_source(source, "bad.fpy")
        assert any("__init__" in str(d) for d in diagnostics.errors)

    def test_task_pragma_outside_region_is_error(self):
        source = textwrap.dedent('''
            __fluid__
            class Misplaced:
                #pragma data {int x;}
                #pragma task <<<t, {}, {}, {x}, {x}>>> f()
                def region(self):
                    pass
        ''')
        _, diagnostics = parse_source(source, "bad.fpy")
        assert any("only allowed inside region" in str(d)
                   for d in diagnostics.errors)

    def test_host_syntax_error_reported(self):
        _, diagnostics = parse_source("def broken(:\n", "bad.fpy")
        assert any("syntax error" in str(d) for d in diagnostics.errors)
