"""Tests for the sync() API and the region scheduling helpers."""

import pytest

from repro import (SchedulerError, SimExecutor, ThreadExecutor, sync,
                   submit_all, submit_chain, submit_stages)
from repro.runtime.simulator import Overheads

from util import make_pipeline, pipeline_expected


class TestSyncApi:
    def test_sync_task_after_sim_run(self):
        region = make_pipeline(n=10)
        executor = SimExecutor(cores=2)
        executor.submit(region)
        executor.run()
        sync(region.graph.task("consume"), executor=executor)

    def test_sync_region_after_sim_run(self):
        region = make_pipeline(n=10)
        executor = SimExecutor(cores=2)
        executor.submit(region)
        executor.run()
        sync(region, executor=executor)

    def test_sync_all_after_sim_run(self):
        region = make_pipeline(n=10)
        executor = SimExecutor(cores=2)
        executor.submit(region)
        executor.run()
        sync(executor=executor)

    def test_sync_before_sim_run_raises(self):
        region = make_pipeline(n=10)
        region.finalize()
        executor = SimExecutor(cores=2)
        executor.submit(region)
        with pytest.raises(SchedulerError, match="run"):
            sync(region, executor=executor)

    def test_sync_without_target_or_executor_raises(self):
        with pytest.raises(SchedulerError):
            sync()

    def test_sync_thread_backend_blocks_until_done(self):
        region = make_pipeline(n=10, exact_quality=True)
        executor = ThreadExecutor(timeout=30)
        executor.submit(region)
        executor.run()
        sync(region, executor=executor)
        assert region.output("out") == pipeline_expected(10)


class TestSubmitHelpers:
    def test_submit_chain_returns_regions(self):
        executor = SimExecutor(cores=2)
        regions = [make_pipeline(n=5, name=f"c{i}") for i in range(3)]
        returned = submit_chain(executor, regions)
        assert returned == regions
        executor.run()
        assert all(region.complete for region in regions)

    def test_submit_all_returns_regions(self):
        executor = SimExecutor(cores=4)
        regions = [make_pipeline(n=5, name=f"a{i}") for i in range(3)]
        assert submit_all(executor, regions) == regions
        executor.run()

    def test_submit_stages_runs_everything(self):
        executor = SimExecutor(cores=4)
        stage1 = [make_pipeline(n=5, name="s1a"),
                  make_pipeline(n=5, name="s1b")]
        stage2 = [make_pipeline(n=5, name="s2a")]
        submitted = submit_stages(executor, [stage1, stage2])
        assert len(submitted) == 3
        executor.run()
        assert all(region.complete for region in submitted)

    def test_empty_chain(self):
        executor = SimExecutor(cores=2)
        assert submit_chain(executor, []) == []
        # Nothing submitted: run drains immediately.
        result = executor.run()
        assert result.makespan == 0.0


class TestAdmissionControl:
    def test_max_active_regions_limits_overlap(self):
        def run_with(limit):
            executor = SimExecutor(cores=16, overheads=Overheads.zero(),
                                   max_active_regions=limit)
            submit_all(executor,
                       [make_pipeline(n=20, name=f"r{limit}_{i}")
                        for i in range(4)])
            return executor.run().makespan

        assert run_with(1) > run_with(4)

    def test_admission_respects_submission_order(self):
        executor = SimExecutor(cores=2, max_active_regions=1, trace=True)
        regions = [make_pipeline(n=5, name=f"fifo{i}") for i in range(4)]
        submit_all(executor, regions)
        result = executor.run()
        done = [event.region for event in result.trace.events
                if event.event == "region-done"]
        assert done == [f"fifo{i}" for i in range(4)]
