"""Tests for the trace store and the benchmark table renderer."""


from repro.bench.reporting import render_series, render_table
from repro.runtime.tracing import Trace, TraceEvent


class TestTrace:
    def make_trace(self):
        trace = Trace()
        trace.record(0.0, "r", "t1", "run", "attempt=0")
        trace.record(1.0, "r", "t2", "run", "attempt=0")
        trace.record(2.0, "r", "t2", "wait", "quality-failed")
        trace.record(3.0, "r", "t2", "rerun", "inputs-advanced")
        trace.record(4.0, "r", "t1", "complete", "precise-inputs")
        return trace

    def test_len(self):
        assert len(self.make_trace()) == 5

    def test_for_task_filters(self):
        events = self.make_trace().for_task("t2")
        assert len(events) == 3
        assert all(e.task == "t2" for e in events)

    def test_count_by_event(self):
        trace = self.make_trace()
        assert trace.count("run") == 2
        assert trace.count("run", task="t1") == 1
        assert trace.count("missing") == 0

    def test_render_includes_fields(self):
        text = self.make_trace().render()
        assert "quality-failed" in text
        assert "t2" in text

    def test_render_limit(self):
        text = self.make_trace().render(limit=2)
        assert len(text.splitlines()) == 2

    def test_events_are_namedtuples(self):
        event = self.make_trace().events[0]
        assert isinstance(event, TraceEvent)
        assert event.time == 0.0 and event.event == "run"


class TestRenderTable:
    def test_headers_and_rows_present(self):
        text = render_table("demo", ["a", "b"], [[1, 2.5], ["x", 0.125]])
        assert "=== demo ===" in text
        assert "a" in text and "b" in text
        assert "2.500" in text
        assert "0.125" in text

    def test_large_floats_rounded(self):
        text = render_table("big", ["v"], [[123456.789]])
        assert "123457" in text

    def test_nan_rendered_as_dash(self):
        text = render_table("nan", ["v"], [[float("nan")]])
        assert "-" in text

    def test_column_alignment(self):
        text = render_table("align", ["name", "value"],
                            [["ab", 1.0], ["abcdef", 2.0]])
        lines = [line for line in text.splitlines()[2:] if line.strip()]
        starts = {line.find("1.000") for line in lines if "1.000" in line} | \
                 {line.find("2.000") for line in lines if "2.000" in line}
        assert len(starts) == 1  # values share a column

    def test_render_series(self):
        text = render_series("sweep", "x", [1, 2],
                             {"lat": [0.5, 0.6], "acc": [1.0, 0.9]})
        assert "sweep" in text
        assert "lat" in text and "acc" in text
        assert "0.600" in text
