"""Stress tests: larger task populations, deeper chains, many regions.

The thread-backend classes are marked ``stress``: they depend on real
scheduler timing, so CI runs them in a dedicated job instead of the
main test matrix (``-m "not stress"``) where timing noise on shared
runners could flake them.
"""

import pytest

from repro import (FluidRegion, PercentValve, PredicateValve, SimExecutor,
                   ThreadExecutor, submit_all)

from util import make_chain, make_pipeline

#: Wall-clock ceiling for thread-backend stress runs.  Generous on
#: purpose: the assertion of these tests is *outcome* (exact outputs,
#: completion), never elapsed time — the deadline only bounds a hang.
THREAD_DEADLINE = 120.0


class TestManyRegions:
    def test_sixty_concurrent_regions_complete(self):
        executor = SimExecutor(cores=20, max_active_regions=60)
        regions = [make_pipeline(n=10, name=f"many{i}") for i in range(60)]
        submit_all(executor, regions)
        executor.run()
        assert all(region.complete for region in regions)

    def test_deep_chain_region(self):
        region = make_chain(depth=12, n=12, exact_quality=False)
        executor = SimExecutor(cores=8)
        executor.submit(region)
        executor.run()
        assert region.complete
        assert region.output("a11") == [i + 12 for i in range(12)]

    def test_wide_fanout_region(self):
        width = 40

        class Fan(FluidRegion):
            def build(self):
                n = 8
                src = self.input_data("src", list(range(n)))
                hub = self.add_array("hub", [0] * n)
                ct = self.add_count("ct")

                def root(ctx):
                    for i in range(n):
                        hub[i] = src.read()[i] + 1
                        ct.add()
                        yield 1.0

                self.add_task("root", root, inputs=[src], outputs=[hub])
                for k in range(width):
                    out = self.add_array(f"out{k}", [0] * n)

                    def leaf(ctx, k=k, out=out):
                        for i in range(n):
                            out[i] = hub[i] * (k + 1)
                            yield 0.5

                    self.add_task(f"leaf{k}", leaf,
                                  start_valves=[PercentValve(ct, 0.5, n)],
                                  inputs=[hub], outputs=[out])

        region = Fan("fan")
        executor = SimExecutor(cores=20)
        executor.submit(region)
        executor.run()
        assert region.complete
        assert len(region.tasks) == width + 1
        assert region.datas["out39"].read() == [(i + 1) * 40
                                                for i in range(8)]

    def test_determinism_at_scale(self):
        def once():
            executor = SimExecutor(cores=6)
            regions = [make_pipeline(n=15, producer_cost=2.0,
                                     consumer_cost=0.4,
                                     start_fraction=0.3,
                                     name=f"det{i}") for i in range(20)]
            submit_all(executor, regions)
            result = executor.run()
            return (result.makespan,
                    tuple(r.graph.task("consume").stats.runs
                          for r in regions))

        assert once() == once()


@pytest.mark.stress
class TestThreadBackendStress:
    def test_ten_regions_with_reexecution(self):
        # Exact-match quality functions: under real threads the relative
        # speeds of producer and consumer are uncontrolled, so a
        # time-based quality bar may legitimately accept stale reads
        # (the documented approximation).  A content-checking end valve
        # forces re-execution until the output is exact, making the
        # assertion deterministic.
        from util import chain_expected, make_chain

        executor = ThreadExecutor(timeout=THREAD_DEADLINE)
        regions = [make_chain(depth=2, n=30, start_fraction=0.2,
                              exact_quality=True, name=f"thr{i}")
                   for i in range(10)]
        submit_all(executor, regions)
        executor.run()
        for region in regions:
            assert region.complete
            assert region.output("a1") == chain_expected(2, 30)

    def test_dep_stall_under_threads(self):
        # The D-state scenario from the guard-semantics suite, under real
        # threads: middle task finishes on imprecise input, leaf demands
        # exactness, the request chain must resolve.
        class Stall(FluidRegion):
            def build(self):
                n = 30
                src = self.input_data("src", list(range(n)))
                a = self.add_array("a", [0] * n)
                b = self.add_array("b", [0] * n)
                c = self.add_array("c", [0] * n)
                ct0 = self.add_count("ct0")
                ct1 = self.add_count("ct1")

                def t0(ctx):
                    for i in range(n):
                        a[i] = src.read()[i] + 1
                        ct0.add()
                        yield 1.0

                def t1(ctx):
                    for i in range(n):
                        b[i] = a[i] * 10
                        ct1.add()
                        yield 1.0

                def t2(ctx):
                    for i in range(n):
                        c[i] = b[i] + 5
                        yield 1.0

                self.add_task("t0", t0, inputs=[src], outputs=[a])
                self.add_task("t1", t1, inputs=[a], outputs=[b],
                              start_valves=[PercentValve(ct0, 0.1, n)])
                self.add_task("t2", t2, inputs=[b], outputs=[c],
                              start_valves=[PercentValve(ct1, 0.5, n)],
                              end_valves=[PredicateValve(
                                  lambda: all(c[i] == (i + 1) * 10 + 5
                                              for i in range(n)))])

        region = Stall("thr_stall")
        executor = ThreadExecutor(timeout=THREAD_DEADLINE)
        executor.submit(region)
        executor.run()
        assert region.complete
        assert region.output("c") == [(i + 1) * 10 + 5 for i in range(30)]
