"""Unit tests for FluidRegion declaration and lifecycle."""

import pytest

from repro import AlwaysValve, FluidRegion, GraphError, SimExecutor, run_serial
from repro.core.count import ImmediateSink

from util import make_pipeline, pipeline_expected


def _noop(ctx):
    yield 0.0


class TestDeclaration:
    def test_add_data_scalar(self):
        region = FluidRegion("r")
        d = region.add_data("d", 5)
        assert region.datas["d"] is d
        assert d.read() == 5

    def test_add_array(self):
        region = FluidRegion("r")
        a = region.add_array("a", [1, 2])
        assert len(a) == 2

    def test_input_data_is_precise(self):
        region = FluidRegion("r")
        src = region.input_data("src", 9)
        assert src.final and src.precise

    def test_duplicate_data_rejected(self):
        region = FluidRegion("r")
        region.add_data("d")
        with pytest.raises(GraphError):
            region.add_data("d")

    def test_duplicate_count_rejected(self):
        region = FluidRegion("r")
        region.add_count("ct")
        with pytest.raises(GraphError):
            region.add_count("ct")

    def test_task_valves_registered(self):
        region = FluidRegion("r")
        valve = AlwaysValve()
        region.add_task("t", _noop, start_valves=[valve])
        assert valve in region.valves

    def test_auto_generated_names_unique(self):
        assert FluidRegion().name != FluidRegion().name


class TestFinalize:
    def test_finalize_builds_graph(self):
        region = make_pipeline(n=4)
        graph = region.finalize()
        assert len(graph) == 2

    def test_finalize_idempotent(self):
        region = make_pipeline(n=4)
        assert region.finalize() is region.finalize()

    def test_finalize_calls_build_once(self):
        calls = []

        class R(FluidRegion):
            def build(self):
                calls.append(1)
                self.add_task("t", _noop)

        region = R("r")
        region.finalize()
        region.finalize()
        assert calls == [1]

    def test_no_tasks_after_finalize(self):
        region = make_pipeline(n=4)
        region.finalize()
        with pytest.raises(GraphError, match="future work"):
            region.add_task("late", _noop)

    def test_invalid_shape_raises_at_finalize(self):
        class Bad(FluidRegion):
            def build(self):
                self.add_task("a", _noop)
                self.add_task("b", _noop)  # two roots

        with pytest.raises(GraphError):
            Bad("bad").finalize()


class TestLifecycle:
    def test_complete_false_before_run(self):
        region = make_pipeline(n=4)
        region.finalize()
        assert not region.complete

    def test_complete_after_serial_run(self):
        region = make_pipeline(n=4)
        run_serial(region)
        assert region.complete

    def test_output_reads_final_value(self):
        region = make_pipeline(n=4)
        run_serial(region)
        assert region.output("out") == pipeline_expected(4)

    def test_reset_valves_undoes_modulation(self):
        region = make_pipeline(n=10)
        region.finalize()
        valve = region.tasks[1].spec.start_valves[0]
        valve.tighten(1.0)
        region.reset_valves()
        assert valve.threshold == valve.base_threshold

    def test_bind_sink_reroutes_counts(self):
        region = make_pipeline(n=4)
        region.finalize()
        sink = ImmediateSink()
        region.bind_sink(sink)
        assert all(ct._sink is sink for ct in region.counts.values())


class TestStatsPlumbing:
    def test_region_stats_name(self):
        region = make_pipeline(n=4, name="edge")
        assert region.stats.region_name == "edge"

    def test_sim_run_records_makespan(self):
        region = make_pipeline(n=10)
        executor = SimExecutor(cores=2)
        executor.submit(region)
        executor.run()
        assert region.stats.makespan > 0
