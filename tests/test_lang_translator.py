"""End-to-end tests for the FluidPy translator: codegen + execution."""

import textwrap

import pytest

from repro import CompileError, SimExecutor, run_serial
from repro.lang import (check_source, load_source, translate_source)
from repro.lang.__main__ import main as cli_main


EDGE_SOURCE = textwrap.dedent('''
    """Edge detection, fluidized (mirrors paper Figure 3)."""

    __fluid__
    class EdgeDetection:
        #pragma data {Image *d1;}
        #pragma data {Image *d2;}
        #pragma data {Image *d3;}
        #pragma count {int ct;}
        #pragma valve {ValveCT v1;}
        #pragma valve {ValveCT v2;}

        def gaussian(self, ctx, ct):
            img = self.d1.read()
            for i in range(self.size):
                self.d2[i] = img[i] // 2
                ct.add()
                yield 1.0

        def sobel(self, ctx):
            for i in range(self.size):
                self.d3[i] = self.d2[i] + 100
                yield 1.0

        def region(self):
            d1.init(self.input_img)
            d2.init([0] * self.size)
            d3.init([0] * self.size)
            ct.init(0)
            #pragma task <<<t1, {}, {}, {d1}, {d2}>>> gaussian(ct)
            v1.init(ct, 0.4 * self.size)
            v2.init(ct, 1.0 * self.size)
            #pragma task <<<t2, {v1}, {v2}, {d2}, {d3}>>> sobel()
            sync(t2)
''')


class TestCodegenShape:
    def test_generates_fluid_region_subclass(self):
        result = translate_source(EDGE_SOURCE, "edge.fpy")
        assert "class EdgeDetection(_fluid.FluidRegion):" in \
            result.python_source

    def test_pragmas_become_declarations(self):
        src = translate_source(EDGE_SOURCE, "edge.fpy").python_source
        assert "self.add_array('d1')" in src
        assert "self.add_count('ct')" in src
        assert "declare_valve('ValveCT', 'v1')" in src

    def test_task_pragmas_become_add_task(self):
        src = translate_source(EDGE_SOURCE, "edge.fpy").python_source
        assert "self.add_task(" in src
        assert "bind_task(self.gaussian, (ct,))" in src
        assert "start_valves=[v1], end_valves=[v2]" in src

    def test_sync_elided(self):
        src = translate_source(EDGE_SOURCE, "edge.fpy").python_source
        assert "sync(t2)" not in src.replace("# sync(t2)", "")

    def test_methods_pass_through(self):
        src = translate_source(EDGE_SOURCE, "edge.fpy").python_source
        assert "def gaussian(self, ctx, ct):" in src

    def test_module_docstring_passthrough(self):
        src = translate_source(EDGE_SOURCE, "edge.fpy").python_source
        assert "mirrors paper Figure 3" in src

    def test_generated_source_is_valid_python(self):
        src = translate_source(EDGE_SOURCE, "edge.fpy").python_source
        compile(src, "edge_generated.py", "exec")

    def test_class_names_listed(self):
        result = translate_source(EDGE_SOURCE, "edge.fpy")
        assert result.class_names == ["EdgeDetection"]


class TestExecution:
    def _build(self, n=40):
        namespace = load_source(EDGE_SOURCE, "edge.fpy")
        factory = namespace["EdgeDetection"]
        return factory(input_img=[i * 2 for i in range(n)], size=n), n

    def test_translated_region_runs_fluid(self):
        region, n = self._build()
        executor = SimExecutor(cores=4)
        executor.submit(region)
        executor.run()
        assert region.output("d3") == [i + 100 for i in range(n)]

    def test_translated_region_runs_serial(self):
        region, n = self._build()
        run_serial(region)
        assert region.output("d3") == [i + 100 for i in range(n)]

    def test_fluid_matches_serial(self):
        fluid, n = self._build()
        serial, _ = self._build()
        executor = SimExecutor(cores=4)
        executor.submit(fluid)
        executor.run()
        run_serial(serial)
        assert fluid.output("d3") == serial.output("d3")

    def test_fluid_overlap_beats_serial_makespan(self):
        from repro import Overheads
        fluid, _ = self._build(n=100)
        serial, _ = self._build(n=100)
        executor = SimExecutor(cores=4, overheads=Overheads.zero())
        executor.submit(fluid)
        fluid_span = executor.run().makespan
        serial_span = run_serial(serial).makespan
        assert fluid_span < serial_span


class TestDiagnostics:
    def test_compile_error_on_bad_source(self):
        bad = EDGE_SOURCE.replace("{d2}, {d3}>>>", "{ghost}, {d3}>>>")
        with pytest.raises(CompileError) as exc:
            translate_source(bad, "edge.fpy")
        assert "undeclared data" in str(exc.value)
        assert "edge.fpy" in str(exc.value)

    def test_check_source_collects_without_raising(self):
        bad = EDGE_SOURCE.replace("{d2}, {d3}>>>", "{ghost}, {d3}>>>")
        diagnostics = check_source(bad, "edge.fpy")
        assert any(d.severity == "error" for d in diagnostics)

    def test_table2_stats(self):
        result = translate_source(EDGE_SOURCE, "edge.fpy")
        assert result.total_pragmas() == 9  # 8 pragmas + __fluid__ marker
        assert 0 < result.pragma_ratio() < 1
        per_class = result.per_class_stats()
        assert per_class[0].class_name == "EdgeDetection"
        assert per_class[0].region_pragmas == 9


class TestCli:
    def test_cli_emits_code(self, tmp_path, capsys):
        source_path = tmp_path / "edge.fpy"
        source_path.write_text(EDGE_SOURCE)
        out_path = tmp_path / "edge.py"
        assert cli_main([str(source_path), "-o", str(out_path)]) == 0
        assert "FluidRegion" in out_path.read_text()

    def test_cli_stats(self, tmp_path, capsys):
        source_path = tmp_path / "edge.fpy"
        source_path.write_text(EDGE_SOURCE)
        assert cli_main([str(source_path), "--stats"]) == 0
        captured = capsys.readouterr()
        assert "pragmas" in captured.out

    def test_cli_check_mode_fails_on_errors(self, tmp_path):
        source_path = tmp_path / "bad.fpy"
        source_path.write_text(
            EDGE_SOURCE.replace("{d2}, {d3}>>>", "{ghost}, {d3}>>>"))
        assert cli_main([str(source_path), "--check"]) == 1

    def test_cli_reports_compile_error(self, tmp_path):
        source_path = tmp_path / "bad.fpy"
        source_path.write_text(
            EDGE_SOURCE.replace("{d2}, {d3}>>>", "{ghost}, {d3}>>>"))
        assert cli_main([str(source_path)]) == 1
