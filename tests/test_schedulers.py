"""Unit tests for the pluggable scheduler seam (repro.sched).

Covers spec parsing, every discipline's ordering contract, the
work-stealing and bounded-admission decision telemetry (including the
shed-must-be-observable regression test), and the end-of-run metrics
fold via Telemetry.record_scheduler.
"""

import pytest

from repro.core.errors import SchedulerError
from repro.sched import (BoundedScheduler, EdfScheduler, FcfsScheduler,
                         PriorityScheduler, SCHEDULER_NAMES,
                         ShortestWorkScheduler, WorkStealingScheduler,
                         make_scheduler)
from repro.telemetry import Telemetry


class Synth:
    """Minimal task duck: its own spec, like the capacity simulator's."""

    def __init__(self, name, priority=None, deadline=None,
                 cost_estimate=None):
        self.name = name
        self.priority = priority
        self.deadline = deadline
        self.cost_estimate = cost_estimate

    def __repr__(self):
        return f"Synth({self.name})"


def drain(scheduler, now=0.0):
    order = []
    while scheduler.pending():
        task = scheduler.pick(now=now)
        if task is None:
            break
        order.append(task.name)
    return order


def instrumented():
    """A Telemetry plus a raw capture of every bus event."""
    telemetry = Telemetry(chrome=False)
    events = []
    telemetry.bus.subscribe(events.append)
    return telemetry, events


# ------------------------------------------------------------- make_scheduler


def test_make_scheduler_default_is_fcfs():
    assert isinstance(make_scheduler(None), FcfsScheduler)


def test_make_scheduler_passes_instances_through():
    scheduler = EdfScheduler()
    assert make_scheduler(scheduler) is scheduler


def test_make_scheduler_by_name():
    assert isinstance(make_scheduler("fcfs"), FcfsScheduler)
    assert isinstance(make_scheduler("priority"), PriorityScheduler)
    assert isinstance(make_scheduler("edf"), EdfScheduler)
    assert isinstance(make_scheduler("sew"), ShortestWorkScheduler)
    assert isinstance(make_scheduler("shortest-work"), ShortestWorkScheduler)
    assert isinstance(make_scheduler("work-stealing"), WorkStealingScheduler)
    assert isinstance(make_scheduler("bounded"), BoundedScheduler)


def test_make_scheduler_options():
    bounded = make_scheduler("bounded:capacity=3,inner=edf")
    assert bounded.capacity == 3
    assert isinstance(bounded.inner, EdfScheduler)
    stealing = make_scheduler("work-stealing:workers=5").bind()
    assert len(stealing._queues) == 5


def test_make_scheduler_rejects_unknown():
    with pytest.raises(SchedulerError, match="unknown scheduler"):
        make_scheduler("lottery")
    with pytest.raises(SchedulerError):
        make_scheduler("fcfs:capacity=2")
    with pytest.raises(SchedulerError):
        make_scheduler("bounded:capacity=nope")
    with pytest.raises(SchedulerError):
        make_scheduler("bounded:capacity=0")
    with pytest.raises(SchedulerError):
        make_scheduler("bounded:bogus=1")


def test_scheduler_names_all_constructible():
    for name in SCHEDULER_NAMES:
        scheduler = make_scheduler(name).bind(workers=2)
        task = Synth("x", priority=1.0, deadline=5.0, cost_estimate=2.0)
        assert scheduler.submit(task, now=0.0)
        assert scheduler.pick(now=1.0) is task


# ------------------------------------------------------------------ ordering


def test_fcfs_is_fifo():
    scheduler = FcfsScheduler().bind()
    for name in "abc":
        scheduler.submit(Synth(name))
    assert drain(scheduler) == ["a", "b", "c"]


def test_priority_highest_first_fifo_ties():
    scheduler = PriorityScheduler().bind()
    scheduler.submit(Synth("low", priority=1.0))
    scheduler.submit(Synth("hi", priority=9.0))
    scheduler.submit(Synth("mid1", priority=5.0))
    scheduler.submit(Synth("mid2", priority=5.0))
    scheduler.submit(Synth("none"))  # default priority 0.0, runs last
    assert drain(scheduler) == ["hi", "mid1", "mid2", "low", "none"]


def test_edf_earliest_deadline_first_missing_deadlines_last():
    scheduler = EdfScheduler().bind()
    scheduler.submit(Synth("late", deadline=50.0))
    scheduler.submit(Synth("urgent", deadline=3.0))
    scheduler.submit(Synth("nodeadline"))
    scheduler.submit(Synth("soon", deadline=10.0))
    assert drain(scheduler) == ["urgent", "soon", "late", "nodeadline"]


def test_sew_shortest_estimate_first():
    scheduler = ShortestWorkScheduler().bind()
    scheduler.submit(Synth("big", cost_estimate=100.0))
    scheduler.submit(Synth("tiny", cost_estimate=1.0))
    scheduler.submit(Synth("unknown"))
    scheduler.submit(Synth("mid", cost_estimate=10.0))
    assert drain(scheduler) == ["tiny", "mid", "big", "unknown"]


def test_fluid_task_specs_carry_hints():
    from repro.core.region import FluidRegion

    region = FluidRegion("hints")

    def body(ctx):
        yield 1.0

    task = region.add_task("t", body, priority=2.0, deadline=7.5,
                           cost_estimate=3.0)
    assert task.spec.priority == 2.0
    scheduler = EdfScheduler().bind()
    scheduler.submit(task)
    scheduler.submit(Synth("later", deadline=9.0))
    assert drain(scheduler) == ["t", "later"]


# ------------------------------------------------------------- work stealing


def test_work_stealing_home_queue_then_steal():
    telemetry, events = instrumented()
    scheduler = WorkStealingScheduler().bind(workers=2, bus=telemetry.bus)
    # Round-robin admission: a,c -> worker 0; b,d -> worker 1.
    for name in "abcd":
        scheduler.submit(Synth(name))
    assert scheduler.pick(worker=0).name == "a"
    assert scheduler.pick(worker=1).name == "b"
    assert scheduler.pick(worker=1).name == "d"
    # Worker 1's deque is empty: it must steal worker 0's "c".
    stolen = scheduler.pick(worker=1)
    assert stolen.name == "c"
    assert scheduler.steals == 1
    steal_events = [e for e in events if e.name == "steal"]
    assert len(steal_events) == 1
    assert steal_events[0].task == "c"
    assert steal_events[0].data == {"victim": 0, "thief": 1}
    assert telemetry.metrics.counters["sched.steals"] == 1
    assert scheduler.pick(worker=0) is None


def test_work_stealing_anonymous_drain_counts_no_steals():
    scheduler = WorkStealingScheduler().bind(workers=3)
    for name in "abcde":
        scheduler.submit(Synth(name))
    drained = drain(scheduler)
    assert sorted(drained) == list("abcde")
    assert scheduler.steals == 0


# ---------------------------------------------------------- bounded admission


def test_bounded_sheds_sheddable_overflow_observably():
    """Regression: shedding must be visible — a False return, a counter,
    and a telemetry event — never a silent drop."""
    telemetry, events = instrumented()
    scheduler = make_scheduler("bounded:capacity=2").bind(bus=telemetry.bus)
    assert scheduler.submit(Synth("a"), now=0.0, sheddable=True)
    assert scheduler.submit(Synth("b"), now=0.0, sheddable=True)
    assert not scheduler.submit(Synth("c"), now=1.0, sheddable=True)
    assert scheduler.counters()["sheds"] == 1
    shed_events = [e for e in events if e.name == "shed"]
    assert len(shed_events) == 1
    assert shed_events[0].task == "c"
    assert shed_events[0].data == {"capacity": 2, "queued": 2}
    # The bus event lands in the metrics catalogue too.
    assert telemetry.metrics.counters["sched.tasks_shed"] == 1
    # Only a and b are ever served.
    assert drain(scheduler) == ["a", "b"]


def test_bounded_parks_mustrun_overflow_and_promotes():
    telemetry, events = instrumented()
    scheduler = make_scheduler("bounded:capacity=1").bind(bus=telemetry.bus)
    assert scheduler.submit(Synth("a"), now=0.0)
    assert scheduler.submit(Synth("b"), now=0.0)  # parked, not dropped
    assert scheduler.submit(Synth("c"), now=0.0)  # parked, not dropped
    assert scheduler.counters()["sheds"] == 0
    assert scheduler.counters()["deferrals"] == 2
    assert scheduler.pending() == 3
    assert drain(scheduler) == ["a", "b", "c"]
    defer_events = [e for e in events if e.name == "defer"]
    assert [e.task for e in defer_events] == ["b", "c"]
    assert telemetry.metrics.counters["sched.tasks_deferred"] == 2


def test_bounded_counters_merge_inner_picks():
    scheduler = make_scheduler("bounded:capacity=8,inner=priority").bind()
    for index in range(3):
        scheduler.submit(Synth(f"t{index}", priority=float(index)))
    assert drain(scheduler) == ["t2", "t1", "t0"]
    counters = scheduler.counters()
    assert counters["picks"] == 3
    assert counters["sheds"] == 0
    snapshot = scheduler.snapshot()
    assert snapshot["scheduler"] == "bounded"
    assert snapshot["inner"] == "priority"
    assert snapshot["capacity"] == 8


# ------------------------------------------------------- residence + metrics


def test_queue_residence_histogram_records_wait():
    scheduler = FcfsScheduler().bind()
    scheduler.submit(Synth("a"), now=0.0)
    scheduler.submit(Synth("b"), now=1.0)
    scheduler.pick(now=5.0)
    scheduler.pick(now=5.0)
    assert scheduler.residence.count == 2
    assert scheduler.residence.total == pytest.approx(9.0)  # 5.0 + 4.0
    assert scheduler.picks == 2


def test_record_scheduler_folds_into_metrics():
    telemetry = Telemetry(chrome=False)
    scheduler = FcfsScheduler().bind()
    for index in range(4):
        scheduler.submit(Synth(f"t{index}"), now=float(index))
    while scheduler.pending():
        scheduler.pick(now=10.0)
    telemetry.record_scheduler(scheduler)
    assert telemetry.metrics.counters["sched.picks"] == 4
    histogram = telemetry.metrics.histograms["sched.queue_residence"]
    assert histogram.count == 4
    assert histogram.total == pytest.approx(10.0 + 9.0 + 8.0 + 7.0)
    # No scheduler (the default executors pass None): a clean no-op.
    telemetry.record_scheduler(None)
    assert telemetry.metrics.counters["sched.picks"] == 4


def test_schedulers_compose_with_schedlab_policies():
    """A bound SchedulePolicy resolves FCFS's pick among the whole
    queue (the historical behaviour) and keyed ties only."""
    from repro.schedlab.policy import SeededRandomPolicy

    policy = SeededRandomPolicy(0)
    with_policy = FcfsScheduler().bind(policy=policy, point="core")
    for name in "abcd":
        with_policy.submit(Synth(name))
    chosen = drain(with_policy)
    assert sorted(chosen) == list("abcd")

    tie_policy = SeededRandomPolicy(0)
    keyed = PriorityScheduler().bind(policy=tie_policy, point="core")
    keyed.submit(Synth("hi", priority=9.0))
    keyed.submit(Synth("tie1", priority=1.0))
    keyed.submit(Synth("tie2", priority=1.0))
    order = drain(keyed)
    assert order[0] == "hi"  # the discipline itself is never perturbed
    assert sorted(order[1:]) == ["tie1", "tie2"]


# ----------------------------------------------------------- end-to-end runs


@pytest.mark.parametrize("spec", ["fcfs", "priority", "edf", "sew",
                                  "work-stealing", "bounded:capacity=2"])
def test_sim_backend_correct_under_every_discipline(spec):
    from repro.runtime.simulator import SimExecutor
    from util import make_pipeline, pipeline_expected

    region = make_pipeline(n=24, exact_quality=True)
    executor = SimExecutor(cores=2, scheduler=spec)
    executor.submit(region)
    executor.run()
    assert region.output("out") == pipeline_expected(24)
    assert executor.scheduler.counters()["sheds"] == 0


def test_thread_backend_slot_gating_serializes_bodies():
    from repro.runtime.thread_backend import ThreadExecutor
    from util import make_diamond, diamond_expected

    region = make_diamond(n=16, exact_quality=True)
    executor = ThreadExecutor(timeout=30, scheduler="fcfs", slots=1)
    executor.submit(region)
    executor.run()
    assert region.output("out") == diamond_expected(16)
    assert executor.scheduler.picks >= 4  # every body entry was a pick


def test_run_fluid_scheduler_flag():
    from repro.apps.edge_detection import EdgeDetectionApp
    from repro.workloads import synthetic_image

    app = EdgeDetectionApp(synthetic_image(24, 24, noise=8.0, seed=1))
    telemetry = Telemetry(chrome=False)
    # One core forces queueing, so the discipline actually decides.
    run = app.run_fluid(scheduler="edf", cores=1, telemetry=telemetry)
    assert run.error >= 0.0
    assert telemetry.metrics.counters["sched.picks"] > 0
