"""Golden-trace regression tests for the simulator's scheduling.

A fixed-seed schedule policy makes a whole simulated execution — every
admission, run, wake-up and completion — a deterministic function of
the runtime's decision logic.  These tests pin that function for the
two paper apps by comparing the *structure* of the trace (the sequence
of event kinds and the task each lands on) against checked-in golden
files.

Structure only, on purpose: virtual timestamps shift with any overhead
retuning and K-means region names embed ``id()``-derived suffixes that
differ between interpreter runs, so times / regions / details are not
compared.  A structural diff means the scheduler now takes different
decisions — exactly the regression this guards against.

Regenerate after an *intentional* scheduling change with::

    PYTHONPATH=src python tests/test_golden_traces.py --update
"""

import json
import pathlib

import pytest

from repro.schedlab import SeededRandomPolicy, run_scenario

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_SEED = 0

#: scenario name -> golden file
CASES = {
    "kmeans": "kmeans_trace.json",
    "bellman_ford": "bellman_ford_trace.json",
    # One window of the streaming log-aggregation pipeline (3 stages
    # linked by staleness-bounded StageQueues); pins the source/stage
    # admission order under the relaxed valves.
    "stream": "stream_logagg_trace.json",
}


def _signature(trace):
    """(event kind, task) sequence — the structural trace."""
    return [[event.event, event.task] for event in trace.events]


def _run(scenario):
    outcome = run_scenario(scenario, backend="sim",
                           policy=SeededRandomPolicy(GOLDEN_SEED),
                           seed=GOLDEN_SEED, trace=True)
    assert outcome.ok, outcome.message
    return outcome


class TestGoldenTraces:
    @pytest.mark.parametrize("scenario", sorted(CASES))
    def test_trace_structure_matches_golden(self, scenario):
        golden_path = GOLDEN_DIR / CASES[scenario]
        golden = json.loads(golden_path.read_text(encoding="utf-8"))
        observed = _signature(_run(scenario).trace)
        assert observed == golden["events"], (
            f"{scenario}: simulator scheduling diverged from "
            f"{golden_path.name}; if the change is intentional, "
            "regenerate with PYTHONPATH=src python "
            "tests/test_golden_traces.py --update")

    @pytest.mark.parametrize("scenario", sorted(CASES))
    def test_trace_structure_is_run_to_run_stable(self, scenario):
        assert _signature(_run(scenario).trace) == \
            _signature(_run(scenario).trace)

    @pytest.mark.parametrize("scenario", sorted(CASES))
    def test_explicit_fcfs_scheduler_preserves_golden(self, scenario):
        """An explicit FCFS scheduler must reproduce the golden traces
        bit-for-bit: the default discipline is the paper's Section-6.2
        FCFS admission, so selecting it by name may not perturb a single
        decision or publish a single extra bus event."""
        golden = json.loads(
            (GOLDEN_DIR / CASES[scenario]).read_text(encoding="utf-8"))
        outcome = run_scenario(scenario, backend="sim",
                               policy=SeededRandomPolicy(GOLDEN_SEED),
                               seed=GOLDEN_SEED, trace=True,
                               scheduler="fcfs")
        assert outcome.ok, outcome.message
        assert _signature(outcome.trace) == golden["events"]

    @pytest.mark.parametrize("scenario", sorted(CASES))
    def test_autotune_none_preserves_golden(self, scenario):
        """``autotune=None`` is the default everywhere; threading the
        parameter through the harness must not perturb a single
        scheduling decision or publish a single extra structural
        event."""
        golden = json.loads(
            (GOLDEN_DIR / CASES[scenario]).read_text(encoding="utf-8"))
        outcome = run_scenario(scenario, backend="sim",
                               policy=SeededRandomPolicy(GOLDEN_SEED),
                               seed=GOLDEN_SEED, trace=True,
                               autotune=None)
        assert outcome.ok, outcome.message
        assert _signature(outcome.trace) == golden["events"]

    @pytest.mark.parametrize("scenario", sorted(CASES))
    def test_idle_autotuner_preserves_golden_structure(self, scenario):
        """Even a *bound* tuner whose window never fills must leave the
        structural trace untouched: ``tune`` events are not recorded by
        Trace, and an idle controller actuates nothing."""
        golden = json.loads(
            (GOLDEN_DIR / CASES[scenario]).read_text(encoding="utf-8"))
        outcome = run_scenario(scenario, backend="sim",
                               policy=SeededRandomPolicy(GOLDEN_SEED),
                               seed=GOLDEN_SEED, trace=True,
                               autotune="accuracy_floor:target=0.9,"
                                        "window=10000")
        assert outcome.ok, outcome.message
        assert _signature(outcome.trace) == golden["events"]


def _update():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for scenario, filename in CASES.items():
        outcome = _run(scenario)
        record = {
            "scenario": scenario,
            "seed": GOLDEN_SEED,
            "policy": "random",
            "makespan": outcome.makespan,
            "events": _signature(outcome.trace),
        }
        path = GOLDEN_DIR / filename
        path.write_text(json.dumps(record, indent=2) + "\n",
                        encoding="utf-8")
        print(f"wrote {path} ({len(record['events'])} events)")


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        _update()
    else:
        print(__doc__)
