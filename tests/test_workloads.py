"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.workloads import (image_classes, random_graph, random_tensor,
                             random_vector, synthetic_digits,
                             synthetic_image, synthetic_poses)
from repro.workloads.graphs import (bellman_ford_reference,
                                    greedy_coloring_reference)
from repro.workloads.molecules import energy_reference, pose_energy


class TestImages:
    def test_shape_and_range(self):
        image = synthetic_image(32, 48, seed=1)
        assert image.shape == (32, 48)
        assert image.min() >= 0.0 and image.max() <= 255.0

    def test_seeded_determinism(self):
        assert np.array_equal(synthetic_image(seed=3), synthetic_image(seed=3))

    def test_seeds_differ(self):
        assert not np.array_equal(synthetic_image(seed=1),
                                  synthetic_image(seed=2))

    def test_noise_increases_variance_of_differences(self):
        quiet = synthetic_image(noise=1.0, seed=5)
        loud = synthetic_image(noise=30.0, seed=5)
        assert np.diff(loud, axis=1).std() > np.diff(quiet, axis=1).std()

    def test_image_classes(self):
        classes = image_classes(32, 32)
        assert set(classes) == {"EM", "MSC", "SYN"}
        assert all(img.shape == (32, 32) for img in classes.values())


class TestGraphs:
    def test_edge_count(self):
        graph = random_graph(100, 500, seed=1)
        assert graph.num_edges == 500
        assert graph.num_vertices == 100

    def test_connectivity_from_source(self):
        graph = random_graph(200, 400, seed=2)
        dist = bellman_ford_reference(graph, source=0)
        assert np.isfinite(dist).all()

    def test_minimum_edges_enforced(self):
        with pytest.raises(ValueError):
            random_graph(10, 5)

    def test_weights_positive(self):
        graph = random_graph(50, 100, seed=3)
        assert (graph.weight > 0).all()

    def test_adjacency_symmetric(self):
        graph = random_graph(30, 60, seed=4)
        adjacency = graph.adjacency_lists()
        for vertex, neighbours in enumerate(adjacency):
            for other in neighbours:
                assert vertex in adjacency[other]

    def test_reference_coloring_proper(self):
        graph = random_graph(60, 240, seed=5)
        colors = greedy_coloring_reference(graph)
        assert (colors >= 0).all()
        for s, d in zip(graph.src.tolist(), graph.dst.tolist()):
            if s != d:
                assert colors[s] != colors[d]

    def test_determinism(self):
        a = random_graph(40, 80, seed=7)
        b = random_graph(40, 80, seed=7)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.weight, b.weight)


class TestSignals:
    def test_vector_power_of_two_required(self):
        with pytest.raises(ValueError):
            random_vector(100)

    def test_vector_deterministic(self):
        assert np.array_equal(random_vector(256, seed=1),
                              random_vector(256, seed=1))

    def test_tensor_shape(self):
        assert random_tensor(16, 24, seed=0).shape == (16, 24)


class TestDigits:
    def test_shapes(self):
        data = synthetic_digits(samples=64, features=49, num_classes=7)
        assert data.inputs.shape == (64, 49)
        assert data.labels.shape == (64,)
        assert data.num_classes == 7
        assert len(data) == 64

    def test_labels_in_range(self):
        data = synthetic_digits(samples=64)
        assert data.labels.min() >= 0
        assert data.labels.max() < data.num_classes

    def test_classes_linearly_separable_enough(self):
        # Nearest-prototype classification should beat 90%: the planted
        # structure must be learnable for accuracy metrics to mean much.
        data = synthetic_digits(samples=200, seed=11)
        prototypes = np.stack([
            data.inputs[data.labels == c].mean(axis=0)
            for c in range(data.num_classes)])
        predictions = np.argmin(
            ((data.inputs[:, None, :] - prototypes[None]) ** 2).sum(axis=2),
            axis=1)
        assert (predictions == data.labels).mean() > 0.9


class TestMolecules:
    def test_pose_shapes(self):
        docking = synthetic_poses(num_poses=32, protein_atoms=24,
                                  ligand_atoms=6, seed=1)
        assert docking.poses.shape == (32, 6, 3)
        assert docking.num_poses == 32

    def test_planted_minimum_is_good(self):
        docking = synthetic_poses(num_poses=64, seed=2)
        energies = energy_reference(docking)
        assert energies.min() < -3.0   # deeply negative planted pose

    def test_early_placement_concentrates_top_poses(self):
        docking = synthetic_poses(num_poses=64, seed=3, placement="early",
                                  early_fraction=0.4)
        energies = energy_reference(docking)
        best = int(np.argmin(energies))
        assert best < int(64 * 0.4)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            synthetic_poses(placement="sideways")

    def test_energy_symmetric_under_pose_copy(self):
        docking = synthetic_poses(num_poses=8, seed=4)
        e = pose_energy(docking.protein, docking.poses[0])
        assert e == pose_energy(docking.protein, docking.poses[0].copy())


class TestRgbImages:
    def test_shape(self):
        from repro.workloads import synthetic_rgb_image
        image = synthetic_rgb_image(16, 24, seed=3)
        assert image.shape == (16, 24, 3)

    def test_deterministic(self):
        from repro.workloads import synthetic_rgb_image
        assert np.array_equal(synthetic_rgb_image(seed=4),
                              synthetic_rgb_image(seed=4))

    def test_kmeans_accepts_color_images(self):
        from repro.apps.kmeans import KMeansApp
        from repro.workloads import synthetic_rgb_image
        app = KMeansApp(synthetic_rgb_image(16, 16, diversity=4, seed=5),
                        num_clusters=4, epochs=3)
        assert app.pixels.shape == (16 * 16, 3)
        precise = app.run_precise()
        fluid = app.run_fluid()
        assert fluid.error < 0.3
        centroids, assignments = fluid.output
        assert centroids.shape == (4, 3)
        assert len(assignments) == 16 * 16
