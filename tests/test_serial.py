"""Tests for the serial (original program) reference executor."""

import pytest

from repro import run_serial

from util import (chain_expected, diamond_expected, make_chain, make_diamond,
                  make_pipeline, pipeline_expected)


class TestSerialExecution:
    def test_pipeline_output(self):
        region = make_pipeline(n=12)
        run_serial(region)
        assert region.output("out") == pipeline_expected(12)

    def test_makespan_is_sum_of_costs(self):
        region = make_pipeline(n=10, producer_cost=2.0, consumer_cost=3.0)
        result = run_serial(region)
        assert result.makespan == pytest.approx(10 * 2.0 + 10 * 3.0)

    def test_chain_output(self):
        region = make_chain(depth=4, n=8, exact_quality=False)
        run_serial(region)
        assert region.output("a3") == chain_expected(4, 8)

    def test_diamond_output(self):
        region = make_diamond(n=8)
        run_serial(region)
        assert region.output("out") == diamond_expected(8)

    def test_every_task_runs_once(self):
        region = make_chain(depth=3, n=5, exact_quality=False)
        run_serial(region)
        assert all(task.stats.runs == 1 for task in region.tasks)

    def test_outputs_are_precise(self):
        region = make_pipeline(n=6)
        run_serial(region)
        assert region.datas["out"].precise

    def test_region_complete(self):
        region = make_pipeline(n=6)
        run_serial(region)
        assert region.complete

    def test_multiple_regions_accumulate(self):
        a = make_pipeline(n=5, name="a")
        b = make_pipeline(n=5, name="b")
        result = run_serial(a, b)
        assert result.makespan == pytest.approx(2 * (5 + 5))
        assert a.complete and b.complete
