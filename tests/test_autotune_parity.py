"""Cross-backend parity of autotuning decisions.

The ``accuracy_floor`` feedback loop is event-count-cadenced and its
window pass rate is order-invariant, so on a schedule whose *verdict
stream* is deterministic all three backends must take identical tuning
decisions (docs/autotuning.md).  The handshake region below constructs
such a stream without relying on timing:

* ``p1`` drives the count behind ``c``'s tunable percent gate;
* ``c``'s body bumps an ``ack`` count that ``p2``'s (untunable,
  plain-count) start valve waits on, so ``p2`` cannot produce ``mid``
  before ``c`` has started — whatever the backend's real-time
  interleaving, ``c``'s first run sees ``mid`` either still non-final
  or version-advanced since its start snapshot, and therefore
  *evaluates* its end valves (neither precision path can skip them);
* the end valve is an always-true ``PredicateValve``: the evaluation
  contributes exactly one passing verdict and completes the task, so
  the re-execution machinery — whose wake-ups race producer
  finalization on the real-time backends — is never engaged.

Each triple hence emits exactly one passing verdict; only the order of
triples varies across backends, which the windowed pass rate cannot
observe.  With a ``relax_floor`` the all-pass stream drives
deterministic AIMD relaxation probes, compared across backends as
``(metric, before, after)`` decision tuples.
"""

import pytest

from repro import ProcessExecutor, SimExecutor, ThreadExecutor
from repro.core.region import FluidRegion
from repro.core.valves import CountValve, PercentValve, PredicateValve
from repro.tuning import SLO, ValveAutotuner


class HandshakeRegion(FluidRegion):
    """TRIPLES independent (p1, p2, c) handshakes under one header."""

    TRIPLES = 4

    def build(self):
        go = self.add_data("go")

        def header(ctx):
            go.write(1)
            yield 1.0

        self.add_task("header", header, outputs=[go])
        for index in range(self.TRIPLES):
            progress = self.add_count(f"progress_{index}")
            ack = self.add_count(f"ack_{index}")
            mid = self.add_data(f"mid_{index}")
            gate = PercentValve(progress, 0.4, 100.0,
                                name=f"gate_{index}")

            def p1(ctx, progress=progress):
                for _ in range(10):
                    progress.add(10)
                    yield 2.0

            def p2(ctx, mid=mid):
                # The write bumps mid's version, so even a p2 that
                # finishes while c's body is still running denies c
                # retroactive precision — the end valve is evaluated.
                mid.write("mid")
                yield 1.0

            def c(ctx, ack=ack):
                ack.add(1)
                yield 1.0

            self.add_task(f"p1_{index}", p1, inputs=[go])
            # Plain CountValve: base == max, so the tuner must leave it
            # alone — relaxing a handshake would start p2 early and
            # tightening it could deadlock the region.
            self.add_task(f"p2_{index}", p2, inputs=[go], outputs=[mid],
                          start_valves=[CountValve(ack, 1,
                                                   name=f"hs_{index}")])
            self.add_task(f"c_{index}", c, inputs=[mid],
                          start_valves=[gate],
                          end_valves=[PredicateValve(
                              lambda: True, name=f"q_{index}")])


def _run_backend(backend: str, window: int):
    tuner = ValveAutotuner(SLO.accuracy_floor(0.9), window=window,
                           relax_floor=0.1)
    if backend == "sim":
        executor = SimExecutor(cores=4, autotune=tuner)
    elif backend == "thread":
        executor = ThreadExecutor(timeout=30, autotune=tuner)
    else:
        executor = ProcessExecutor(workers=2, timeout=60, autotune=tuner)
    region = HandshakeRegion()
    executor.submit(region)
    executor.run()
    return tuner, region


BACKENDS = ("sim", "thread", "process")


def _decision_log(tuner):
    return [(round(decision.metric, 9), round(decision.before, 9),
             round(decision.after, 9)) for decision in tuner.decisions]


def test_identical_decisions_across_backends():
    results = {backend: _run_backend(backend, window=2)
               for backend in BACKENDS}
    logs = {backend: _decision_log(tuner)
            for backend, (tuner, _) in results.items()}
    # Sanity on the sim log before comparing: two all-pass windows of
    # two verdicts each, AIMD probing one relax_step past the floor
    # margin each time.
    assert logs["sim"] == [(1.0, 0.0, -0.05), (1.0, -0.05, -0.1)]
    assert logs["thread"] == logs["sim"]
    assert logs["process"] == logs["sim"]
    for backend, (tuner, region) in results.items():
        assert tuner.windows == 2, backend
        assert tuner.adjustments == 2, backend
        assert tuner.relaxations == 2, backend
        # Every tunable gate landed on the same operating point:
        # base 40, floor 0.1 * 100 = 10, position -0.1.
        for valve in region.valves:
            if valve.name.startswith("gate_"):
                assert valve.threshold == pytest.approx(
                    40.0 - 0.1 * (40.0 - 10.0)), (backend, valve.name)
            # ...and the handshake valves were never touched.
            if valve.name.startswith("hs_"):
                assert valve.threshold == 1, (backend, valve.name)


def test_no_decision_parity_when_window_never_fills():
    for backend in BACKENDS:
        tuner, region = _run_backend(backend, window=8)
        assert tuner.windows == 0, backend
        assert tuner.adjustments == 0 and tuner.decisions == [], backend
        for valve in region.valves:
            if valve.name.startswith("gate_"):
                assert valve.threshold == 40.0, (backend, valve.name)


def test_verdict_stream_is_one_evaluation_per_triple():
    """The construction the module docstring promises: each consumer's
    quality valve is evaluated exactly once, passes, and never re-runs
    — on every backend."""
    for backend in BACKENDS:
        _, region = _run_backend(backend, window=2)
        for valve in region.valves:
            if valve.name.startswith("q_"):
                assert valve.checks == 1, (backend, valve.name)
        for task in region.tasks:
            if task.name.startswith("c_"):
                assert task.stats.quality_failures == 0, (backend,
                                                          task.name)
                assert task.stats.runs == 1, (backend, task.name)
