"""Parity and bounded-divergence tests for the streaming pipeline.

At ``k = 0`` the staleness valves degenerate to full-settlement
handshakes, so all three backends must reproduce the serial fold
reference *item for item* — same outputs, same end-valve verdicts.  At
``k > 0`` divergence is allowed but bounded: with one window and four
queue edges (source plus three stages) at most ``4k`` items may go
missing end-to-end, no must-deliver item may ever be lost, and no serve
may overtake more than ``k`` seqs.  The autotuner tests pin the
actuation contract: a :class:`~repro.core.valves.StalenessValve` is a
tunable ``CountValve``, and tightening it steers the attached queue's
effective drain bound toward FIFO.
"""

import asyncio

import pytest

from repro.core.valves import StalenessValve
from repro.service import FluidService
from repro.stream import APPS
from repro.stream.apps import make_log_items
from repro.tuning import make_autotuner

BACKENDS = ["sim", "thread", "process"]

#: One source edge plus one edge per stage: the per-window loss bound
#: at staleness k is EDGES * k items.
EDGES = 4


def _run(app_name, *, k, n, window, backend, **kwargs):
    app = APPS[app_name]
    pipeline = app.pipeline(k=k, window=window, **kwargs)
    items = app.make_items(n)
    result = pipeline.run(items, backend=backend)
    reference = pipeline.run_serial(items)
    return result, reference


class TestExactParityAtK0:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_logagg_matches_serial_reference(self, backend):
        result, reference = _run("logagg", k=0, n=24, window=12,
                                 backend=backend)
        assert result.outputs == reference
        assert result.delivered == 24
        assert result.drops == 0
        assert result.max_displacement == 0
        assert result.end_verdicts and all(result.end_verdicts.values())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_topk_matches_serial_reference(self, backend):
        result, reference = _run("topk", k=0, n=20, window=10,
                                 backend=backend)
        assert result.outputs == reference
        assert result.end_verdicts and all(result.end_verdicts.values())

    def test_frames_capacity_parks_instead_of_dropping_at_k0(self):
        # k=0 with a bounded queue may park (backpressure) but must not
        # shed: the output is still exact.
        result, reference = _run("frames", k=0, n=12, window=12,
                                 backend="sim")
        assert result.outputs == reference
        assert result.drops == 0

    def test_backends_agree_with_each_other(self):
        outputs = [_run("logagg", k=0, n=24, window=12,
                        backend=backend)[0].outputs
                   for backend in BACKENDS]
        assert outputs[0] == outputs[1] == outputs[2]


class TestBoundedDivergence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k", [2, 4])
    def test_losses_are_bounded_by_edges_times_k(self, backend, k):
        n = 32
        result, reference = _run("logagg", k=k, n=n, window=n,
                                 backend=backend)
        missing = [seq for seq in reference if seq not in result.outputs]
        assert len(missing) <= EDGES * k
        # Must-deliver items (every 4th) always arrive.
        assert all(seq % 4 != 0 for seq in missing)
        assert result.max_displacement <= k
        assert result.end_verdicts and all(result.end_verdicts.values())

    def test_sim_accuracy_floor_degrades_gracefully(self):
        """Deterministic on sim: the coverage error at staleness k is at
        most the missing-item fraction plus the (small) EMA divergence
        of delivered items — well above the worst-case floor."""
        app = APPS["logagg"]
        n = 40
        for k in (2, 8):
            result, reference = _run("logagg", k=k, n=n, window=n,
                                     backend="sim")
            error = app.metric(result.outputs, reference)
            floor = 1.0 - (EDGES * k + 2) / n  # +2: delivered-item drift
            assert 1.0 - error >= floor, (
                f"k={k}: accuracy {1 - error:.4f} below floor {floor:.4f}")

    def test_frames_sheds_at_most_k_per_edge_under_capacity(self):
        result, reference = _run("frames", k=3, n=16, window=16,
                                 backend="sim")
        # End-to-end losses (final-queue tombstones) obey the same bound
        # even though shedding is the *norm* for this app.
        assert result.drops <= EDGES * 3
        missing = [seq for seq in reference if seq not in result.outputs]
        assert all(seq % 4 != 0 for seq in missing)  # keyframes survive


class TestAutotunerActuation:
    def test_staleness_valves_are_tunable_entries(self):
        tuner = make_autotuner("accuracy_floor:target=0.9,window=8")
        pipeline = APPS["logagg"].pipeline(k=4, window=16)
        build = pipeline.build_window(0, make_log_items(16),
                                      pipeline._initial_states())
        tuner.attach_region(build.region)
        entries = tuner._regions[build.region.name].entries
        staleness = [entry for entry in entries
                     if isinstance(entry.valve, StalenessValve)]
        # One tunable staleness valve per stage's input queue.
        assert len(staleness) == len(pipeline.stages)

    def test_tightening_steers_the_queue_toward_fifo(self):
        tuner = make_autotuner("accuracy_floor:target=0.9,window=8")
        pipeline = APPS["logagg"].pipeline(k=4, window=16)
        build = pipeline.build_window(0, make_log_items(16),
                                      pipeline._initial_states())
        tuner.attach_region(build.region)
        queue = build.queues[0]
        assert queue.effective_bound() == 4
        entry = next(e for e in
                     tuner._regions[build.region.name].entries
                     if e.valve is queue.valve)
        entry.apply(1.0)   # full tighten: threshold -> expected, k -> 0
        assert queue.valve.k == 0
        assert queue.effective_bound() == 0
        entry.apply(0.0)   # back to the declared operating point
        assert queue.effective_bound() == 4

    def test_idle_autotuner_preserves_sim_outputs(self):
        app = APPS["logagg"]
        items = app.make_items(24)
        plain = app.pipeline(k=2, window=12).run(items, backend="sim")
        tuned = app.pipeline(
            k=2, window=12,
            autotune="accuracy_floor:target=0.5,window=10000",
        ).run(items, backend="sim")
        assert tuned.outputs == plain.outputs


class TestServiceStreaming:
    def test_run_service_matches_serial_at_k0(self):
        app = APPS["logagg"]
        items = app.make_items(24)
        pipeline = app.pipeline(k=0, window=12)
        reference = pipeline.run_serial(items)

        async def main():
            async with FluidService(slots=2) as service:
                return await pipeline.run_service(items, service)

        result = asyncio.run(main())
        assert result.outputs == reference
        assert result.delivered == 24
        assert result.end_verdicts and all(result.end_verdicts.values())

    def test_run_service_relaxed_window_reports_makespans(self):
        app = APPS["topk"]
        items = app.make_items(20)
        pipeline = app.pipeline(k=2, window=10)

        async def main():
            async with FluidService(slots=2) as service:
                return await pipeline.run_service(items, service,
                                                  latency_slo=60.0)

        result = asyncio.run(main())
        assert len(result.windows) == 2
        assert all(report.makespan > 0 for report in result.windows)
        missing = [seq for seq in range(20)
                   if seq not in result.outputs]
        assert len(missing) <= EDGES * 2
        assert all(seq % 5 != 0 for seq in missing)
