"""Integration tests for all eight applications.

Every app is checked for the same contract: the precise kernel is
correct against an independent reference; the fluid run completes and
its output approaches the precise output as the threshold approaches 1;
the protocol objects (AppRun, metrics) are well-formed.
"""

import numpy as np
import pytest

from repro.apps.base import DEFAULT_OVERHEADS, FluidApp
from repro.apps.bellman_ford import BellmanFordApp
from repro.apps.dct import DCTApp, dct2_blocks_reference
from repro.apps.edge_detection import (EdgeDetectionApp, GAUSSIAN,
                                       conv3x3_row)
from repro.apps.fft import FFTApp, bit_reverse_permutation
from repro.apps.graph_coloring import GraphColoringApp
from repro.apps.kmeans import KMeansApp
from repro.apps.medusadock import MedusaDockApp
from repro.apps.neural_network import NeuralNetworkApp
from repro.workloads import (random_graph, random_tensor, random_vector,
                             synthetic_digits, synthetic_image,
                             synthetic_poses)


def small_image():
    return synthetic_image(32, 32, noise=12.0, seed=1)


class TestEdgeDetection:
    def test_conv_row_matches_full_convolution(self):
        image = small_image()
        from scipy.ndimage import convolve
        full = convolve(image, GAUSSIAN, mode="nearest")
        row = conv3x3_row(image, 5, GAUSSIAN)
        assert np.allclose(row, full[5])

    def test_precise_and_fluid_agree_at_full_threshold(self):
        app = EdgeDetectionApp(small_image())
        precise = app.run_precise()
        fluid = app.run_fluid(threshold=1.0)
        assert np.allclose(fluid.output, precise.output)
        assert fluid.error == 0.0

    def test_all_filter_combinations_run(self):
        for noise_filter in ("gaussian", "mean"):
            for gradient in ("sobel", "laplacian"):
                app = EdgeDetectionApp(small_image(), noise_filter,
                                       gradient)
                result = app.run_fluid()
                assert result.makespan > 0

    def test_unknown_filters_rejected(self):
        with pytest.raises(ValueError):
            EdgeDetectionApp(small_image(), noise_filter="boxcar")
        with pytest.raises(ValueError):
            EdgeDetectionApp(small_image(), gradient="scharr")

    def test_fluid_is_faster_than_precise(self):
        app = EdgeDetectionApp(small_image())
        precise = app.run_precise()
        fluid = app.run_fluid()
        assert fluid.makespan < precise.makespan

    def test_multithreaded_baseline_beats_serial(self):
        app = EdgeDetectionApp(small_image())
        precise = app.run_precise()
        base = app.run_multithreaded_baseline(parallelism=4)
        assert base.makespan < precise.makespan


class TestKMeans:
    def make_app(self, **kwargs):
        kwargs.setdefault("num_clusters", 4)
        kwargs.setdefault("epochs", 4)
        return KMeansApp(synthetic_image(24, 24, diversity=4, seed=2),
                         **kwargs)

    def test_precise_objective_decreases_across_epochs(self):
        few = self.make_app(epochs=1)
        many = self.make_app(epochs=6)
        assert many.run_precise().metric <= few.run_precise().metric + 1e-9

    def test_fluid_objective_close_to_precise(self):
        app = self.make_app()
        precise = app.run_precise()
        fluid = app.run_fluid()
        assert fluid.error < 0.25

    def test_stability_valve_runs(self):
        app = self.make_app()
        result = app.run_fluid(valve="stability")
        assert result.makespan > 0

    def test_error_decreases_with_threshold(self):
        app = self.make_app(epochs=3)
        low = app.run_fluid(threshold=0.1)
        high = app.run_fluid(threshold=0.9)
        assert high.error <= low.error + 1e-9


class TestBellmanFord:
    def test_precise_converges_to_reference(self):
        graph = random_graph(300, 1500, seed=3)
        app = BellmanFordApp(graph, iterations=10)
        precise = app.run_precise()
        assert precise.metric == pytest.approx(0.0, abs=1e-9)

    def test_fluid_paths_nearly_exact(self):
        graph = random_graph(300, 1500, seed=3)
        app = BellmanFordApp(graph, iterations=10)
        fluid = app.run_fluid(threshold=0.3)
        assert fluid.error < 0.02

    def test_fluid_pipelines_iterations(self):
        graph = random_graph(300, 3000, seed=4)
        app = BellmanFordApp(graph, iterations=8)
        precise = app.run_precise()
        fluid = app.run_fluid(threshold=0.3)
        assert fluid.makespan < 0.7 * precise.makespan


class TestGraphColoring:
    def test_precise_coloring_proper(self):
        graph = random_graph(200, 1000, seed=5)
        app = GraphColoringApp(graph)
        precise = app.run_precise()
        assert app.conflicts(precise.output) == 0

    def test_fluid_coloring_proper(self):
        graph = random_graph(200, 1000, seed=5)
        app = GraphColoringApp(graph)
        fluid = app.run_fluid(threshold=0.4)
        assert app.conflicts(fluid.output) == 0
        assert (fluid.output >= 0).all()

    def test_fluid_faster_on_dense_graph(self):
        graph = random_graph(400, 6000, seed=6)
        app = GraphColoringApp(graph)
        precise = app.run_precise()
        fluid = app.run_fluid()
        assert fluid.makespan < precise.makespan


class TestFFT:
    def test_bit_reverse_is_involution(self):
        perm = bit_reverse_permutation(64)
        assert np.array_equal(perm[perm], np.arange(64))

    def test_precise_matches_numpy(self):
        app = FFTApp([random_vector(256, seed=7)])
        precise = app.run_precise()
        reference = app.reference_spectra()[0]
        assert np.allclose(precise.output[0], reference, atol=1e-6)

    def test_fluid_error_small_at_high_threshold(self):
        app = FFTApp([random_vector(256, seed=7)])
        fluid = app.run_fluid(threshold=0.9)
        assert fluid.error < 0.01

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FFTApp([np.zeros(100)])

    def test_batch_of_vectors(self):
        app = FFTApp([random_vector(128, seed=s) for s in range(3)])
        fluid = app.run_fluid(parallelism=3)
        assert len(fluid.output) == 3


class TestDCT:
    def test_precise_matches_reference(self):
        tensor = random_tensor(32, 32, seed=8)
        app = DCTApp(tensor)
        precise = app.run_precise()
        assert np.allclose(precise.output, dct2_blocks_reference(tensor),
                           atol=1e-9)

    def test_block_multiple_required(self):
        with pytest.raises(ValueError):
            DCTApp(np.zeros((30, 30)))

    def test_fluid_beats_precise(self):
        app = DCTApp(random_tensor(32, 32, seed=8))
        precise = app.run_precise()
        fluid = app.run_fluid()
        assert fluid.makespan < precise.makespan


class TestNeuralNetwork:
    def make_app(self, arch="lenet"):
        return NeuralNetworkApp(synthetic_digits(samples=128, seed=9),
                                architecture=arch, batch_size=128)

    def test_precise_accuracy_high(self):
        app = self.make_app()
        assert app.run_precise().metric > 0.95

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            self.make_app("resnet")

    def test_fluid_accuracy_matches_at_default(self):
        app = self.make_app()
        fluid = app.run_fluid()
        assert fluid.error < 0.05

    def test_squeezed_variant_cheaper(self):
        lenet = self.make_app("lenet").run_precise().makespan
        squeezed = self.make_app("squeezed").run_precise().makespan
        assert squeezed < 0.5 * lenet

    def test_fluid_faster(self):
        app = self.make_app()
        assert app.run_fluid().makespan < app.run_precise().makespan


class TestMedusaDock:
    def make_app(self, placement="early", proteins=4):
        dockings = [synthetic_poses(num_poses=64, seed=s,
                                    placement=placement, name=f"p{s}")
                    for s in range(proteins)]
        return MedusaDockApp(dockings, top_k=3)

    def test_precise_selects_planted_minimum(self):
        from repro.workloads.molecules import energy_reference
        app = self.make_app()
        precise = app.run_precise()
        for docking, selection in zip(app.dockings, precise.output):
            best = int(np.argmin(energy_reference(docking)))
            assert best in selection

    def test_fluid_skips_docking_tail(self):
        app = self.make_app()
        precise = app.run_precise()
        fluid = app.run_fluid()
        cancelled = sum(r.graph.task("medusa_dock").stats.cancelled_runs
                        for r in fluid.regions)
        assert cancelled > 0
        assert fluid.makespan < precise.makespan

    def test_convergence_valve_accurate_on_early_population(self):
        app = self.make_app(placement="early")
        fluid = app.run_fluid(valve="convergence")
        assert fluid.error <= 0.35

    def test_full_threshold_accurate(self):
        app = self.make_app()
        fluid = app.run_fluid(threshold=1.0)
        assert fluid.error == 0.0


class TestProtocol:
    def test_apprun_accuracy_property(self):
        app = EdgeDetectionApp(small_image())
        fluid = app.run_fluid()
        assert fluid.accuracy == pytest.approx(1.0 - fluid.error)

    def test_precise_is_cached(self):
        app = EdgeDetectionApp(small_image())
        assert app.run_precise() is app.run_precise()

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            FluidApp().build_regions(0.4, "percent", 1)

    def test_custom_overheads_respected(self):
        from repro import Overheads
        app = EdgeDetectionApp(small_image())
        lean = app.run_fluid(overheads=Overheads.zero())
        heavy = app.run_fluid(overheads=DEFAULT_OVERHEADS)
        assert lean.makespan <= heavy.makespan
