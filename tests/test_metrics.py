"""Tests for the error metrics of Section 7.1."""

import numpy as np
import pytest

from repro.metrics import (coloring_error, kmeans_objective,
                           normalized_accuracy, normalized_mse,
                           normalized_path_error, prediction_agreement,
                           psnr, topk_overlap)


class TestNormalizedAccuracy:
    def test_identical_is_zero(self):
        assert normalized_accuracy(5.0, 5.0) == 0.0

    def test_formula(self):
        assert normalized_accuracy(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_base(self):
        assert normalized_accuracy(0.5, 0.0) == pytest.approx(0.5)

    def test_symmetric_in_magnitude(self):
        assert normalized_accuracy(9.0, 10.0) == pytest.approx(0.1)


class TestKmeansObjective:
    def test_perfect_clustering_zero(self):
        pixels = np.array([[0.0], [0.0], [4.0]])
        centroids = np.array([[0.0], [4.0]])
        assignments = np.array([0, 0, 1])
        assert kmeans_objective(pixels, assignments, centroids) == 0.0

    def test_distance_sum(self):
        pixels = np.array([[1.0], [3.0]])
        centroids = np.array([[0.0]])
        assignments = np.array([0, 0])
        assert kmeans_objective(pixels, assignments, centroids) == \
            pytest.approx(1.0 + 9.0)


class TestPathError:
    def test_exact_paths(self):
        d = np.array([0.0, 2.0, 5.0])
        assert normalized_path_error(d, d) == 0.0

    def test_relative_error(self):
        reference = np.array([0.0, 2.0, 4.0])
        approx = np.array([0.0, 3.0, 4.0])
        assert normalized_path_error(approx, reference) == pytest.approx(0.25)

    def test_unreached_destination_penalized(self):
        reference = np.array([0.0, 2.0])
        approx = np.array([0.0, np.inf])
        assert normalized_path_error(approx, reference) > 1.0

    def test_no_reachable(self):
        assert normalized_path_error(np.array([0.0]), np.array([0.0])) == 0.0


class TestColoringError:
    def test_same_color_count(self):
        assert coloring_error(np.array([0, 1, 2]), np.array([2, 1, 0])) == 0.0

    def test_extra_color(self):
        assert coloring_error(np.array([0, 1, 2, 3]),
                              np.array([0, 1, 2, 2])) == pytest.approx(1 / 3)


class TestPsnr:
    def test_identical_images_infinite(self):
        image = np.ones((4, 4))
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_more_noise_lower_psnr(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0, 255, (16, 16))
        small = psnr(base + rng.normal(0, 1, base.shape), base)
        large = psnr(base + rng.normal(0, 10, base.shape), base)
        assert small > large


class TestNormalizedMse:
    def test_zero_for_identical(self):
        x = np.array([1.0, 2.0])
        assert normalized_mse(x, x) == 0.0

    def test_scale_invariant_normalization(self):
        reference = np.array([10.0, 10.0])
        off = reference * 1.1
        assert normalized_mse(off, reference) == pytest.approx(0.01)

    def test_complex_supported(self):
        reference = np.array([1 + 1j, 2 - 1j])
        assert normalized_mse(reference, reference) == 0.0


class TestAgreementAndOverlap:
    def test_full_agreement(self):
        assert prediction_agreement(np.array([1, 2]), np.array([1, 2])) == 1.0

    def test_partial_agreement(self):
        assert prediction_agreement(np.array([1, 2, 3, 4]),
                                    np.array([1, 2, 0, 0])) == 0.5

    def test_empty_agreement(self):
        assert prediction_agreement(np.array([]), np.array([])) == 1.0

    def test_topk_full_overlap(self):
        assert topk_overlap([1, 2, 3], [3, 2, 1]) == 1.0

    def test_topk_partial(self):
        assert topk_overlap([1, 2, 9], [1, 2, 3]) == pytest.approx(2 / 3)

    def test_topk_empty_reference(self):
        assert topk_overlap([1], []) == 1.0
