"""Tests for the automatic threshold tuner (Section 4.4)."""

import pytest

from repro.apps.graph_coloring import GraphColoringApp
from repro.apps.kmeans import KMeansApp
from repro.apps.medusadock import MedusaDockApp
from repro.tuning import ThresholdTuner, TuningResult, ValveSelector
from repro.workloads import random_graph, synthetic_image, synthetic_poses


def kmeans_app():
    return KMeansApp(synthetic_image(32, 32, diversity=5, seed=71),
                     num_clusters=4, epochs=4)


class TestValidation:
    def test_budget_bounds(self):
        with pytest.raises(ValueError):
            ThresholdTuner(error_budget=1.5)

    def test_resolution_positive(self):
        with pytest.raises(ValueError):
            ThresholdTuner(resolution=0.0)


class TestThresholdTuner:
    def test_probe_shape(self):
        tuner = ThresholdTuner()
        probe = tuner.probe(kmeans_app(), threshold=0.5)
        assert 0 < probe.normalized_latency < 2
        assert 0 <= probe.error <= 1

    def test_tuned_point_is_feasible(self):
        tuner = ThresholdTuner(error_budget=0.05, resolution=0.1)
        result = tuner.tune(kmeans_app())
        assert result.error <= 0.05 + 1e-9

    def test_tuned_point_is_cheaper_than_serialized(self):
        tuner = ThresholdTuner(error_budget=0.05, resolution=0.1)
        app = kmeans_app()
        result = tuner.tune(app)
        serialized = tuner.probe(app, threshold=1.0)
        assert result.normalized_latency <= \
            serialized.normalized_latency + 1e-9

    def test_loose_budget_returns_lowest_threshold(self):
        tuner = ThresholdTuner(error_budget=1.0, resolution=0.1)
        result = tuner.tune(kmeans_app())
        assert result.threshold == tuner.low

    def test_probes_recorded(self):
        tuner = ThresholdTuner(error_budget=0.05, resolution=0.2)
        result = tuner.tune(kmeans_app())
        assert result.num_probes == len(result.probes) >= 2

    def test_graph_coloring_tuning(self):
        app = GraphColoringApp(random_graph(600, 5000, seed=73,
                                            name="tune"))
        tuner = ThresholdTuner(error_budget=0.10, resolution=0.15)
        result = tuner.tune(app)
        assert result.error <= 0.10 + 1e-9
        assert result.threshold <= 1.0


class TestValveSelector:
    def test_selects_convergence_for_early_proteins(self):
        dockings = [synthetic_poses(num_poses=64, seed=s, placement="early",
                                    name=f"p{s}") for s in range(4)]
        app = MedusaDockApp(dockings)
        selector = ValveSelector(
            tuner=ThresholdTuner(error_budget=0.15, resolution=0.2),
            candidates=("percent", "convergence"))
        result = selector.select(app)
        assert isinstance(result, TuningResult)
        # On early-converging proteins the convergence valve dominates.
        assert result.valve == "convergence"

    def test_single_candidate(self):
        selector = ValveSelector(
            tuner=ThresholdTuner(error_budget=0.10, resolution=0.2),
            candidates=("percent",))
        result = selector.select(kmeans_app())
        assert result.valve == "percent"
