"""Tests for the automatic threshold tuner (Section 4.4).

``repro.tuning`` grew from a module into a package (offline tuner +
online autotuner + controllers); the offline API these tests exercise
must stay importable from the package root, and the old
``repro.tuning.legacy`` shim must keep working with a deprecation
warning.
"""

import importlib
import sys

import pytest

from repro.apps.graph_coloring import GraphColoringApp
from repro.apps.kmeans import KMeansApp
from repro.apps.medusadock import MedusaDockApp
from repro.tuning import ThresholdTuner, TuningResult, ValveSelector
from repro.workloads import random_graph, synthetic_image, synthetic_poses


def kmeans_app():
    return KMeansApp(synthetic_image(32, 32, diversity=5, seed=71),
                     num_clusters=4, epochs=4)


class TestPackageLayout:
    def test_offline_api_reexported_from_package_root(self):
        import repro.tuning as tuning
        import repro.tuning.offline as offline
        assert tuning.ThresholdTuner is offline.ThresholdTuner
        assert tuning.TuningResult is offline.TuningResult
        assert tuning.TuningProbe is offline.TuningProbe
        assert tuning.ValveSelector is offline.ValveSelector

    def test_package_root_exports_online_api_too(self):
        import repro.tuning as tuning
        for name in ("ValveAutotuner", "SLO", "make_autotuner",
                     "AimdController", "HysteresisController",
                     "make_controller", "TuningError"):
            assert hasattr(tuning, name), name
            assert name in tuning.__all__, name

    def test_legacy_shim_warns_and_reexports(self):
        sys.modules.pop("repro.tuning.legacy", None)
        with pytest.warns(DeprecationWarning,
                          match="repro.tuning.legacy is deprecated"):
            legacy = importlib.import_module("repro.tuning.legacy")
        assert legacy.ThresholdTuner is ThresholdTuner
        assert legacy.TuningResult is TuningResult
        assert legacy.ValveSelector is ValveSelector


class TestValidation:
    def test_budget_bounds(self):
        with pytest.raises(ValueError):
            ThresholdTuner(error_budget=1.5)

    def test_resolution_positive(self):
        with pytest.raises(ValueError):
            ThresholdTuner(resolution=0.0)


class TestThresholdTuner:
    def test_probe_shape(self):
        tuner = ThresholdTuner()
        probe = tuner.probe(kmeans_app(), threshold=0.5)
        assert 0 < probe.normalized_latency < 2
        assert 0 <= probe.error <= 1

    def test_tuned_point_is_feasible(self):
        tuner = ThresholdTuner(error_budget=0.05, resolution=0.1)
        result = tuner.tune(kmeans_app())
        assert result.error <= 0.05 + 1e-9

    def test_tuned_point_is_cheaper_than_serialized(self):
        tuner = ThresholdTuner(error_budget=0.05, resolution=0.1)
        app = kmeans_app()
        result = tuner.tune(app)
        serialized = tuner.probe(app, threshold=1.0)
        assert result.normalized_latency <= \
            serialized.normalized_latency + 1e-9

    def test_loose_budget_returns_lowest_threshold(self):
        tuner = ThresholdTuner(error_budget=1.0, resolution=0.1)
        result = tuner.tune(kmeans_app())
        assert result.threshold == tuner.low

    def test_probes_recorded(self):
        tuner = ThresholdTuner(error_budget=0.05, resolution=0.2)
        result = tuner.tune(kmeans_app())
        assert result.num_probes == len(result.probes) >= 2

    def test_graph_coloring_tuning(self):
        app = GraphColoringApp(random_graph(600, 5000, seed=73,
                                            name="tune"))
        tuner = ThresholdTuner(error_budget=0.10, resolution=0.15)
        result = tuner.tune(app)
        assert result.error <= 0.10 + 1e-9
        assert result.threshold <= 1.0


class TestValveSelector:
    def test_selects_convergence_for_early_proteins(self):
        dockings = [synthetic_poses(num_poses=64, seed=s, placement="early",
                                    name=f"p{s}") for s in range(4)]
        app = MedusaDockApp(dockings)
        selector = ValveSelector(
            tuner=ThresholdTuner(error_budget=0.15, resolution=0.2),
            candidates=("percent", "convergence"))
        result = selector.select(app)
        assert isinstance(result, TuningResult)
        # On early-converging proteins the convergence valve dominates.
        assert result.valve == "convergence"

    def test_single_candidate(self):
        selector = ValveSelector(
            tuner=ThresholdTuner(error_budget=0.10, resolution=0.2),
            candidates=("percent",))
        result = selector.select(kmeans_app())
        assert result.valve == "percent"
