"""Fuzzing the whole FluidPy pipeline: generate random chain programs,
translate them, execute them on the simulator, and check the output
against the directly computed expectation."""

from hypothesis import given, settings, strategies as st

from repro import SimExecutor, run_serial
from repro.lang import load_source


def chain_program(num_stages, increments, threshold, n):
    """Source text for a fluid class computing x -> x + sum(increments)."""
    lines = ['__fluid__', 'class Generated:']
    for stage in range(num_stages + 1):
        lines.append(f'    #pragma data {{int *d{stage};}}')
    for stage in range(num_stages):
        lines.append(f'    #pragma count {{int ct{stage};}}')
    for stage in range(1, num_stages):
        lines.append(f'    #pragma valve {{ValveCT v{stage};}}')
    lines += [
        '',
        '    def stage(self, ctx, source, target, count, delta):',
        '        values = source.read()',
        '        out = target.read()',
        '        for i in range(len(values)):',
        '            out[i] = values[i] + delta',
        '            target.touch()',
        '            count.add()',
        '            yield 1.0',
        '',
        '    def region(self):',
        f'        n = {n}',
        '        d0.init(list(range(n)))',
    ]
    for stage in range(1, num_stages + 1):
        lines.append(f'        d{stage}.init([0] * n)')
    for stage in range(num_stages):
        lines.append(f'        ct{stage}.init(0)')
    for stage in range(num_stages):
        guard_sv = '{}'
        if stage > 0:
            lines.append(
                f'        v{stage}.init(ct{stage - 1}, {threshold} * n)')
            guard_sv = f'{{v{stage}}}'
        lines.append(
            f'        #pragma task <<<t{stage}, {guard_sv}, {{}}, '
            f'{{d{stage}}}, {{d{stage + 1}}}>>> '
            f'stage(self.d{stage}, self.d{stage + 1}, ct{stage}, '
            f'{increments[stage]})')
    lines.append(f'        sync(t{num_stages - 1})')
    return '\n'.join(lines) + '\n'


@settings(max_examples=20, deadline=None)
@given(
    num_stages=st.integers(min_value=1, max_value=4),
    increments=st.lists(st.integers(min_value=-5, max_value=9),
                        min_size=4, max_size=4),
    threshold=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
    n=st.integers(min_value=2, max_value=12),
)
def test_random_chain_programs_compile_and_run(num_stages, increments,
                                               threshold, n):
    source = chain_program(num_stages, increments, threshold, n)
    namespace = load_source(source, "generated.fpy")
    region = namespace["Generated"]()
    executor = SimExecutor(cores=4)
    executor.submit(region)
    executor.run()
    assert region.complete
    total = sum(increments[:num_stages])
    # Terminal leaf has no end valves, so intermediate staleness could in
    # principle be accepted — but in the simulator each stage is exactly
    # as fast as its producer and starts at or behind it, so the chain's
    # final values are exact.
    assert region.output(f"d{num_stages}") == \
        [i + total for i in range(n)]


@settings(max_examples=10, deadline=None)
@given(
    num_stages=st.integers(min_value=1, max_value=3),
    increments=st.lists(st.integers(min_value=0, max_value=5),
                        min_size=4, max_size=4),
    n=st.integers(min_value=2, max_value=8),
)
def test_random_chain_serial_matches_fluid(num_stages, increments, n):
    source = chain_program(num_stages, increments, 0.5, n)
    namespace = load_source(source, "generated.fpy")
    fluid = namespace["Generated"]()
    executor = SimExecutor(cores=4)
    executor.submit(fluid)
    executor.run()
    serial = namespace["Generated"]()
    run_serial(serial)
    assert fluid.output(f"d{num_stages}") == \
        serial.output(f"d{num_stages}")
