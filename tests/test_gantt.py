"""Tests for the ASCII Gantt timeline recorder."""


from repro import SimExecutor
from repro.runtime.gantt import GLYPHS, TimelineRecorder

from util import make_pipeline


def record(region, cores=4):
    recorder = TimelineRecorder()
    recorder.attach(region)
    executor = SimExecutor(cores=cores)
    executor.submit(region)
    executor.run()
    return recorder


class TestTimelineRecorder:
    def test_records_every_task(self):
        region = make_pipeline(n=20, name="gantt")
        recorder = record(region)
        labels = [label for label, _ in recorder._tasks]
        assert labels == ["gantt/produce", "gantt/consume"]

    def test_span_matches_completion(self):
        region = make_pipeline(n=20, name="gantt2")
        recorder = record(region)
        assert recorder.span() > 0

    def test_render_contains_running_glyphs(self):
        region = make_pipeline(n=40, name="gantt3")
        recorder = record(region)
        text = recorder.render(width=60)
        assert "#" in text
        assert "legend" in text
        assert "gantt3/produce" in text

    def test_consumer_shows_valve_wait(self):
        region = make_pipeline(n=40, start_fraction=0.8, name="gantt4")
        recorder = record(region)
        text = recorder.render(width=120)
        consumer_row = [line for line in text.splitlines()
                        if "consume" in line][0]
        assert "=" in consumer_row    # waited for its start valve

    def test_reexecution_visible_as_run_count(self):
        region = make_pipeline(n=40, producer_cost=2.0, consumer_cost=0.1,
                               start_fraction=0.3, name="gantt5")
        recorder = record(region)
        assert recorder.runs_of("gantt5/consume") >= 2

    def test_row_width_respected(self):
        region = make_pipeline(n=10, name="gantt6")
        recorder = record(region)
        lines = recorder.render(width=40).splitlines()
        rows = [line for line in lines if "|" in line]
        for row in rows:
            start = row.index("|")
            assert row.rindex("|") - start - 1 == 40

    def test_all_states_have_glyphs(self):
        from repro.core.states import TaskState
        assert set(GLYPHS) == set(TaskState)

    def test_empty_recorder_renders(self):
        recorder = TimelineRecorder()
        assert "virtual time" in recorder.render()
