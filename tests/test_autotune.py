"""Closed-loop autotuner: controller conformance + tuner behaviour.

Three layers, matching docs/autotuning.md:

* **Controller conformance** (Hypothesis): the control-law contract —
  deadband errors map to zero steps, AIMD is monotone under sustained
  violation/margin, hysteresis never reverses inside its band, and the
  clamped position keeps every actuated valve attribute within its
  declared ``[lo, hi]`` bounds for *arbitrary* error streams.
* **Tuner unit behaviour**: SLO validation, spec parsing, untunable
  valves skipped, single-run bind, position inheritance on late
  attach, memo invalidation on actuation, ``tune.*`` metrics folding.
* **Sim integration**: a strict-quality K-means run where the
  ``accuracy_floor`` tuner must adjust at least once, hold the floor,
  and beat the static baseline it started from — the acceptance
  behaviour the bench sweep (``repro.bench.autotune_sweep``) gates on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kmeans import KMeansApp
from repro.core.count import Count
from repro.core.errors import TuningError
from repro.core.region import FluidRegion
from repro.core.valves import (ConvergenceValve, CountValve, PercentValve,
                               PredicateValve, StabilityValve)
from repro.telemetry import Telemetry
from repro.telemetry.bus import TelemetryBus, TelemetryEvent
from repro.telemetry.metrics import COUNTER_CATALOGUE, MetricsRegistry
from repro.tuning import (SLO, AimdController, HysteresisController,
                          ValveAutotuner, make_autotuner, make_controller)
from repro.tuning.autotune import _tuned_valve
from repro.workloads import synthetic_image

# ---------------------------------------------------------------------------
# strategies


def _clamp(value, lo, hi):
    return max(lo, min(hi, value))


errors_st = st.lists(
    st.floats(min_value=-1.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)

controller_st = st.sampled_from(["aimd", "hysteresis"])


# ---------------------------------------------------------------------------
# controller conformance (Hypothesis)


@settings(max_examples=60, deadline=None)
@given(errors=errors_st, name=controller_st,
       relax=st.booleans())
def test_position_and_thresholds_stay_in_bounds(errors, name, relax):
    """Arbitrary error streams never push an actuated valve outside
    its [lo, hi] bounds, in either the tighten or relax direction."""
    controller = make_controller(name)
    relax_floor = 0.1 if relax else None
    valve = PercentValve(Count("progress"), 0.4, 100.0, name="gate")
    tuned = _tuned_valve(valve, relax_floor)
    floor = -1.0 if relax else 0.0
    position = 0.0
    for error in errors:
        position = _clamp(position + controller.step(error, position),
                          floor, 1.0)
        tuned.apply(position)
        assert floor <= position <= 1.0
        assert tuned.lo - 1e-9 <= valve.threshold <= tuned.hi + 1e-9


@settings(max_examples=60, deadline=None)
@given(deadband=st.floats(min_value=0.01, max_value=0.2),
       name=controller_st,
       scales=st.lists(st.floats(min_value=-1.0, max_value=1.0,
                                 allow_nan=False), min_size=1, max_size=20))
def test_deadband_errors_never_step(deadband, name, scales):
    """Errors inside the deadband map to a zero step — the
    no-oscillation guarantee both laws must honour."""
    controller = make_controller(name, deadband=deadband)
    position = 0.0
    for scale in scales:
        error = scale * deadband        # |error| <= deadband by design
        assert controller.step(error, position) == 0.0


@settings(max_examples=60, deadline=None)
@given(errors=st.lists(st.floats(min_value=0.05, max_value=1.0,
                                 allow_nan=False),
                       min_size=1, max_size=30),
       backoff=st.floats(min_value=0.1, max_value=1.0))
def test_aimd_sustained_violation_is_monotone_tightening(errors, backoff):
    """All-fail feedback drives AIMD monotonically toward serialization
    (position nondecreasing, never past 1)."""
    controller = AimdController(backoff=backoff, deadband=0.02)
    position = 0.0
    for error in errors:
        step = controller.step(error, position)
        assert step >= 0.0
        new_position = _clamp(position + step, 0.0, 1.0)
        assert new_position >= position
        position = new_position
    assert position <= 1.0


@settings(max_examples=60, deadline=None)
@given(errors=st.lists(st.floats(min_value=-1.0, max_value=-0.05,
                                 allow_nan=False),
                       min_size=1, max_size=30),
       relax_step=st.floats(min_value=0.01, max_value=0.5))
def test_aimd_sustained_margin_relaxes_to_floor(errors, relax_step):
    """Pass-with-margin feedback relaxes additively and clamps at the
    floor instead of overshooting it."""
    controller = AimdController(relax_step=relax_step, deadband=0.02)
    floor = -1.0
    position = 0.0
    for error in errors:
        step = controller.step(error, position)
        assert step < 0.0
        new_position = _clamp(position + step, floor, 1.0)
        assert new_position <= position
        position = new_position
    assert position >= floor


@settings(max_examples=60, deadline=None)
@given(deadband=st.floats(min_value=0.02, max_value=0.1),
       reversal=st.floats(min_value=1.5, max_value=4.0),
       fraction=st.floats(min_value=1.01, max_value=1.49))
def test_hysteresis_holds_course_inside_reversal_band(deadband, reversal,
                                                      fraction):
    """After tightening, an opposing error inside the hysteresis band
    (deadband < |e| <= reversal * deadband) must not flip direction."""
    controller = HysteresisController(deadband=deadband, reversal=reversal)
    assert controller.step(reversal * deadband * 2.0, 0.0) > 0.0
    # fraction < 1.5 <= reversal, so the opposing error sits strictly
    # inside the hysteresis band: outside the deadband, but not loud
    # enough to justify a reversal.
    opposing = -fraction * deadband
    assert controller.step(opposing, 0.5) == 0.0


@settings(max_examples=60, deadline=None)
@given(error=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
       gain=st.floats(min_value=0.1, max_value=5.0),
       max_step=st.floats(min_value=0.05, max_value=0.5))
def test_hysteresis_step_clamped_to_max_step(error, gain, max_step):
    controller = HysteresisController(gain=gain, max_step=max_step)
    assert abs(controller.step(error, 0.0)) <= max_step + 1e-12


@settings(max_examples=50, deadline=None)
@given(verdicts=st.lists(st.booleans(), min_size=1, max_size=30))
def test_tuner_end_to_end_bounds_for_any_verdict_stream(verdicts):
    """Full tuner loop (bus -> window -> controller -> actuation): any
    end-valve verdict stream keeps thresholds in bounds and the
    decision log consistent with the counters."""
    bus = TelemetryBus()
    bus.bind_clock(lambda: 0.0, 1.0)
    tuner = ValveAutotuner(SLO.accuracy_floor(0.9), window=1,
                           relax_floor=0.1)
    region = _GateRegion()
    region.finalize()
    tuner.bind(bus)
    tuner.attach_region(region)
    gate = next(valve for valve in region.valves if valve.name == "gate")
    tuned = _tuned_valve(gate, 0.1)
    for verdict in verdicts:
        bus.emit("valve", region.name, "consumer", "end",
                 data={"result": verdict})
        assert -1.0 <= tuner.position <= 1.0
        assert tuned.lo - 1e-9 <= gate.threshold <= tuned.hi + 1e-9
    assert tuner.adjustments == len(tuner.decisions)
    assert tuner.adjustments == tuner.tightenings + tuner.relaxations
    assert tuner.windows == len(verdicts)   # window=1: every verdict decides


# ---------------------------------------------------------------------------
# tuner unit behaviour


class _GateRegion(FluidRegion):
    """producer bumps a count; consumer's start is gated on 40% of it."""

    def build(self):
        progress = self.add_count("progress")
        handoff = self.add_data("handoff")
        gate = PercentValve(progress, 0.4, 100.0, name="gate")

        def producer(ctx):
            progress.add(100)
            handoff.write(1)
            yield 1.0

        def consumer(ctx):
            yield 1.0

        self.add_task("producer", producer, outputs=[handoff])
        self.add_task("consumer", consumer, start_valves=[gate],
                      inputs=[handoff])


def test_slo_validation():
    with pytest.raises(TuningError):
        SLO("accuracy_floor", 0.0)
    with pytest.raises(TuningError):
        SLO("accuracy_floor", 1.5)
    with pytest.raises(TuningError):
        SLO("latency_ceiling", 0.0)
    with pytest.raises(TuningError):
        SLO("nonsense", 0.5)
    assert SLO.accuracy_floor().target == 0.9
    assert SLO.latency_ceiling(100.0).kind == "latency_ceiling"


def test_spec_parsing():
    assert make_autotuner(None) is None
    tuner = ValveAutotuner(SLO.accuracy_floor(0.8))
    assert make_autotuner(tuner) is tuner

    parsed = make_autotuner("accuracy_floor:target=0.85,window=4,"
                            "controller=hysteresis,gain=0.8,relax_floor=0.2")
    assert parsed.slo == SLO("accuracy_floor", 0.85)
    assert parsed.window == 4
    assert parsed.relax_floor == 0.2
    assert isinstance(parsed.controller, HysteresisController)
    assert parsed.controller.gain == 0.8

    default = make_autotuner("accuracy_floor")
    assert default.slo.target == 0.9
    assert isinstance(default.controller, AimdController)

    ceiling = make_autotuner("latency_ceiling:target=50000")
    assert ceiling.slo == SLO("latency_ceiling", 50000.0)


def test_spec_parsing_errors():
    with pytest.raises(TuningError):
        make_autotuner("nonsense:target=0.9")
    with pytest.raises(TuningError):
        make_autotuner("latency_ceiling")          # needs explicit target
    with pytest.raises(TuningError):
        make_autotuner("accuracy_floor:bogus_option=1")
    with pytest.raises(TuningError):
        make_autotuner("accuracy_floor:target")    # not key=value
    with pytest.raises(TuningError):
        make_autotuner("accuracy_floor:window=0")
    with pytest.raises(TuningError):
        make_autotuner("accuracy_floor:target=nope")
    with pytest.raises(TuningError):
        # aimd does not take hysteresis options.
        make_autotuner("accuracy_floor:gain=2.0")


def test_untunable_valves_are_skipped():
    # A plain CountValve defaults max_threshold == threshold: no headroom.
    plain = CountValve(Count("ack"), 1)
    assert _tuned_valve(plain, None) is None
    assert _tuned_valve(plain, 0.1) is None
    # Opaque predicate conditions are never actuated.
    assert _tuned_valve(PredicateValve(lambda: True), 0.1) is None
    # Percent/Convergence/Stability valves all expose headroom.
    assert _tuned_valve(PercentValve(Count("c"), 0.4, 100.0), None) is not None
    assert _tuned_valve(ConvergenceValve(Count("c"), window=4),
                        None) is not None
    assert _tuned_valve(StabilityValve(Count("c"), total=10.0, rounds=2),
                        None) is not None


def test_integral_attributes_round_and_floor_at_one():
    valve = ConvergenceValve(Count("c"), window=4)
    tuned = _tuned_valve(valve, relax_floor=0.01)
    tuned.apply(-1.0)
    assert isinstance(valve.window, int) and valve.window >= 1
    tuned.apply(1.0)
    assert valve.window == valve.max_window


def test_bind_is_single_run():
    tuner = ValveAutotuner(SLO.accuracy_floor(0.9))
    tuner.bind(TelemetryBus())
    with pytest.raises(TuningError):
        tuner.bind(TelemetryBus())


def test_late_attach_inherits_position_and_invalidates_memo():
    bus = TelemetryBus()
    bus.bind_clock(lambda: 0.0, 1.0)
    tuner = ValveAutotuner(SLO.accuracy_floor(0.9), window=1)
    first = _GateRegion()
    first.finalize()
    tuner.bind(bus)
    tuner.attach_region(first)
    gate = next(valve for valve in first.valves if valve.name == "gate")
    gate._memo = (("stale",), True)
    # One failed window tightens away from base...
    bus.emit("valve", first.name, "consumer", "end",
             data={"result": False})
    assert tuner.position > 0.0
    assert gate.threshold > gate.base_threshold
    assert gate._memo is None        # actuation dropped the memo
    # ...and a region attached afterwards starts at the tuned point.
    second = _GateRegion()
    second.finalize()
    tuner.attach_region(second)
    late_gate = next(valve for valve in second.valves
                     if valve.name == "gate")
    assert late_gate.threshold == pytest.approx(gate.threshold)


def test_events_from_unattached_regions_are_ignored():
    bus = TelemetryBus()
    bus.bind_clock(lambda: 0.0, 1.0)
    tuner = ValveAutotuner(SLO.accuracy_floor(0.9), window=1)
    tuner.bind(bus)
    bus.emit("valve", "someone_else", "t", "end", data={"result": False})
    assert tuner.windows == 0 and tuner.adjustments == 0


def test_tune_metrics_folding():
    for name in ("tune.adjustments", "tune.tightenings",
                 "tune.relaxations", "tune.windows"):
        assert name in COUNTER_CATALOGUE
    registry = MetricsRegistry()
    registry.on_event(TelemetryEvent(
        0.0, "tune", "r", "", "adjust",
        {"before": 0.0, "after": 0.5}))
    registry.on_event(TelemetryEvent(
        1.0, "tune", "r", "", "adjust",
        {"before": 0.5, "after": 0.45}))
    assert registry.counters["tune.adjustments"] == 2
    assert registry.counters["tune.tightenings"] == 1
    assert registry.counters["tune.relaxations"] == 1
    assert registry.gauges["tune.position"] == 0.45
    # The end-of-run snapshot fold adds windows without double-counting
    # the live adjust events.
    registry.record_autotuner({"windows": 3, "position": 0.45})
    assert registry.counters["tune.windows"] == 3
    assert registry.counters["tune.adjustments"] == 2


# ---------------------------------------------------------------------------
# sim integration


def _strict_kmeans():
    return KMeansApp(synthetic_image(40, 40, diversity=6, seed=83),
                     num_clusters=5, epochs=5, quality_fraction=1.0)


def test_accuracy_floor_tuner_beats_static_on_strict_kmeans():
    """The acceptance behaviour: on strict-quality K-means the tuner
    adjusts at least once, holds the 0.9 floor, and reduces makespan
    versus the static aggressive baseline."""
    static = _strict_kmeans().run_fluid(threshold=0.2)
    app = _strict_kmeans()
    tuner = make_autotuner("accuracy_floor:target=0.9,window=1")
    telemetry = Telemetry(chrome=False)
    tuned = app.run_fluid(threshold=0.2, autotune=tuner,
                          telemetry=telemetry)
    assert tuner.adjustments >= 1
    assert tuner.windows >= 1
    assert tuned.accuracy >= 0.9
    assert tuned.makespan < static.makespan
    # tune.* events flowed through the live metrics...
    assert telemetry.metrics.counters["tune.adjustments"] >= 1
    assert telemetry.metrics.counters["tune.windows"] >= tuner.windows
    # ...and the decision log matches the counters.
    assert len(tuner.decisions) == tuner.adjustments


def test_autotune_spec_string_builds_fresh_tuner_per_run():
    app = _strict_kmeans()
    first = app.run_fluid(threshold=0.2,
                          autotune="accuracy_floor:target=0.9,window=1")
    second = app.run_fluid(threshold=0.2,
                           autotune="accuracy_floor:target=0.9,window=1")
    assert first.makespan == second.makespan    # sim: fully deterministic


def test_autotuner_instance_is_single_run_through_run_fluid():
    tuner = make_autotuner("accuracy_floor:target=0.9,window=1")
    app = _strict_kmeans()
    app.run_fluid(threshold=0.2, autotune=tuner)
    with pytest.raises(TuningError):
        app.run_fluid(threshold=0.2, autotune=tuner)


def test_idle_tuner_is_makespan_neutral():
    """With a lenient quality bar nothing fails, the default window
    never fills, and the tuned run's makespan is bit-identical."""
    def lenient():
        return KMeansApp(synthetic_image(40, 40, diversity=6, seed=83),
                         num_clusters=5, epochs=5, quality_fraction=0.4)

    static = lenient().run_fluid(threshold=0.2)
    tuner = make_autotuner("accuracy_floor:target=0.9")     # window=8
    tuned = lenient().run_fluid(threshold=0.2, autotune=tuner)
    assert tuner.adjustments == 0
    assert tuned.makespan == static.makespan
