"""Scheduler x backend parity matrix.

Every repro.sched discipline must preserve Fluid's correctness contract
on every backend: regions complete and exact-quality outputs match the
precise answer — a scheduler may reorder work, never change results.

CI's scheduler-matrix job slices this file one (scheduler, backend)
cell at a time via the ``REPRO_SCHEDULER`` / ``REPRO_BACKEND`` env vars
(comma-separated lists); locally, with neither set, the full default
matrix runs.
"""

import os

import pytest

from repro.runtime.executor import make_executor
from repro.runtime.simulator import SimExecutor
from util import (chain_expected, diamond_expected, make_chain,
                  make_diamond, make_pipeline, pipeline_expected)

SCHEDULERS = [token.strip() for token in os.environ.get(
    "REPRO_SCHEDULER", "fcfs,priority,edf,work-stealing").split(",")
    if token.strip()]
BACKENDS = [token.strip() for token in os.environ.get(
    "REPRO_BACKEND", "sim,thread,process").split(",") if token.strip()]


def build_executor(backend, scheduler):
    if backend == "sim":
        return SimExecutor(cores=4, scheduler=scheduler)
    if backend == "thread":
        return make_executor("thread", timeout=30, scheduler=scheduler)
    return make_executor("process", workers=2, timeout=60,
                         scheduler=scheduler)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestSchedulerMatrix:
    def test_pipeline_output(self, scheduler, backend):
        region = make_pipeline(n=30, exact_quality=True)
        executor = build_executor(backend, scheduler)
        executor.submit(region)
        executor.run()
        assert region.complete
        assert region.output("out") == pipeline_expected(30)

    def test_diamond_output(self, scheduler, backend):
        region = make_diamond(n=20, exact_quality=True)
        executor = build_executor(backend, scheduler)
        executor.submit(region)
        executor.run()
        assert region.complete
        assert region.output("out") == diamond_expected(20)

    def test_chain_output(self, scheduler, backend):
        region = make_chain(depth=3, n=16)
        executor = build_executor(backend, scheduler)
        executor.submit(region)
        executor.run()
        assert region.complete
        assert region.output("a2") == chain_expected(3, 16)

    def test_scheduler_never_sheds_runtime_tasks(self, scheduler, backend):
        """Executor submissions are not sheddable: even a tiny bounded
        queue may only defer them, so the region still completes."""
        bounded = f"bounded:capacity=1,inner={scheduler}"
        region = make_pipeline(n=20, exact_quality=True)
        executor = build_executor(backend, bounded)
        executor.submit(region)
        executor.run()
        assert region.complete
        assert region.output("out") == pipeline_expected(20)
        assert executor.scheduler.counters()["sheds"] == 0
