"""Golden-file test for the FluidPy code generator.

Pins the exact output of translating the bundled edge-detection source
(the paper's Figure 3 -> Figure 4 mapping).  If a codegen change is
intentional, regenerate with::

    python -c "from repro.lang import translate_file; \
        open('tests/golden/edge_detection_generated.py','w').write( \
        translate_file('src/repro/apps/fluidsrc/edge_detection.fpy').python_source)"
"""

import os

from repro.lang import translate_file

HERE = os.path.dirname(__file__)
SOURCE = os.path.join(HERE, os.pardir, "src", "repro", "apps", "fluidsrc",
                      "edge_detection.fpy")
GOLDEN = os.path.join(HERE, "golden", "edge_detection_generated.py")


def test_codegen_matches_golden():
    generated = translate_file(SOURCE).python_source
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        expected = handle.read()
    assert generated == expected


def test_golden_is_executable_python():
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        compile(handle.read(), GOLDEN, "exec")


def test_golden_contains_figure4_landmarks():
    """The generated code shows the same structure as the paper's
    Figure 4: unwrapped declarations, bind+newTask pairs, elided sync."""
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert "self.add_array('d1')" in text           # Fig. 4 lines 3-5
    assert "self.add_count('ct')" in text           # Fig. 4 line 6
    assert "declare_valve('ValveCT', 'v1')" in text  # Fig. 4 lines 7-8
    assert "bind_task(self.gaussian" in text        # Fig. 4 line 20
    assert "self.add_task(" in text                 # Fig. 4 line 22
    assert "barriers are provided by the executor" in text  # sync elision
