"""Unit tests for FluidPy semantic analysis."""

import textwrap

from repro.lang.parser import parse_source
from repro.lang.semantics import analyze_class


def analyze(source):
    unit, sink = parse_source(textwrap.dedent(source), "sem.fpy")
    for fluid_class in unit.classes:
        analyze_class(fluid_class, sink)
    return sink


VALID = '''
__fluid__
class Good:
    #pragma data {int *a;}
    #pragma data {int *b;}
    #pragma count {int ct;}
    #pragma valve {ValveCT v;}

    def produce(self, ctx, ct):
        for i in range(4):
            self.b[i] = self.a[i]
            ct.add()
            yield 1.0

    def consume(self, ctx):
        yield 1.0

    def region(self):
        a.init([1, 2, 3, 4])
        #pragma task <<<t1, {}, {}, {a}, {b}>>> produce(ct)
        v.init(ct, 2)
'''


class TestValidPrograms:
    def test_valid_program_clean(self):
        sink = analyze(VALID)
        assert not sink.errors


class TestMemberRules:
    def test_no_data_members(self):
        sink = analyze('''
            __fluid__
            class NoData:
                #pragma count {int ct;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    pass
        ''')
        assert any("no fluid data" in str(d) for d in sink.errors)

    def test_duplicate_member_names(self):
        sink = analyze('''
            __fluid__
            class Dup:
                #pragma data {int *x;}
                #pragma count {int x;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {x}, {x}>>> work()
                    pass
        ''')
        assert any("duplicate fluid member" in str(d) for d in sink.errors)

    def test_unknown_valve_type(self):
        sink = analyze('''
            __fluid__
            class BadValve:
                #pragma data {int *x;}
                #pragma valve {ValveMystery v;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> work()
                    pass
        ''')
        assert any("unknown valve type" in str(d) for d in sink.errors)

    def test_member_method_collision(self):
        sink = analyze('''
            __fluid__
            class Clash:
                #pragma data {int *work;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {work}>>> work()
                    pass
        ''')
        assert any("collides" in str(d) for d in sink.errors)


class TestTaskRules:
    def test_no_tasks(self):
        sink = analyze('''
            __fluid__
            class Empty:
                #pragma data {int *x;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    pass
        ''')
        assert any("schedules no tasks" in str(d) for d in sink.errors)

    def test_undeclared_valve_reference(self):
        sink = analyze('''
            __fluid__
            class Missing:
                #pragma data {int *x;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {ghost}, {}, {}, {x}>>> work()
                    pass
        ''')
        assert any("undeclared valve" in str(d) for d in sink.errors)

    def test_undeclared_data_reference(self):
        sink = analyze('''
            __fluid__
            class Missing:
                #pragma data {int *x;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {ghost}, {x}>>> work()
                    pass
        ''')
        assert any("undeclared data" in str(d) for d in sink.errors)

    def test_unknown_method(self):
        sink = analyze('''
            __fluid__
            class NoMethod:
                #pragma data {int *x;}
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> missing()
                    pass
        ''')
        assert any("not a method" in str(d) for d in sink.errors)

    def test_non_generator_method(self):
        sink = analyze('''
            __fluid__
            class NotGen:
                #pragma data {int *x;}
                def work(self, ctx):
                    return 42
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> work()
                    pass
        ''')
        assert any("must be a generator" in str(d) for d in sink.errors)

    def test_wrong_signature(self):
        sink = analyze('''
            __fluid__
            class BadSig:
                #pragma data {int *x;}
                def work(self):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> work()
                    pass
        ''')
        assert any("(self, ctx" in str(d) for d in sink.errors)

    def test_duplicate_task_names(self):
        sink = analyze('''
            __fluid__
            class DupTask:
                #pragma data {int *x;}
                #pragma data {int *y;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> work()
                    #pragma task <<<t, {}, {}, {x}, {y}>>> work()
                    pass
        ''')
        assert any("duplicate task name" in str(d) for d in sink.errors)


class TestGraphRules:
    def test_two_roots(self):
        sink = analyze('''
            __fluid__
            class TwoRoots:
                #pragma data {int *a;}
                #pragma data {int *b;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t1, {}, {}, {}, {a}>>> work()
                    #pragma task <<<t2, {}, {}, {}, {b}>>> work()
                    pass
        ''')
        assert any("root" in str(d) for d in sink.errors)

    def test_two_producers(self):
        sink = analyze('''
            __fluid__
            class TwoProducers:
                #pragma data {int *a;}
                #pragma data {int *b;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t1, {}, {}, {}, {a}>>> work()
                    #pragma task <<<t2, {}, {}, {a}, {b}>>> work()
                    #pragma task <<<t3, {}, {}, {a}, {b}>>> work()
                    pass
        ''')
        assert any("produced by both" in str(d) for d in sink.errors)

    def test_end_valve_on_interior(self):
        sink = analyze('''
            __fluid__
            class InteriorQuality:
                #pragma data {int *a;}
                #pragma data {int *b;}
                #pragma count {int ct;}
                #pragma valve {ValveCT q;}
                def work(self, ctx):
                    ct = self.ct
                    yield 1.0
                def region(self):
                    q.init(ct, 1)
                    #pragma task <<<t1, {}, {q}, {}, {a}>>> work()
                    #pragma task <<<t2, {}, {}, {a}, {b}>>> work()
                    pass
        ''')
        assert any("not a leaf" in str(d) for d in sink.errors)

    def test_cycle_detected(self):
        sink = analyze('''
            __fluid__
            class Cycle:
                #pragma data {int *a;}
                #pragma data {int *b;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t1, {}, {}, {b}, {a}>>> work()
                    #pragma task <<<t2, {}, {}, {a}, {b}>>> work()
                    pass
        ''')
        assert any("cyclic" in str(d) or "root" in str(d)
                   for d in sink.errors)


class TestWarnings:
    def test_unused_valve_warns(self):
        sink = analyze('''
            __fluid__
            class UnusedValve:
                #pragma data {int *x;}
                #pragma valve {ValveCT v;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> work()
                    pass
        ''')
        assert any("never attached" in str(d) for d in sink.warnings)

    def test_unused_count_warns(self):
        sink = analyze('''
            __fluid__
            class UnusedCount:
                #pragma data {int *x;}
                #pragma count {int ct;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> work()
                    pass
        ''')
        assert any("never read" in str(d) for d in sink.warnings)


class TestArgumentExpressions:
    def test_bad_task_call_args_rejected(self):
        sink = analyze('''
            __fluid__
            class BadArgs:
                #pragma data {int *x;}
                def work(self, ctx, a):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> work(1,,)
                    pass
        ''')
        assert any("not a valid Python" in str(d) for d in sink.errors)

    def test_bad_valve_args_rejected(self):
        sink = analyze('''
            __fluid__
            class BadValve:
                #pragma data {int *x;}
                #pragma valve {ValveCT v(ct, *);}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> work()
                    pass
        ''')
        assert any("not a valid Python" in str(d) for d in sink.errors)

    def test_complex_valid_args_accepted(self):
        sink = analyze('''
            __fluid__
            class GoodArgs:
                #pragma data {int *x;}
                def work(self, ctx, a, b):
                    yield 1.0
                def region(self):
                    #pragma task <<<t, {}, {}, {}, {x}>>> work(self.f(1) * 2, [i for i in range(3)])
                    pass
        ''')
        assert not any("not a valid Python" in str(d) for d in sink.errors)
