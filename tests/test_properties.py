"""Property-based tests (hypothesis) for core invariants.

The central theorems of the reproduction:

1. *Termination*: any well-formed Fluid region — random DAG topology,
   random costs, random start thresholds, even with exact-equality
   quality functions — terminates; the worst case degenerates to precise
   execution (Section 6.1).
2. *Precise equivalence*: when quality demands the exact answer, the
   fluid output equals the serial (original-program) output.
3. *Valve monotonicity*: a CountValve over a monotonically increasing
   count never flips from satisfied back to unsatisfied.
4. *Determinism*: the simulator is a pure function of its inputs.
"""

import math

from hypothesis import given, settings, strategies as st

from repro import (FluidRegion, PercentValve, PredicateValve, SimExecutor, TaskState, run_serial)
from repro.core.count import Count
from repro.core.valves import CountValve
from repro.runtime.events import EventQueue


# --------------------------------------------------------------------------
# Random layered-DAG regions
# --------------------------------------------------------------------------

@st.composite
def dag_specs(draw):
    """A layered DAG: layer 0 is the single root; every later node picks
    at least one parent from the previous layers."""
    rng = draw(st.randoms(use_true_random=False))
    layers = draw(st.integers(min_value=1, max_value=4))
    spec = [[0]]  # layer -> list of node ids; node 0 is the root
    next_id = 1
    nodes = [()]  # node -> tuple of parent ids
    for _layer in range(1, layers):
        width = draw(st.integers(min_value=1, max_value=3))
        layer_nodes = []
        for _ in range(width):
            candidates = list(range(next_id))
            k = rng.randint(1, min(2, len(candidates)))
            parents = tuple(sorted(rng.sample(candidates, k)))
            nodes.append(parents)
            layer_nodes.append(next_id)
            next_id += 1
        spec.append(layer_nodes)
    costs = [draw(st.sampled_from([0.25, 0.5, 1.0, 2.0]))
             for _ in range(len(nodes))]
    fraction = draw(st.sampled_from([0.0, 0.25, 0.5, 0.9, 1.0]))
    return nodes, costs, fraction


def reference_values(nodes, n):
    """Precise per-node outputs: root echoes input+1, others sum parents+1."""
    values = []
    src = list(range(n))
    for node, parents in enumerate(nodes):
        if not parents:
            values.append([x + 1 for x in src])
        else:
            values.append([sum(values[p][i] for p in parents) + 1
                           for i in range(n)])
    return values


def build_dag_region(nodes, costs, fraction, n=12):
    expected = reference_values(nodes, n)
    children = [[] for _ in nodes]
    for node, parents in enumerate(nodes):
        for p in parents:
            children[p].append(node)

    class RandomDag(FluidRegion):
        def build(self):
            src = self.input_data("src", list(range(n)))
            arrays = [self.add_array(f"d{k}", [0] * n)
                      for k in range(len(nodes))]
            counts = [self.add_count(f"ct{k}") for k in range(len(nodes))]

            def body_for(node):
                parents = nodes[node]

                def body(ctx):
                    for i in range(n):
                        if not parents:
                            arrays[node][i] = src.read()[i] + 1
                        else:
                            arrays[node][i] = sum(
                                arrays[p][i] for p in parents) + 1
                        counts[node].add()
                        yield costs[node]
                return body

            for node, parents in enumerate(nodes):
                start = [PercentValve(counts[p], fraction, n)
                         for p in parents]
                end = []
                if not children[node]:  # leaf: demand the exact answer
                    target = arrays[node]
                    want = expected[node]
                    end = [PredicateValve(
                        lambda target=target, want=want: list(target.read()) == want,
                        name="exact")]
                self.add_task(f"t{node}", body_for(node), start_valves=start,
                              end_valves=end,
                              inputs=[src] if not parents else
                                     [arrays[p] for p in parents],
                              outputs=[arrays[node]])

    return RandomDag(), expected


@settings(max_examples=40, deadline=None)
@given(dag_specs(), st.integers(min_value=1, max_value=6))
def test_random_dags_terminate_with_precise_output(spec, cores):
    nodes, costs, fraction = spec
    region, expected = build_dag_region(nodes, costs, fraction)
    executor = SimExecutor(cores=cores)
    executor.submit(region)
    executor.run()  # must not deadlock or raise
    assert region.complete
    for node in range(len(nodes)):
        if not any(node in parents for parents in nodes):
            pass  # interior outputs may legitimately stay partial snapshots
    # Every leaf demanded exactness, so leaf outputs match the reference.
    children = [[] for _ in nodes]
    for node, parents in enumerate(nodes):
        for p in parents:
            children[p].append(node)
    for node, kids in enumerate(children):
        if not kids:
            assert list(region.datas[f"d{node}"].read()) == expected[node]


@settings(max_examples=25, deadline=None)
@given(dag_specs())
def test_fluid_leaves_match_serial_run(spec):
    nodes, costs, fraction = spec
    fluid, _ = build_dag_region(nodes, costs, fraction)
    serial, _ = build_dag_region(nodes, costs, fraction)
    executor = SimExecutor(cores=4)
    executor.submit(fluid)
    executor.run()
    run_serial(serial)
    children = [[] for _ in nodes]
    for node, parents in enumerate(nodes):
        for p in parents:
            children[p].append(node)
    for node, kids in enumerate(children):
        if not kids:
            assert list(fluid.datas[f"d{node}"].read()) == \
                list(serial.datas[f"d{node}"].read())


@settings(max_examples=30, deadline=None)
@given(dag_specs(), st.integers(min_value=1, max_value=4))
def test_simulator_is_deterministic(spec, cores):
    nodes, costs, fraction = spec

    def run_once():
        region, _ = build_dag_region(nodes, costs, fraction)
        executor = SimExecutor(cores=cores)
        executor.submit(region)
        result = executor.run()
        runs = tuple(task.stats.runs for task in region.tasks)
        return result.makespan, runs

    assert run_once() == run_once()


@settings(max_examples=40, deadline=None)
@given(dag_specs())
def test_all_tasks_reach_complete(spec):
    nodes, costs, fraction = spec
    region, _ = build_dag_region(nodes, costs, fraction)
    executor = SimExecutor(cores=3)
    executor.submit(region)
    executor.run()
    assert all(task.state is TaskState.COMPLETE for task in region.tasks)


# --------------------------------------------------------------------------
# Valve monotonicity
# --------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                max_size=30),
       st.integers(min_value=0, max_value=50))
def test_count_valve_monotone(increments, threshold):
    count = Count("ct")
    valve = CountValve(count, threshold=threshold)
    history = []
    for delta in increments:
        count.add(delta)
        history.append(valve.check())
    assert history == sorted(history)  # False* then True*


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0),
       st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=10))
def test_tighten_never_loosens(base_fraction, tightenings):
    valve = PercentValve(Count("ct"), fraction=base_fraction, total=100.0)
    previous = valve.threshold
    for fraction in tightenings:
        valve.tighten(fraction)
        assert valve.threshold >= previous - 1e-12
        assert valve.threshold <= valve.max_threshold + 1e-9
        previous = valve.threshold


# --------------------------------------------------------------------------
# Event queue ordering
# --------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_event_queue_pops_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop()[0])
    assert popped == sorted(popped)
    assert not math.isnan(popped[0])
