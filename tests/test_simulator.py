"""Tests for the discrete-event simulator backend."""

import pytest

from repro import (FluidRegion, Overheads, SchedulerError, SimExecutor,
                   TaskState, run_serial, submit_all, submit_chain,
                   submit_stages)

from util import make_pipeline


def fresh_executor(**kwargs):
    kwargs.setdefault("cores", 4)
    return SimExecutor(**kwargs)


class TestBasics:
    def test_fluid_output_matches_serial(self):
        fluid = make_pipeline(n=20)
        serial = make_pipeline(n=20)
        executor = fresh_executor()
        executor.submit(fluid)
        executor.run()
        run_serial(serial)
        assert fluid.output("out") == serial.output("out")

    def test_overlap_beats_serial(self):
        serial_result = run_serial(make_pipeline(n=100))
        executor = fresh_executor(overheads=Overheads.zero())
        fluid = make_pipeline(n=100, start_fraction=0.2)
        executor.submit(fluid)
        fluid_result = executor.run()
        assert fluid_result.makespan < serial_result.makespan

    def test_full_threshold_is_serial_plus_overhead(self):
        serial_result = run_serial(make_pipeline(n=50))
        executor = fresh_executor()
        fluid = make_pipeline(n=50, start_fraction=1.0)
        executor.submit(fluid)
        fluid_result = executor.run()
        assert fluid_result.makespan >= serial_result.makespan

    def test_zero_overheads_full_threshold_equals_serial(self):
        serial_result = run_serial(make_pipeline(n=50))
        executor = fresh_executor(overheads=Overheads.zero())
        fluid = make_pipeline(n=50, start_fraction=1.0)
        executor.submit(fluid)
        fluid_result = executor.run()
        assert fluid_result.makespan == pytest.approx(serial_result.makespan)

    def test_determinism(self):
        def once():
            executor = fresh_executor()
            region = make_pipeline(n=40, producer_cost=2.0,
                                   consumer_cost=0.3, start_fraction=0.3)
            executor.submit(region)
            result = executor.run()
            return (result.makespan,
                    region.graph.task("consume").stats.runs,
                    tuple(region.output("out")))

        assert once() == once()

    def test_single_shot(self):
        executor = fresh_executor()
        executor.submit(make_pipeline(n=5))
        executor.run()
        with pytest.raises(SchedulerError):
            executor.run()

    def test_requires_positive_cores(self):
        with pytest.raises(SchedulerError):
            SimExecutor(cores=0)

    def test_negative_cost_rejected(self):
        class Bad(FluidRegion):
            def build(self):
                def body(ctx):
                    yield -1.0
                self.add_task("bad", body)

        executor = fresh_executor()
        executor.submit(Bad("bad"))
        with pytest.raises(SchedulerError, match="negative"):
            executor.run()

    def test_non_generator_body_rejected(self):
        class Bad(FluidRegion):
            def build(self):
                self.add_task("bad", lambda ctx: 42)

        executor = fresh_executor()
        executor.submit(Bad("bad2"))
        with pytest.raises(Exception, match="generator"):
            executor.run()


class TestCoreContention:
    def test_one_core_serializes(self):
        # With a single core there is no overlap to exploit.
        serial_result = run_serial(make_pipeline(n=60))
        executor = SimExecutor(cores=1, overheads=Overheads.zero())
        fluid = make_pipeline(n=60, start_fraction=0.2)
        executor.submit(fluid)
        result = executor.run()
        assert result.makespan >= serial_result.makespan * 0.99

    def test_more_cores_never_slower(self):
        def run_with(cores):
            executor = SimExecutor(cores=cores, overheads=Overheads.zero())
            submit_all(executor, [make_pipeline(n=40, start_fraction=0.2)
                                  for _ in range(4)])
            return executor.run().makespan

        assert run_with(8) <= run_with(2) <= run_with(1)


class TestRegionScheduling:
    def test_submit_chain_serializes_regions(self):
        executor = fresh_executor(overheads=Overheads.zero())
        regions = [make_pipeline(n=20, name=f"r{i}") for i in range(3)]
        submit_chain(executor, regions)
        result = executor.run()
        solo = SimExecutor(cores=4, overheads=Overheads.zero())
        solo.submit(make_pipeline(n=20))
        solo_span = solo.run().makespan
        assert result.makespan == pytest.approx(3 * solo_span, rel=0.01)

    def test_submit_all_overlaps_regions(self):
        chain_executor = fresh_executor(overheads=Overheads.zero())
        submit_chain(chain_executor,
                     [make_pipeline(n=20, name=f"c{i}") for i in range(3)])
        chained = chain_executor.run().makespan

        par_executor = SimExecutor(cores=16, overheads=Overheads.zero())
        submit_all(par_executor,
                   [make_pipeline(n=20, name=f"p{i}") for i in range(3)])
        parallel = par_executor.run().makespan
        assert parallel < chained

    def test_submit_stages_barrier(self):
        executor = SimExecutor(cores=16, overheads=Overheads.zero(),
                               trace=True)
        stage1 = [make_pipeline(n=10, name="s1a"),
                  make_pipeline(n=10, name="s1b")]
        stage2 = [make_pipeline(n=10, name="s2a")]
        submit_stages(executor, [stage1, stage2])
        result = executor.run()
        launches = {e.region: e.time for e in result.trace.events
                    if e.event == "launch"}
        dones = {e.region: e.time for e in result.trace.events
                 if e.event == "region-done"}
        assert launches["s2a"] >= max(dones["s1a"], dones["s1b"])

    def test_unsubmitted_dependency_rejected(self):
        executor = fresh_executor()
        ghost = make_pipeline(n=5, name="ghost")
        executor.submit(make_pipeline(n=5), after=[ghost])
        with pytest.raises(SchedulerError, match="never submitted"):
            executor.run()

    def test_fcfs_order_in_trace(self):
        executor = SimExecutor(cores=2, max_active_regions=1, trace=True)
        regions = [make_pipeline(n=5, name=f"r{i}") for i in range(3)]
        submit_all(executor, regions)
        result = executor.run()
        launches = [e.region for e in result.trace.events
                    if e.event == "launch"]
        assert launches == ["r0", "r1", "r2"]


class TestOverheadAccounting:
    def test_overhead_time_positive_with_default_overheads(self):
        executor = fresh_executor()
        region = make_pipeline(n=10)
        executor.submit(region)
        result = executor.run()
        assert result.overhead_time > 0
        assert region.stats.overhead_time > 0

    def test_zero_overheads_accounting(self):
        executor = fresh_executor(overheads=Overheads.zero())
        region = make_pipeline(n=10)
        executor.submit(region)
        result = executor.run()
        assert result.overhead_time == 0

    def test_makespan_recorded_per_region(self):
        executor = fresh_executor()
        region = make_pipeline(n=10)
        executor.submit(region)
        result = executor.run()
        assert 0 < region.stats.makespan <= result.makespan


class TestTrace:
    def test_trace_records_runs(self):
        executor = fresh_executor(trace=True)
        region = make_pipeline(n=10)
        executor.submit(region)
        result = executor.run()
        assert result.trace.count("run", "produce") == 1
        assert result.trace.count("launch") == 1

    def test_trace_disabled_by_default(self):
        executor = fresh_executor()
        executor.submit(make_pipeline(n=5))
        assert executor.run().trace is None

    def test_trace_render(self):
        executor = fresh_executor(trace=True)
        executor.submit(make_pipeline(n=5))
        result = executor.run()
        text = result.trace.render(limit=5)
        assert "launch" in text


class TestStatsShape:
    def test_pipeline_visits_match_paper_shape(self):
        # Mirrors Table 3's Edge Detection row: the producer visits each
        # state once; a consumer that re-executes visits RUNNING more.
        executor = fresh_executor()
        region = make_pipeline(n=40, producer_cost=2.0, consumer_cost=0.5,
                               start_fraction=0.4)
        executor.submit(region)
        executor.run()
        produce = region.graph.task("produce").stats
        assert produce.visits[TaskState.INIT] == 1
        assert produce.visits[TaskState.START_CHECK] == 1
        assert produce.visits[TaskState.RUNNING] == 1
        consume = region.graph.task("consume").stats
        assert consume.visits[TaskState.RUNNING] >= 1
        assert consume.visits[TaskState.COMPLETE] == 1


class TestGuardPooling:
    """The Section-3.3 thread-pool mitigation (Overheads.pool_size)."""

    def test_launch_cost_without_pool(self):
        overheads = Overheads(task_init=400.0)
        assert overheads.guard_launch_cost(0) == 400.0
        assert overheads.guard_launch_cost(1000) == 400.0

    def test_launch_cost_with_pool(self):
        overheads = Overheads(task_init=400.0, pool_size=4,
                              pool_dispatch=20.0)
        assert overheads.guard_launch_cost(3) == 400.0   # warm-up
        assert overheads.guard_launch_cost(4) == 20.0    # pooled
        assert overheads.guard_launch_cost(99) == 20.0

    def test_pooled_run_is_never_slower(self):
        from repro import submit_chain

        def span(overheads):
            executor = SimExecutor(cores=4, overheads=overheads)
            submit_chain(executor, [make_pipeline(n=10, name=f"p{i}_{id(overheads)%97}")
                                    for i in range(6)])
            return executor.run().makespan

        per_task = Overheads(task_init=400.0, end_check=0.0,
                             region_setup=0.0)
        pooled = Overheads(task_init=400.0, end_check=0.0,
                           region_setup=0.0, pool_size=2,
                           pool_dispatch=10.0)
        assert span(pooled) < span(per_task)
