"""SchedLab self-tests: policies, replay, shrinking, faults, mutations.

The acceptance bar for the harness itself (ISSUE): a deliberately
planted ordering bug is found by a seed sweep and shrunk to a minimal
replayable schedule; removing a guard wake-up seam (mutation testing)
is caught within 200 seeds; every fault-injection kind demonstrably
fires; and a serialized artifact replays deterministically from disk.
"""

import json

import pytest

from repro.schedlab import (ExhaustivePolicy, Fault, FaultPlan,
                            FifoPolicy, MUTATIONS, PCTPolicy,
                            RecordingPolicy, ReplayPolicy,
                            SeededRandomPolicy, run_scenario,
                            shrink_schedule, sweep)
from repro.schedlab.harness import (load_artifact, replay_artifact,
                                    shrink_outcome, write_artifact)
from repro.schedlab.scenarios import SCENARIOS, default_scenarios


def _trace_signature(trace):
    """Schedule-sensitive trace fingerprint, region names excluded
    (K-means region names embed ``id()`` and vary between runs)."""
    return [(event.time, event.task, event.event, event.detail)
            for event in trace.events]


# ---------------------------------------------------------------- policies


class TestPolicies:
    def test_fifo_policy_always_picks_zero(self):
        policy = FifoPolicy()
        assert policy.choose("event", ["a", "b", "c"]) == 0
        assert policy.order("signal", ["a", "b", "c"]) == [0, 1, 2]

    def test_seeded_random_policy_is_reproducible(self):
        first = SeededRandomPolicy(7)
        second = SeededRandomPolicy(7)
        keys = ["a", "b", "c", "d"]
        assert [first.choose("event", keys) for _ in range(20)] == \
               [second.choose("event", keys) for _ in range(20)]

    def test_seeded_random_begin_run_resets_the_stream(self):
        policy = SeededRandomPolicy(3)
        keys = ["a", "b", "c"]
        stream = [policy.choose("event", keys) for _ in range(10)]
        policy.begin_run()
        assert [policy.choose("event", keys) for _ in range(10)] == stream

    def test_order_is_a_permutation(self):
        policy = SeededRandomPolicy(11)
        keys = list("abcdef")
        permutation = policy.order("wake", keys)
        assert sorted(permutation) == list(range(len(keys)))

    def test_pct_policy_is_reproducible_and_in_range(self):
        keys = ["a", "b", "c"]
        runs = []
        for _ in range(2):
            policy = PCTPolicy(seed=5, depth=3)
            runs.append([policy.choose("event", keys) for _ in range(30)])
        assert runs[0] == runs[1]
        assert all(0 <= choice < 3 for choice in runs[0])

    def test_exhaustive_policy_enumerates_all_combinations(self):
        policy = ExhaustivePolicy(depth=3)
        seen = set()
        while True:
            policy.begin_run()
            seen.add(tuple(policy.choose("event", ["a", "b"])
                           for _ in range(3)))
            if not policy.advance():
                break
        assert seen == {(a, b, c) for a in (0, 1)
                        for b in (0, 1) for c in (0, 1)}

    def test_recording_and_replay_round_trip(self):
        recorder = RecordingPolicy(SeededRandomPolicy(9))
        recorder.begin_run()
        keys = ["a", "b", "c"]
        choices = [recorder.choose("event", keys) for _ in range(15)]
        replay = ReplayPolicy(recorder.decisions)
        assert [replay.choose("event", keys) for _ in range(15)] == choices
        assert replay.divergences == 0
        # A dry replay degrades to FIFO rather than failing.
        assert replay.choose("event", keys) == 0

    def test_replay_clamps_out_of_range_choices(self):
        replay = ReplayPolicy([("event", 5, 4)])
        assert replay.choose("event", ["a", "b"]) == 0
        assert replay.divergences >= 1


# ------------------------------------------------------ replay determinism


class TestReplayDeterminism:
    def test_same_seed_same_trace(self):
        traces = [run_scenario("pipeline", policy=SeededRandomPolicy(4),
                               trace=True).trace for _ in range(2)]
        assert _trace_signature(traces[0]) == _trace_signature(traces[1])

    def test_recorded_schedule_replays_to_identical_trace(self):
        recorded = run_scenario("diamond", policy=SeededRandomPolicy(6),
                                trace=True)
        assert recorded.ok
        replayed = run_scenario("diamond",
                                policy=ReplayPolicy(recorded.decisions),
                                trace=True)
        assert replayed.ok
        assert _trace_signature(replayed.trace) == \
            _trace_signature(recorded.trace)
        assert replayed.makespan == recorded.makespan

    def test_replay_reproduces_a_failure(self):
        # Seed 1 is a known racy-scenario failure (see RacyScenario).
        failing = run_scenario("racy", policy=SeededRandomPolicy(1), seed=1)
        assert failing.failure == "task-body-error:RacyOrderingBug"
        replayed = run_scenario("racy",
                                policy=ReplayPolicy(failing.decisions))
        assert replayed.failure == failing.failure
        assert replayed.divergences == 0


# ------------------------------------------------------------- the shrinker


class TestShrinker:
    def test_shrinker_converges_on_the_racy_ordering_bug(self):
        failing = run_scenario("racy", policy=SeededRandomPolicy(1), seed=1)
        assert failing.failure == "task-body-error:RacyOrderingBug"
        minimized, checks = shrink_outcome(failing)
        # The planted bug needs only a couple of ordering constraints;
        # the shrunk schedule must be strictly smaller and still fail.
        assert 0 < len(minimized) < len(failing.decisions)
        assert sum(1 for _p, _n, choice in minimized if choice != 0) <= 2
        assert checks <= 64
        replayed = run_scenario("racy", policy=ReplayPolicy(minimized))
        assert replayed.failure == failing.failure

    def test_shrink_schedule_prefers_prefixes_and_zeros(self):
        decisions = [("event", 2, 1)] * 8

        def still_fails(candidate):
            # "Fails" iff the 3rd decision is non-default: everything
            # after it and every other non-default entry is noise.
            candidate = list(candidate)
            return len(candidate) >= 3 and candidate[2][2] == 1

        minimized, _checks = shrink_schedule(decisions, still_fails)
        assert minimized == [("event", 2, 0), ("event", 2, 0),
                             ("event", 2, 1)]

    def test_shrink_schedule_keeps_original_when_nothing_shrinks(self):
        decisions = [("event", 2, 1), ("event", 2, 1)]

        def still_fails(candidate):
            return list(candidate) == decisions

        minimized, _checks = shrink_schedule(decisions, still_fails)
        assert minimized == decisions


# ------------------------------------------------------------ fault plans


class TestFaultPlans:
    def test_raise_fault_fires_and_classifies(self):
        outcome = run_scenario("pipeline", faults=[
            {"kind": "raise", "task": "consume", "at_chunk": 3}])
        assert outcome.failure == "fault-injected"
        assert outcome.fault_kinds == ["raise"]

    def test_delay_fault_stretches_virtual_time(self):
        baseline = run_scenario("pipeline")
        delayed = run_scenario("pipeline", faults=[
            {"kind": "delay", "task": "produce", "cost": 50.0,
             "at_chunk": 2}])
        assert delayed.ok
        assert delayed.fault_kinds == ["delay"]
        assert delayed.makespan > baseline.makespan

    def test_valve_faults_fire_and_stay_transient(self):
        for kind, valve in (("valve_true", "start"),
                            ("valve_false", "end")):
            outcome = run_scenario("pipeline", faults=[
                {"kind": kind, "task": "consume", "valve": valve,
                 "count": 1}])
            assert outcome.ok, outcome.message
            assert outcome.fault_kinds == [kind]

    def test_kill_worker_fault_is_detected_by_the_parent(self):
        outcome = run_scenario(
            "pipeline", backend="process", timeout=20.0,
            faults=[{"kind": "kill_worker", "task": "produce"}])
        assert outcome.failure == "scheduler-error"
        assert "died" in outcome.message
        assert outcome.fault_kinds == ["kill_worker"]

    def test_every_fault_kind_has_coverage_above(self):
        # Guard against KINDS growing without a firing test: the four
        # sim-visible kinds plus kill_worker are each exercised by a
        # test in this class.
        from repro.schedlab.faults import KINDS

        assert set(KINDS) == {"raise", "delay", "valve_false",
                              "valve_true", "kill_worker"}

    def test_fault_plan_serialization_round_trip(self):
        plan = FaultPlan([Fault("raise", task="consume", at_chunk=3),
                          Fault("delay", cost=2.5, wall=0.0)])
        rebuilt = FaultPlan.from_list(plan.to_list())
        assert rebuilt.to_list() == plan.to_list()

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(Exception, match="unknown fault kind"):
            Fault("explode")

    def test_fault_budget_is_per_run(self):
        # The same serialized plan fires in two consecutive runs: each
        # run_scenario call rebuilds a fresh FaultPlan.
        records = [{"kind": "raise", "task": "consume", "count": 1}]
        for _ in range(2):
            outcome = run_scenario("pipeline", faults=records)
            assert outcome.failure == "fault-injected"


# -------------------------------------------------------- mutation testing


class TestMutationAcceptance:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_mutation_caught_within_200_seeds(self, mutation, tmp_path):
        report = sweep(seeds=200, policy_name="random", backend="sim",
                       mutation=mutation, stop_first=True,
                       artifact_dir=str(tmp_path))
        assert report.failures, \
            f"mutation {mutation} survived 200 seeds undetected"
        assert report.runs <= 200 * len(default_scenarios("sim"))
        # The minimized schedule replays deterministically from its
        # serialized artifact file.
        assert report.artifacts
        artifact = load_artifact(report.artifacts[0])
        first = replay_artifact(report.artifacts[0])
        second = replay_artifact(report.artifacts[0])
        assert first.failure == artifact["failure"]
        assert second.failure == first.failure
        assert second.message == first.message

    def test_forced_staleness_violation_caught_within_200_seeds(self):
        """Mutation-style acceptance for the streaming audits: force the
        staleness start valve of the aggregate stage open (a
        ``valve_true`` fault — the stage drains before its input queue
        has settled to within k) and the invariant checker must record a
        staleness violation within the 200-seed budget."""
        report = sweep(["stream"], seeds=200, policy_name="random",
                       backend="sim", stop_first=True, shrink=False,
                       faults=[{"kind": "valve_true", "task": "aggregate",
                                "valve": "start", "count": 3}])
        assert report.failures, \
            "forced-open staleness valve survived 200 seeds undetected"
        caught = report.failures[0]
        assert caught.failure == "invariant"
        assert "staleness" in caught.message
        assert report.runs <= 200

    def test_stream_scenario_is_clean_without_faults(self):
        # The converse of the acceptance test above: with honest valves
        # the streaming audits stay silent, relaxed and strict alike.
        for strict in (False, True):
            outcome = run_scenario("stream", backend="sim", strict=strict,
                                   seed=0)
            assert outcome.ok, outcome.message

    def test_mutations_patch_and_restore_the_coordinator(self):
        from repro.core.guard import Coordinator
        from repro.schedlab.harness import apply_mutation

        originals = {name: getattr(Coordinator, attr)
                     for name, attr in MUTATIONS.items()}
        for name, attr in MUTATIONS.items():
            with apply_mutation(name):
                assert getattr(Coordinator, attr) is not originals[name]
            assert getattr(Coordinator, attr) is originals[name]


# ----------------------------------------------------- sweeps + artifacts


class TestSweepAndArtifacts:
    def test_default_sim_sweep_is_clean(self):
        report = sweep(seeds=3, policy_name="random", backend="sim",
                       strict=True)
        assert report.ok
        assert report.runs == 3 * len(default_scenarios("sim"))

    def test_sweep_finds_and_shrinks_the_racy_bug(self, tmp_path):
        report = sweep(["racy"], seeds=20, policy_name="random",
                       backend="sim", artifact_dir=str(tmp_path),
                       stop_first=True)
        assert report.failures
        assert report.artifacts
        record = load_artifact(report.artifacts[0])
        assert record["failure"] == "task-body-error:RacyOrderingBug"
        replayed = replay_artifact(report.artifacts[0])
        assert replayed.failure == record["failure"]

    def test_replay_cli_writes_telemetry_artifacts(self, tmp_path, capsys):
        from repro.schedlab.__main__ import main as schedlab_main
        report = sweep(["racy"], seeds=20, policy_name="random",
                       backend="sim", artifact_dir=str(tmp_path),
                       stop_first=True)
        assert report.artifacts
        trace = tmp_path / "replay.perfetto.json"
        metrics = tmp_path / "replay.metrics.json"
        assert schedlab_main(["replay", report.artifacts[0],
                              "--trace-out", str(trace),
                              "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "wrote trace" in out and "wrote metrics" in out
        doc = json.loads(trace.read_text())
        assert "traceEvents" in doc
        dump = json.loads(metrics.read_text())
        assert dump["counters"]["tasks.runs"] > 0

    def test_artifact_file_shape(self, tmp_path):
        failing = run_scenario("racy", policy=SeededRandomPolicy(1),
                               seed=1)
        path = write_artifact(str(tmp_path), failing)
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["version"] == 1
        assert record["scenario"] == "racy"
        assert record["backend"] == "sim"
        assert record["seed"] == 1
        assert all(len(decision) == 3 for decision in record["decisions"])

    def test_thread_backend_sweep_smoke(self):
        report = sweep(["pipeline", "diamond"], seeds=2,
                       policy_name="random", backend="thread",
                       jitter_scale=0.001, timeout=30.0)
        assert report.ok, [o.message for o in report.failures]

    def test_racy_scenario_is_not_in_default_sweeps(self):
        assert "racy" not in default_scenarios("sim")
        assert SCENARIOS["racy"].backends == ("sim",)

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.schedlab.__main__ import main

        assert main(["list"]) == 0
        assert main(["sweep", "--scenarios", "pipeline", "--seeds", "2"]) \
            == 0
        code = main(["sweep", "--scenarios", "racy", "--seeds", "8",
                     "--stop-first", "--artifact-dir", str(tmp_path)])
        assert code == 1
        artifacts = list(tmp_path.glob("*.json"))
        assert artifacts
        assert main(["replay", str(artifacts[0])]) == 0
        capsys.readouterr()
