"""Hypothesis property tests for the seven-state guard machine.

Three layers of the same invariant — only Figure-5 arcs ever happen:

* directly on :meth:`FluidTask.transition` (arbitrary arcs: legal ones
  are accepted and observed, illegal ones raise ``StateError`` and leave
  the task untouched);
* on random *walks* through ``LEGAL_TRANSITIONS`` (every reachable path
  is accepted and the observer sees exactly the walked arcs);
* on whole simulated executions under random schedule policies and
  random valve flakiness, audited by the
  :class:`~repro.schedlab.invariants.InvariantChecker` (legality +
  exactly-once completion), which exercises the machine through the real
  guard logic rather than synthetic calls.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StateError
from repro.core.states import LEGAL_TRANSITIONS, TaskState
from repro.core.task import FluidTask, TaskSpec
from repro.schedlab import (InvariantChecker, SeededRandomPolicy,
                            run_scenario)

STATES = list(TaskState)


def _body(ctx):
    yield 0.0


def _make_task(state: TaskState) -> FluidTask:
    task = FluidTask(TaskSpec("probe", _body))
    task.state = state
    return task


class TestTransitionProperties:
    @given(src=st.sampled_from(STATES), dst=st.sampled_from(STATES))
    def test_exactly_the_legal_arcs_are_accepted(self, src, dst):
        task = _make_task(src)
        if dst in LEGAL_TRANSITIONS[src]:
            task.transition(dst, 0.0)
            assert task.state is dst
        else:
            with pytest.raises(StateError):
                task.transition(dst, 0.0)
            assert task.state is src

    @given(src=st.sampled_from(STATES), dst=st.sampled_from(STATES))
    def test_observer_sees_legal_arcs_only(self, src, dst):
        task = _make_task(src)
        with InvariantChecker() as checker:
            try:
                task.transition(dst, 0.0)
            except StateError:
                pass
        for name, seen_src, seen_dst in checker.transitions:
            assert seen_dst in LEGAL_TRANSITIONS[seen_src]
        assert checker.ok

    @given(data=st.data())
    def test_random_legal_walks_reach_only_complete_as_terminal(self, data):
        """Any walk through LEGAL_TRANSITIONS is accepted step by step,
        and the machine only ever gets stuck in COMPLETE."""
        task = _make_task(TaskState.INIT)
        with InvariantChecker() as checker:
            for step in range(12):
                successors = sorted(LEGAL_TRANSITIONS[task.state],
                                    key=lambda state: state.name)
                if not successors:
                    assert task.state is TaskState.COMPLETE
                    break
                nxt = data.draw(st.sampled_from(successors),
                                label=f"step{step}")
                task.transition(nxt, float(step))
        assert checker.ok
        walked = [(src, dst) for _name, src, dst in checker.transitions]
        assert all(dst in LEGAL_TRANSITIONS[src] for src, dst in walked)
        # COMPLETE appears at most once, and only as the last arc.
        completions = [i for i, (_s, dst) in enumerate(walked)
                       if dst is TaskState.COMPLETE]
        assert len(completions) <= 1
        if completions:
            assert completions[0] == len(walked) - 1


def _flake_faults(draw_flakes):
    """Turn drawn (kind, valve, count) triples into fault records."""
    return [{"kind": kind, "task": "*", "valve": valve, "count": count}
            for kind, valve, count in draw_flakes]


class TestSimulatedExecutions:
    """Whole runs under random schedules/flakes stay on Figure-5 arcs.

    ``run_scenario`` installs the InvariantChecker itself and reports
    any illegal arc / double completion as ``failure == "invariant"``;
    a clean outcome therefore *is* the property.
    """

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           scenario=st.sampled_from(["pipeline", "overtake", "diamond"]))
    def test_random_schedules_only_take_legal_arcs(self, seed, scenario):
        outcome = run_scenario(scenario,
                               policy=SeededRandomPolicy(seed), seed=seed)
        assert outcome.ok, outcome.message

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           flakes=st.lists(
               st.tuples(st.sampled_from(["valve_false", "valve_true"]),
                         st.sampled_from(["start", "end"]),
                         st.integers(min_value=1, max_value=3)),
               max_size=3))
    def test_valve_flakiness_never_breaks_the_state_machine(
            self, seed, flakes):
        outcome = run_scenario("pipeline",
                               policy=SeededRandomPolicy(seed), seed=seed,
                               faults=_flake_faults(flakes))
        # Flaky valves may change *scheduling* but never legality: the
        # only acceptable outcomes are a clean run or a drained
        # simulation (e.g. a valve_false flake that starves a start
        # check), never an invariant violation.
        assert outcome.failure in (None, "scheduler-error"), outcome.message

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_strict_schedules_match_serial_elision(self, seed):
        outcome = run_scenario("diamond", strict=True,
                               policy=SeededRandomPolicy(seed), seed=seed)
        assert outcome.ok, outcome.message
