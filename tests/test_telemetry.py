"""The unified telemetry layer: bus, metrics, Perfetto export, CLI.

Backend parity is the headline contract: all three executors publish
into the same bus vocabulary, so one fixed workload must yield the same
counter *set* (and sensible values) everywhere.  The rest covers the
instrumentation bugfix sweep: idempotent TaskStats.finish, Trace ring
buffers, and the metrics dump summarize/diff CLI.
"""

import json

import pytest

from repro import (ProcessExecutor, SimExecutor, Telemetry, TelemetryBus,
                   ThreadExecutor)
from repro.core.errors import StateError
from repro.core.states import TaskState
from repro.core.stats import TaskStats
from repro.runtime.tracing import Trace
from repro.telemetry import METRICS_SCHEMA, diff_metrics, load_metrics
from repro.telemetry.__main__ import main as telemetry_cli

from util import make_pipeline, pipeline_expected


def run_with_telemetry(backend):
    """One fixed, process-safe pipeline run under ``backend``."""
    telemetry = Telemetry()
    region = make_pipeline(n=20, start_fraction=1.0, exact_quality=True)
    if backend == "sim":
        executor = SimExecutor(cores=4, telemetry=telemetry)
    elif backend == "thread":
        executor = ThreadExecutor(timeout=60, telemetry=telemetry)
    else:
        executor = ProcessExecutor(workers=2, timeout=120,
                                   telemetry=telemetry)
    executor.submit(region)
    executor.run()
    assert region.output("out") == pipeline_expected(20)
    return telemetry


BACKENDS = ("sim", "thread", "process")


class TestBackendParity:
    def test_same_counter_set_and_live_values_everywhere(self):
        runs = {backend: run_with_telemetry(backend)
                for backend in BACKENDS}
        key_sets = {backend: set(t.metrics.counters)
                    for backend, t in runs.items()}
        assert key_sets["sim"] == key_sets["thread"] == key_sets["process"]
        for backend, telemetry in runs.items():
            counters = telemetry.metrics.counters
            # Fully-serialized valves: both tasks complete, consume's
            # start valve and exact end valve each passed at least once.
            assert counters["tasks.runs"] >= 2, backend
            assert counters["tasks.completed"] == 2, backend
            assert counters["valve.start.pass"] >= 1, backend
            # End valves are skipped for precise starts (guard rule i),
            # so a fully-serialized run records no end evaluations; the
            # racy-run test below covers the end-valve counters.
            assert counters["time.running"] > 0, backend
            gauges = telemetry.metrics.gauges
            assert gauges["run.makespan"] > 0, backend
            assert 0 < gauges["worker.utilization"] <= 1.0, backend
        # Process-specific traffic shows up only on the process backend.
        assert runs["process"].metrics.counters["process.dispatches"] >= 2
        assert runs["sim"].metrics.counters["process.dispatches"] == 0

    def test_metrics_dump_carries_full_catalogue(self, tmp_path):
        paths = {}
        for backend in ("sim", "thread"):
            telemetry = run_with_telemetry(backend)
            path = tmp_path / f"{backend}.json"
            telemetry.write(metrics_out=str(path))
            paths[backend] = path
        dumps = {backend: load_metrics(str(path))
                 for backend, path in paths.items()}
        assert (set(dumps["sim"]["counters"])
                == set(dumps["thread"]["counters"]))
        assert all(dump["schema"] == METRICS_SCHEMA
                   for dump in dumps.values())


class TestPerfettoExport:
    def test_round_trips_through_json(self):
        telemetry = run_with_telemetry("sim")
        doc = json.loads(json.dumps(telemetry.chrome_trace()))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert any(e["ph"] == "M" and e["name"] == "thread_name"
                   for e in events)
        slices = [e for e in events if e["ph"] == "X"]
        assert slices, "expected at least one duration slice"
        assert any(e["name"].startswith("run #") for e in slices)
        for event in slices:
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_timestamps_non_decreasing_per_track(self, backend):
        telemetry = run_with_telemetry(backend)
        doc = json.loads(json.dumps(telemetry.chrome_trace()))
        tracks = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                tracks.setdefault((event["pid"], event["tid"]),
                                  []).append(event["ts"])
        assert tracks
        for track, stamps in tracks.items():
            assert stamps == sorted(stamps), track

    def test_reexecution_stretches_visible(self):
        # A racy pipeline re-executes consume; the extra runs must show
        # up as distinct "run #N" slices on the consumer's track.
        telemetry = Telemetry()
        region = make_pipeline(n=40, producer_cost=2.0, consumer_cost=0.1,
                               start_fraction=0.3, exact_quality=True)
        executor = SimExecutor(cores=4, telemetry=telemetry)
        executor.submit(region)
        executor.run()
        counters = telemetry.metrics.counters
        assert counters["tasks.reexecutions"] >= 1
        # The early consumer run flunked its exact end valve at least
        # once before the re-execution repaired it.
        assert counters["valve.end.fail"] >= 1
        assert counters["tasks.quality_failures"] >= 1
        run_names = {e["name"] for e in telemetry.chrome_trace()["traceEvents"]
                     if e.get("ph") == "X" and e["name"].startswith("run #")}
        assert len(run_names) >= 2


class TestTelemetryOptional:
    def test_runs_identically_without_telemetry(self):
        region = make_pipeline(n=20, start_fraction=1.0, exact_quality=True)
        executor = SimExecutor(cores=4)
        executor.submit(region)
        executor.run()
        assert region.output("out") == pipeline_expected(20)
        assert executor.trace is None

    def test_run_finished_is_idempotent(self):
        telemetry = run_with_telemetry("sim")
        before = dict(telemetry.metrics.counters)
        telemetry.run_finished(999.0, 99)
        assert telemetry.metrics.counters == before
        assert telemetry.metrics.gauges["run.workers"] != 99

    def test_bus_counts_published_events(self):
        bus = TelemetryBus()
        bus.bind_clock(lambda: 5.0, 1.0)
        bus.emit("sched", "r", "t", "launch")
        assert bus.published == 1


class TestStatsFinishSemantics:
    """Regression: finish() used to double-book the tail residence."""

    def test_finish_is_idempotent(self):
        stats = TaskStats("t")
        stats.enter(TaskState.RUNNING, 0.0)
        stats.enter(TaskState.COMPLETE, 10.0)
        stats.finish(12.0)
        first = stats.time[TaskState.COMPLETE]
        stats.finish(50.0)
        stats.finish(100.0)
        assert stats.time[TaskState.COMPLETE] == first == 2.0

    def test_enter_after_finish_raises(self):
        stats = TaskStats("t")
        stats.enter(TaskState.RUNNING, 0.0)
        stats.finish(1.0)
        with pytest.raises(StateError, match="after finish"):
            stats.enter(TaskState.WAITING, 2.0)


class TestTraceRingBuffer:
    def test_unbounded_by_default(self):
        trace = Trace()
        for i in range(100):
            trace.record(float(i), "r", "t", "run")
        assert len(trace) == 100 and trace.dropped == 0

    def test_capacity_evicts_oldest_and_counts_drops(self):
        trace = Trace(capacity=3)
        for i in range(10):
            trace.record(float(i), "r", "t", "run")
        assert len(trace) == 3
        assert trace.dropped == 7
        assert [e.time for e in trace.events] == [7.0, 8.0, 9.0]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Trace(capacity=0)

    def test_drops_fold_into_metrics(self):
        telemetry = Telemetry(trace_capacity=2)
        region = make_pipeline(n=10, start_fraction=1.0, exact_quality=True)
        executor = SimExecutor(cores=4, telemetry=telemetry)
        executor.submit(region)
        executor.run()
        assert len(telemetry.trace) == 2
        assert (telemetry.metrics.counters["trace.dropped_events"]
                == telemetry.trace.dropped > 0)


class TestDumpCli:
    def _dump(self, tmp_path, name, **pipeline_kwargs):
        telemetry = Telemetry()
        kwargs = dict(n=20, start_fraction=1.0, exact_quality=True)
        kwargs.update(pipeline_kwargs)
        executor = SimExecutor(cores=4, telemetry=telemetry)
        executor.submit(make_pipeline(**kwargs))
        executor.run()
        path = tmp_path / name
        telemetry.write(metrics_out=str(path))
        return path

    def test_summarize(self, tmp_path, capsys):
        path = self._dump(tmp_path, "run.json")
        assert telemetry_cli(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tasks.runs" in out and "valve.start.pass" in out

    def test_diff_changed_only(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.json")
        b = self._dump(tmp_path, "b.json", n=40)
        assert telemetry_cli(["diff", str(a), str(b),
                              "--changed-only"]) == 0
        out = capsys.readouterr().out
        assert "metrics diff" in out
        assert "time.running" in out  # n=40 runs longer than n=20

    def test_diff_identical_dumps_reports_nothing(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.json")
        assert telemetry_cli(["diff", str(a), str(a),
                              "--changed-only"]) == 0
        assert "(no differences)" in capsys.readouterr().out

    def test_rejects_non_dump_files(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"hello": 1}')
        assert telemetry_cli(["summarize", str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_rows_cover_both_sides(self, tmp_path):
        a = load_metrics(str(self._dump(tmp_path, "a.json")))
        b = dict(a, counters=dict(a["counters"], extra=3.0))
        rows = {key: (left, right, delta)
                for key, left, right, delta in diff_metrics(a, b)}
        assert rows["extra"] == (0, 3.0, 3.0)
        assert rows["tasks.runs"][2] == 0
