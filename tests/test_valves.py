"""Unit tests for repro.core.valves."""

import pytest

from repro.core.count import Count
from repro.core.data import FluidData
from repro.core.errors import ValveError
from repro.core.valves import (AlwaysValve, ConvergenceValve, CountValve,
                               DataFinalValve, NeverValve, PercentValve,
                               PredicateValve, StabilityValve)


class TestCountValve:
    def test_unsatisfied_below_threshold(self):
        ct = Count("ct")
        valve = CountValve(ct, threshold=5)
        ct.add(4)
        assert not valve.check()

    def test_satisfied_at_threshold(self):
        ct = Count("ct")
        valve = CountValve(ct, threshold=5)
        ct.add(5)
        assert valve.check()

    def test_monotone_in_count(self):
        ct = Count("ct")
        valve = CountValve(ct, threshold=3)
        seen = []
        for _ in range(6):
            ct.add()
            seen.append(valve.check())
        # once true, stays true
        assert seen == sorted(seen)

    def test_requires_count(self):
        with pytest.raises(ValveError):
            CountValve(None, threshold=1)

    def test_check_counter_increments(self):
        # With memoization (the default) a repeat check against an
        # unchanged count is answered from the cached verdict.
        valve = CountValve(Count("ct"), threshold=1)
        valve.check()
        valve.check()
        assert valve.checks == 1
        assert valve.checks_skipped == 1

    def test_check_counter_increments_memo_off(self):
        from repro.core.valves import set_memoization
        previous = set_memoization(False)
        try:
            valve = CountValve(Count("ct"), threshold=1)
            valve.check()
            valve.check()
            assert valve.checks == 2
            assert valve.checks_skipped == 0
        finally:
            set_memoization(previous)

    def test_init_rebinds(self):
        valve = CountValve(Count("old"), threshold=1)
        ct = Count("new")
        valve.init(ct, 2)
        ct.add(2)
        assert valve.check()

    def test_watched_counts(self):
        ct = Count("ct")
        assert CountValve(ct, 1).watched_counts == (ct,)

    def test_max_threshold_below_base_rejected(self):
        with pytest.raises(ValveError):
            CountValve(Count("ct"), threshold=5, max_threshold=2)


class TestThresholdModulation:
    def test_tighten_moves_toward_max(self):
        ct = Count("ct")
        valve = CountValve(ct, threshold=40, max_threshold=100)
        valve.tighten(0.5)
        assert valve.threshold == pytest.approx(70)
        valve.tighten(0.5)
        assert valve.threshold == pytest.approx(85)

    def test_tighten_never_exceeds_max(self):
        valve = CountValve(Count("ct"), threshold=40, max_threshold=100)
        for _ in range(50):
            valve.tighten(0.9)
        assert valve.threshold <= 100

    def test_relax_to_base(self):
        valve = CountValve(Count("ct"), threshold=40, max_threshold=100)
        valve.tighten(1.0)
        valve.relax_to_base()
        assert valve.threshold == 40

    def test_tighten_rejects_bad_fraction(self):
        valve = CountValve(Count("ct"), threshold=1, max_threshold=2)
        with pytest.raises(ValveError):
            valve.tighten(1.5)


class TestPercentValve:
    def test_threshold_is_fraction_of_total(self):
        ct = Count("ct")
        valve = PercentValve(ct, fraction=0.4, total=100)
        ct.add(39)
        assert not valve.check()
        ct.add(1)
        assert valve.check()

    def test_full_fraction_means_completion(self):
        ct = Count("ct")
        valve = PercentValve(ct, fraction=1.0, total=10)
        ct.add(9)
        assert not valve.check()
        ct.add(1)
        assert valve.check()

    def test_fraction_bounds(self):
        with pytest.raises(ValveError):
            PercentValve(Count("ct"), fraction=1.2, total=10)

    def test_max_threshold_is_total(self):
        valve = PercentValve(Count("ct"), fraction=0.3, total=50)
        valve.tighten(1.0)
        assert valve.threshold == 50


class TestConvergenceValve:
    def test_needs_enough_history(self):
        ct = Count("energy")
        valve = ConvergenceValve(ct, window=3, tolerance=0.01)
        for value in (10.0, 10.0):
            ct.track_min(value)
        assert not valve.check()

    def test_satisfied_when_flat(self):
        ct = Count("energy")
        valve = ConvergenceValve(ct, window=3, tolerance=0.01)
        for value in (10.0, 10.0, 10.0, 10.0):
            ct.track_min(value)
        assert valve.check()

    def test_unsatisfied_while_improving(self):
        ct = Count("energy")
        valve = ConvergenceValve(ct, window=3, tolerance=0.01)
        for value in (10.0, 8.0, 6.0, 4.0):
            ct.track_min(value)
        assert not valve.check()

    def test_converges_after_plateau(self):
        ct = Count("energy")
        valve = ConvergenceValve(ct, window=2, tolerance=0.01)
        for value in (10.0, 5.0, 5.0, 5.0):
            ct.track_min(value)
        assert valve.check()

    def test_max_mode(self):
        ct = Count("score")
        valve = ConvergenceValve(ct, window=2, tolerance=0.01, mode="max")
        for value in (1.0, 9.0, 9.0, 9.0):
            ct.track_max(value)
        assert valve.check()

    def test_bad_window_rejected(self):
        with pytest.raises(ValveError):
            ConvergenceValve(Count("c"), window=0)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValveError):
            ConvergenceValve(Count("c"), mode="sideways")

    def test_tighten_widens_window(self):
        valve = ConvergenceValve(Count("c"), window=4)
        valve.tighten(0.5)
        assert valve.window > 4
        valve.relax_to_base()
        assert valve.window == 4


class TestStabilityValve:
    def test_satisfied_after_stable_rounds(self):
        changed = Count("changed")
        valve = StabilityValve(changed, total=100, epsilon=0.02, rounds=2)
        changed.set(50)
        changed.set(1)
        assert not valve.check()  # only one stable round
        changed.set(2)
        assert valve.check()      # two consecutive rounds <= 2%

    def test_unstable_round_resets(self):
        changed = Count("changed")
        valve = StabilityValve(changed, total=100, epsilon=0.02, rounds=2)
        changed.set(1)
        changed.set(30)
        changed.set(1)
        assert not valve.check()

    def test_validation(self):
        with pytest.raises(ValveError):
            StabilityValve(Count("c"), total=0)
        with pytest.raises(ValveError):
            StabilityValve(Count("c"), total=10, rounds=0)

    def test_tighten_requires_more_rounds(self):
        valve = StabilityValve(Count("c"), total=10, rounds=2)
        valve.tighten(0.5)
        assert valve.rounds > 2


class TestOtherValves:
    def test_always(self):
        assert AlwaysValve().check()

    def test_never(self):
        assert not NeverValve().check()

    def test_predicate(self):
        flag = {"on": False}
        valve = PredicateValve(lambda: flag["on"])
        assert not valve.check()
        flag["on"] = True
        assert valve.check()

    def test_predicate_watches(self):
        ct = Count("ct")
        valve = PredicateValve(lambda: True, watches=[ct])
        assert valve.watched_counts == (ct,)

    def test_data_final_valve(self):
        d = FluidData("d", 0)
        valve = DataFinalValve(d)
        assert not valve.check()
        d.mark_final(precise=True)
        assert valve.check()


class TestMemoization:
    def test_count_update_invalidates(self):
        ct = Count("ct")
        valve = CountValve(ct, threshold=2)
        assert not valve.check()
        assert not valve.check()          # memo-answered
        ct.add(2)                          # token changes with updates
        assert valve.check()
        assert valve.checks == 2
        assert valve.checks_skipped == 1

    def test_tighten_invalidates(self):
        ct = Count("ct")
        ct.add(5)
        valve = CountValve(ct, threshold=4, max_threshold=10)
        assert valve.check()
        valve.tighten(1.0)                 # threshold now 10
        assert not valve.check()           # recomputed, not cached True
        assert valve.checks == 2

    def test_relax_invalidates(self):
        ct = Count("ct")
        ct.add(5)
        valve = CountValve(ct, threshold=4, max_threshold=10)
        valve.tighten(1.0)
        assert not valve.check()
        valve.relax_to_base()
        assert valve.check()

    def test_count_reset_invalidates(self):
        # reset() leaves updates at 0 again, so only the generation
        # counter distinguishes the fresh state from the original one.
        ct = Count("ct")
        valve = CountValve(ct, threshold=1)
        assert not valve.check()
        ct.add(1)
        assert valve.check()
        ct.reset()
        assert not valve.check()

    def test_predicate_never_memoized(self):
        calls = {"n": 0}

        def pred():
            calls["n"] += 1
            return True

        valve = PredicateValve(pred)
        valve.check()
        valve.check()
        assert calls["n"] == 2
        assert valve.checks == 2
        assert valve.checks_skipped == 0

    def test_data_final_valve_memoized(self):
        d = FluidData("d", [0, 0])
        valve = DataFinalValve(d)
        assert not valve.check()
        assert not valve.check()
        assert valve.checks_skipped == 1
        d.write([1, 1])                    # version bump invalidates
        assert not valve.check()
        d.mark_final(precise=True)         # finality flip invalidates
        assert valve.check()
        assert valve.checks == 3

    def test_convergence_history_invalidates(self):
        ct = Count("score")
        valve = ConvergenceValve(ct, window=2, min_updates=1)
        assert not valve.check()
        assert not valve.check()
        assert valve.checks_skipped == 1
        for value in (10.0, 10.0, 10.0):
            ct.set(value)
        assert valve.check()               # recomputed: history grew

    def test_stability_history_invalidates(self):
        ct = Count("changed")
        valve = StabilityValve(ct, total=100, epsilon=0.01, rounds=2)
        assert not valve.check()
        assert not valve.check()
        assert valve.checks_skipped == 1
        ct.set(0)
        ct.set(0)
        assert valve.check()

    def test_invalidate_memo_forces_recompute(self):
        valve = CountValve(Count("ct"), threshold=1)
        valve.check()
        valve.invalidate_memo()
        valve.check()
        assert valve.checks == 2

    def test_set_memoization_returns_previous(self):
        from repro.core.valves import memoization_enabled, set_memoization

        assert memoization_enabled()
        assert set_memoization(False) is True
        try:
            assert not memoization_enabled()
            assert set_memoization(False) is False
        finally:
            set_memoization(True)


class TestDeclaredFailFast:
    def test_check_before_init_raises(self):
        valve = CountValve.declared("v1")
        with pytest.raises(ValveError, match="before init"):
            valve.check()

    def test_tighten_before_init_raises(self):
        valve = CountValve.declared("v1")
        with pytest.raises(ValveError, match="before init"):
            valve.tighten(0.5)

    def test_relax_before_init_raises(self):
        valve = CountValve.declared("v1")
        with pytest.raises(ValveError, match="before init"):
            valve.relax_to_base()

    def test_data_final_declared_fail_fast(self):
        valve = DataFinalValve.declared("v2")
        with pytest.raises(ValveError, match="before init"):
            valve.check()
        valve.init(FluidData("d", 0))
        assert not valve.check()

    def test_init_enables_full_lifecycle(self):
        ct = Count("ct")
        ct.add(3)
        valve = CountValve.declared("v1").init(ct, 2, max_threshold=5)
        assert valve.check()
        valve.tighten(1.0)
        valve.relax_to_base()
        assert valve.check()
