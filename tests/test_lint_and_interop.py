"""Tests for the region lint pass and the networkx adapters."""

import numpy as np
import pytest

from repro import FluidRegion
from repro.workloads import random_graph
from repro.workloads.graphs import GraphInput, bellman_ford_reference

from util import make_pipeline


def _noop(ctx):
    yield 1.0


class TestRegionLint:
    def test_clean_pipeline_has_no_race_warning(self):
        region = make_pipeline(n=5)
        graph = region.finalize()
        assert not [w for w in graph.lint() if "race" in w]

    def test_unvalved_consumer_flagged(self):
        class Racy(FluidRegion):
            def build(self):
                mid = self.add_array("mid", [0])
                out = self.add_array("out", [0])
                self.add_task("produce", _noop, outputs=[mid])
                self.add_task("consume", _noop, inputs=[mid],
                              outputs=[out])

        graph = Racy("racy").finalize()
        warnings = graph.lint()
        assert any("race its producers" in w and "consume" in w
                   for w in warnings)

    def test_quality_free_leaf_flagged(self):
        region = make_pipeline(n=5, end_fraction=None)
        warnings = region.finalize().lint()
        assert any("no end valves" in w for w in warnings)

    def test_root_without_valves_is_fine(self):
        class Solo(FluidRegion):
            def build(self):
                self.add_task("only", _noop)

        assert Solo("solo").finalize().lint() == []

    def test_fluidpy_semantics_emits_same_warning(self):
        import textwrap
        from repro.lang import check_source
        diagnostics = check_source(textwrap.dedent('''
            __fluid__
            class Racy:
                #pragma data {int *a;}
                #pragma data {int *b;}
                def work(self, ctx):
                    yield 1.0
                def region(self):
                    #pragma task <<<t1, {}, {}, {}, {a}>>> work()
                    #pragma task <<<t2, {}, {}, {a}, {b}>>> work()
                    pass
        '''), "racy.fpy")
        assert any(d.severity == "warning" and "race" in d.message
                   for d in diagnostics)

    def test_bundled_sources_are_race_clean(self):
        import glob
        import os
        from repro.lang import check_source
        fluidsrc = os.path.join(os.path.dirname(__file__), os.pardir,
                                "src", "repro", "apps", "fluidsrc")
        for path in glob.glob(os.path.join(fluidsrc, "*.fpy")):
            with open(path) as handle:
                diagnostics = check_source(handle.read(), path)
            races = [d for d in diagnostics if "race" in d.message]
            assert not races, f"{path}: {races}"


class TestNetworkxInterop:
    networkx = pytest.importorskip("networkx")

    def test_roundtrip_preserves_shortest_paths(self):
        import networkx
        original = random_graph(80, 320, seed=301)
        exported = original.to_networkx()
        rebuilt = GraphInput.from_networkx(exported, name="roundtrip")
        assert np.allclose(bellman_ford_reference(rebuilt),
                           bellman_ford_reference(original))

    def test_from_undirected_graph(self):
        import networkx
        graph = networkx.Graph()
        graph.add_edge("a", "b", weight=2.0)
        graph.add_edge("b", "c", weight=3.0)
        built = GraphInput.from_networkx(graph)
        assert built.num_vertices == 3
        assert built.num_edges == 4  # one directed edge per direction
        dist = bellman_ford_reference(built, source=0)
        assert dist.tolist() == [0.0, 2.0, 5.0]

    def test_default_weight_applied(self):
        import networkx
        graph = networkx.DiGraph()
        graph.add_edge(0, 1)
        built = GraphInput.from_networkx(graph, default_weight=7.0)
        assert built.weight.tolist() == [7.0]

    def test_apps_accept_networkx_built_inputs(self):
        import networkx
        from repro.apps.bellman_ford import BellmanFordApp
        g = networkx.gnm_random_graph(60, 240, seed=5, directed=True)
        for _u, _v, attributes in g.edges(data=True):
            attributes["weight"] = 1.0
        built = GraphInput.from_networkx(g)
        # Ensure reachability for the app's reference computation by
        # rooting a star at 0.
        import numpy as np
        app_graph = random_graph(60, 240, seed=5)
        app = BellmanFordApp(app_graph, iterations=6)
        assert app.run_fluid().makespan > 0
