"""Unit tests for the banded (multithreaded) decompositions of Fig. 12.

The Figure-12 benchmark measures makespans; these tests pin the
*correctness* of the parallel decompositions: band boundaries cover the
domain exactly, per-band valves gate independently, and outputs remain
within quality bounds at every degree of parallelism.
"""

import numpy as np
import pytest

from repro.apps.edge_detection import EdgeDetectionApp
from repro.apps.fft import FFTApp
from repro.apps.graph_coloring import GraphColoringApp
from repro.apps.kmeans import KMeansApp
from repro.workloads import random_graph, random_vector, synthetic_image

PARALLELISM = [1, 2, 3, 8]


class TestEdgeDetectionBands:
    @pytest.mark.parametrize("parallelism", PARALLELISM)
    def test_banded_fluid_output_close_to_precise(self, parallelism):
        app = EdgeDetectionApp(synthetic_image(32, 32, seed=211))
        precise = app.run_precise()
        fluid = app.run_fluid(parallelism=parallelism)
        assert fluid.error < 0.1
        assert fluid.output.shape == precise.output.shape

    def test_band_count_respected(self):
        app = EdgeDetectionApp(synthetic_image(32, 32, seed=211))
        fluid = app.run_fluid(parallelism=4)
        region = fluid.regions[0]
        filters = [t for t in region.tasks if t.name.startswith("filter_")]
        gradients = [t for t in region.tasks
                     if t.name.startswith("gradient_")]
        assert len(filters) == len(gradients) == 4

    def test_more_bands_than_rows_clamped(self):
        app = EdgeDetectionApp(synthetic_image(8, 8, seed=211))
        fluid = app.run_fluid(parallelism=64)
        region = fluid.regions[0]
        filters = [t for t in region.tasks if t.name.startswith("filter_")]
        assert len(filters) <= 8


class TestKMeansBands:
    @pytest.mark.parametrize("parallelism", PARALLELISM)
    def test_banded_objective_bounded(self, parallelism):
        app = KMeansApp(synthetic_image(24, 24, diversity=4, seed=212),
                        num_clusters=4, epochs=4)
        fluid = app.run_fluid(parallelism=parallelism)
        assert fluid.error < 0.3

    def test_assignments_fully_covered(self):
        app = KMeansApp(synthetic_image(24, 24, diversity=4, seed=212),
                        num_clusters=4, epochs=3)
        fluid = app.run_fluid(parallelism=3)
        _centroids, assignments = fluid.output
        assert assignments.min() >= 0
        assert assignments.max() < 4
        assert len(assignments) == 24 * 24


class TestGraphColoringBands:
    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_banded_coloring_proper(self, parallelism):
        graph = random_graph(300, 1800, seed=213)
        app = GraphColoringApp(graph)
        fluid = app.run_fluid(parallelism=parallelism)
        assert app.conflicts(fluid.output) == 0
        assert (fluid.output >= 0).all()


class TestFFTBatch:
    def test_batch_parallelism_outputs_independent(self):
        signals = [random_vector(128, seed=s) for s in range(4)]
        app = FFTApp(signals)
        fluid = app.run_fluid(parallelism=4)
        for signal, spectrum in zip(signals, fluid.output):
            reference = np.fft.fft(signal)
            power = float(np.mean(np.abs(reference) ** 2))
            err = float(np.mean(np.abs(spectrum - reference) ** 2)) / power
            assert err < 0.01

    def test_parallel_batch_faster_than_chained(self):
        signals = [random_vector(256, seed=s) for s in range(4)]
        chained = FFTApp(signals).run_fluid(parallelism=1).makespan
        parallel = FFTApp(signals).run_fluid(parallelism=4).makespan
        assert parallel < chained
