"""Hypothesis property tests for the staleness-relaxed stage queue.

The k-out-of-order contract of :class:`repro.stream.StageQueue`, checked
over arbitrary interleavings of producer puts and consumer drains:

* no item is ever served more than ``k`` positions out of order
  (``displacement <= k`` on every serve event, for any schedule);
* a must-deliver item is never dropped, under any capacity pressure;
* at ``k = 0`` the queue degrades to lossless FIFO: drains serve
  exactly the contiguous seq prefix, in order, with zero drops;
* settledness (arrived + shed) is monotone and re-puts are idempotent,
  which is what makes the rerun-based recompute model safe.

The random-schedule layer mirrors ``test_state_machine_properties``:
the :class:`~repro.schedlab.invariants.InvariantChecker` subscribes to
the queue-observer stream, so the same audits that catch injected
faults in SchedLab sweeps also hold under Hypothesis-driven schedules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FluidError
from repro.schedlab import InvariantChecker
from repro.stream import DROPPED, QueueEvent, StageQueue, add_stream_observer, \
    remove_stream_observer


def _schedule(data, expected):
    """Draw an interleaving: a put order plus drain points between them."""
    order = data.draw(st.permutations(list(range(expected))),
                      label="put order")
    drain_after = data.draw(
        st.sets(st.integers(min_value=0, max_value=expected),
                max_size=expected // 2 + 1),
        label="drain points")
    return order, drain_after


class _EventLog:
    def __init__(self):
        self.events = []

    def __call__(self, event: QueueEvent) -> None:
        self.events.append(event)

    def serves(self):
        return [e for e in self.events if e.action == "serve"]

    def drops(self):
        return [e for e in self.events if e.action == "drop"]


class TestOutOfOrderBound:
    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_no_serve_exceeds_k_displacement(self, data):
        """For ANY put/drain interleaving, no served item overtakes more
        than k missing seqs — the elastic-relaxation contract."""
        expected = data.draw(st.integers(min_value=1, max_value=12),
                             label="expected")
        k = data.draw(st.integers(min_value=0, max_value=expected),
                      label="k")
        order, drain_after = _schedule(data, expected)
        queue = StageQueue("q", expected, bound=k)
        log = _EventLog()
        add_stream_observer(log)
        try:
            for step, seq in enumerate(order):
                if step in drain_after:
                    queue.begin_consume()
                    queue.drain()
                queue.put(seq, seq * 10)
            queue.begin_consume()
            queue.drain()
        finally:
            remove_stream_observer(log)
        for event in log.serves():
            assert event.displacement <= k
        assert queue.max_displacement <= k

    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_invariant_checker_accepts_all_legal_schedules(self, data):
        """The SchedLab auditor agrees: a *valve-gated* schedule (drains
        only begin once at most k items are unsettled, as the staleness
        start valve enforces in a pipeline) never trips the staleness or
        must-deliver audits."""
        expected = data.draw(st.integers(min_value=1, max_value=10),
                             label="expected")
        k = data.draw(st.integers(min_value=0, max_value=expected),
                      label="k")
        order, drain_after = _schedule(data, expected)
        queue = StageQueue("q", expected, bound=k)
        with InvariantChecker() as checker:
            for step, seq in enumerate(order):
                if step in drain_after and queue.missing_total() <= k:
                    queue.begin_consume()
                    queue.drain()
                queue.put(seq, seq)
            queue.begin_consume()
            queue.drain()
        assert checker.ok, checker.summary()

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_invariant_checker_flags_premature_drains(self, data):
        """The converse: begin a drain while more than k items are
        unsettled (what a forced-true valve fault causes) and the
        checker records a staleness violation."""
        expected = data.draw(st.integers(min_value=2, max_value=10),
                             label="expected")
        k = data.draw(st.integers(min_value=0, max_value=expected - 2),
                      label="k")
        arrive = data.draw(st.integers(min_value=0,
                                       max_value=expected - k - 2),
                           label="arrivals before the premature drain")
        queue = StageQueue("q", expected, bound=k)
        with InvariantChecker() as checker:
            for seq in range(arrive):
                queue.put(seq, seq)
            queue.begin_consume()
            queue.drain()
        assert not checker.ok
        assert any(v.kind == "staleness" for v in checker.violations)


class TestMustDeliver:
    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_must_items_survive_any_capacity_pressure(self, data):
        """However small the capacity and late the consumer, every
        must-deliver item is present once all puts have landed."""
        expected = data.draw(st.integers(min_value=1, max_value=12),
                             label="expected")
        k = data.draw(st.integers(min_value=0, max_value=expected),
                      label="k")
        capacity = data.draw(st.integers(min_value=1, max_value=4),
                             label="capacity")
        must = data.draw(st.sets(st.integers(min_value=0,
                                             max_value=expected - 1)),
                         label="must seqs")
        order, drain_after = _schedule(data, expected)
        queue = StageQueue("q", expected, bound=k, capacity=capacity,
                           must_seqs=must)
        log = _EventLog()
        add_stream_observer(log)
        try:
            for step, seq in enumerate(order):
                if step in drain_after:
                    queue.begin_consume()
                    queue.drain()
                queue.put(seq, seq)
        finally:
            remove_stream_observer(log)
        for seq in must:
            assert queue.arrived(seq), f"must seq {seq} was lost"
        for event in log.drops():
            assert not event.must
        assert queue.drops() <= k
        assert queue.must_complete()

    @given(seq=st.integers(min_value=0, max_value=7))
    @settings(max_examples=20, deadline=None)
    def test_shed_refuses_must_items(self, seq):
        queue = StageQueue("q", 8, bound=8)  # every seq is must by default
        with pytest.raises(FluidError):
            queue.shed(seq)


class TestFifoDegradation:
    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_k0_serves_exactly_the_contiguous_prefix_in_order(self, data):
        """k=0 is lossless FIFO: any drain serves the contiguous prefix,
        in seq order, and nothing is ever dropped."""
        expected = data.draw(st.integers(min_value=1, max_value=12),
                             label="expected")
        capacity = data.draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=4)),
            label="capacity")
        order, drain_after = _schedule(data, expected)
        queue = StageQueue("q", expected, bound=0, capacity=capacity,
                           must_seqs=frozenset())
        present = set()
        for step, seq in enumerate(order):
            if step in drain_after:
                served = queue.drain()
                prefix = []
                probe = 0
                while probe in present:
                    prefix.append(probe)
                    probe += 1
                assert [s for s, _ in served] == prefix
            queue.put(seq, seq)
            present.add(seq)
        assert queue.drops() == 0
        final = queue.drain()
        assert [s for s, _ in final] == list(range(expected))
        assert queue.max_displacement == 0

    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_drain_is_sorted_and_gap_bounded_for_any_k(self, data):
        expected = data.draw(st.integers(min_value=1, max_value=12),
                             label="expected")
        k = data.draw(st.integers(min_value=0, max_value=expected),
                      label="k")
        arrived = data.draw(st.sets(st.integers(min_value=0,
                                                max_value=expected - 1)),
                            label="arrived")
        queue = StageQueue("q", expected, bound=k)
        for seq in sorted(arrived):
            queue.put(seq, seq)
        served = [seq for seq, _ in queue.drain()]
        assert served == sorted(served)
        # The walk stops before overtaking gap k+1: every served seq has
        # at most k missing predecessors.
        for seq in served:
            gaps = sum(1 for earlier in range(seq)
                       if earlier not in arrived)
            assert gaps <= k


class TestSettlednessAndIdempotence:
    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_reput_is_idempotent_and_settledness_is_monotone(self, data):
        """Re-executions re-put seqs; totals must not double-count and a
        shed decision must be monotone (dropped stays dropped)."""
        expected = data.draw(st.integers(min_value=1, max_value=10),
                             label="expected")
        k = data.draw(st.integers(min_value=0, max_value=expected),
                      label="k")
        capacity = data.draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=3)),
            label="capacity")
        must = data.draw(st.sets(st.integers(min_value=0,
                                             max_value=expected - 1)),
                         label="must seqs")
        puts = data.draw(st.lists(
            st.integers(min_value=0, max_value=expected - 1),
            min_size=1, max_size=3 * expected), label="puts")
        queue = StageQueue("q", expected, bound=k, capacity=capacity,
                           must_seqs=must)
        last_settled = 0
        for seq in puts:
            before_dropped = queue.is_dropped(seq)
            queue.put(seq, seq)
            settled = queue.settled_total()
            assert settled >= last_settled
            last_settled = settled
            if before_dropped:
                assert queue.is_dropped(seq)
        assert queue.settled_total() == \
            queue.arrived_total() + queue.drops()
        assert queue.settled_total() <= expected
        # Every seq that was ever put is settled one way or the other.
        for seq in set(puts):
            assert queue.settled(seq)

    def test_dropped_tombstone_is_not_a_value(self):
        queue = StageQueue("q", 3, bound=1, capacity=1,
                           must_seqs=frozenset())
        queue.put(0, "a")
        assert queue.put(1, "b") == "drop"
        assert queue.is_dropped(1)
        assert DROPPED not in [value for _seq, value in queue.items()]
