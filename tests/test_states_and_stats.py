"""Unit tests for the task state machine table and statistics."""

import pytest

from repro.core.errors import StateError
from repro.core.states import (LEGAL_TRANSITIONS, TaskState, check_transition)
from repro.core.stats import RegionStats, TaskStats, TABLE3_STATES


class TestTransitions:
    @pytest.mark.parametrize("src,dst", [
        (TaskState.INIT, TaskState.START_CHECK),
        (TaskState.START_CHECK, TaskState.RUNNING),
        (TaskState.RUNNING, TaskState.END_CHECK),
        (TaskState.RUNNING, TaskState.COMPLETE),          # early termination
        (TaskState.END_CHECK, TaskState.COMPLETE),
        (TaskState.END_CHECK, TaskState.WAITING),
        (TaskState.WAITING, TaskState.COMPLETE),          # (1)
        (TaskState.WAITING, TaskState.RUNNING),           # (2)
        (TaskState.WAITING, TaskState.DEP_STALLED),       # (3)
        (TaskState.DEP_STALLED, TaskState.RUNNING),       # (4)
    ])
    def test_figure5_arcs_are_legal(self, src, dst):
        check_transition(src, dst)  # must not raise

    @pytest.mark.parametrize("src,dst", [
        (TaskState.COMPLETE, TaskState.RUNNING),
        (TaskState.INIT, TaskState.RUNNING),
        (TaskState.RUNNING, TaskState.WAITING),
        (TaskState.END_CHECK, TaskState.RUNNING),
        (TaskState.WAITING, TaskState.END_CHECK),
        (TaskState.DEP_STALLED, TaskState.WAITING),
    ])
    def test_illegal_arcs_raise(self, src, dst):
        with pytest.raises(StateError):
            check_transition(src, dst)

    def test_complete_is_terminal(self):
        assert LEGAL_TRANSITIONS[TaskState.COMPLETE] == frozenset()

    def test_every_state_in_table(self):
        assert set(LEGAL_TRANSITIONS) == set(TaskState)


class TestTaskStats:
    def test_visit_counting(self):
        stats = TaskStats("t")
        stats.enter(TaskState.INIT, 0.0)
        stats.enter(TaskState.START_CHECK, 1.0)
        stats.enter(TaskState.RUNNING, 3.0)
        assert stats.visits[TaskState.INIT] == 1
        assert stats.visits[TaskState.START_CHECK] == 1
        assert stats.visits[TaskState.RUNNING] == 1

    def test_residence_times(self):
        stats = TaskStats("t")
        stats.enter(TaskState.INIT, 0.0)
        stats.enter(TaskState.START_CHECK, 2.0)
        stats.enter(TaskState.RUNNING, 5.0)
        stats.finish(9.0)
        assert stats.time[TaskState.INIT] == pytest.approx(2.0)
        assert stats.time[TaskState.START_CHECK] == pytest.approx(3.0)
        assert stats.time[TaskState.RUNNING] == pytest.approx(4.0)

    def test_reentry_accumulates(self):
        stats = TaskStats("t")
        stats.enter(TaskState.RUNNING, 0.0)
        stats.enter(TaskState.WAITING, 1.0)
        stats.enter(TaskState.RUNNING, 2.0)
        stats.finish(4.0)
        assert stats.visits[TaskState.RUNNING] == 2
        assert stats.time[TaskState.RUNNING] == pytest.approx(3.0)

    def test_table3_rows_fold_wait_and_stall(self):
        stats = TaskStats("t")
        stats.enter(TaskState.WAITING, 0.0)
        stats.enter(TaskState.DEP_STALLED, 1.0)
        stats.enter(TaskState.RUNNING, 3.0)
        stats.finish(3.0)
        visit_row = stats.visit_row()
        time_row = stats.time_row()
        wait_index = TABLE3_STATES.index(TaskState.WAITING)
        assert visit_row[wait_index] == 2
        assert time_row[wait_index] == pytest.approx(3.0)


class TestRegionStats:
    def test_for_task_is_stable(self):
        stats = RegionStats("r")
        assert stats.for_task("a") is stats.for_task("a")

    def test_merge_accumulates(self):
        a = RegionStats("r")
        a.for_task("t").enter(TaskState.INIT, 0.0)
        a.for_task("t").finish(2.0)
        a.makespan = 5.0
        b = RegionStats("r")
        b.for_task("t").enter(TaskState.INIT, 0.0)
        b.for_task("t").finish(3.0)
        b.makespan = 7.0
        a.merge(b)
        assert a.for_task("t").visits[TaskState.INIT] == 2
        assert a.for_task("t").time[TaskState.INIT] == pytest.approx(5.0)
        assert a.makespan == pytest.approx(12.0)
