"""Edge-case tests for guard coordination and modulation pressure."""

import pytest

from repro import (FluidRegion, ModulationPolicy, NeverValve, PercentValve,
                   SimExecutor, TaskState)

from util import make_chain, make_pipeline


def run_sim(region, **kwargs):
    executor = SimExecutor(cores=4, **kwargs)
    executor.submit(region)
    return executor.run()


class TestModulationPressure:
    def test_pressure_accumulates_on_failures(self):
        policy = ModulationPolicy(fraction=0.5)
        region = make_pipeline(n=30, producer_cost=2.0, consumer_cost=0.1,
                               start_fraction=0.3)
        run_sim(region, modulation=policy)
        assert policy.failures >= 1
        assert policy.pressure > 0.0

    def test_zero_fraction_counts_failures_without_pressure(self):
        policy = ModulationPolicy(fraction=0.0)
        region = make_pipeline(n=30, producer_cost=2.0, consumer_cost=0.1,
                               start_fraction=0.3)
        run_sim(region, modulation=policy)
        assert policy.failures >= 1
        assert policy.pressure == 0.0

    def test_adjust_moves_toward_one(self):
        policy = ModulationPolicy(fraction=0.5)
        policy.pressure = 0.5
        assert policy.adjust(0.2) == pytest.approx(0.6)
        assert policy.adjust(1.0) == 1.0

    def test_pressure_bounded_below_one(self):
        policy = ModulationPolicy(fraction=0.9)

        class Dummy:
            spec = type("S", (), {"start_valves": ()})()
            parents = ()

        for _ in range(100):
            policy.on_quality_failure(Dummy())
        # Converges to (at most) full serialization, never beyond.
        assert policy.pressure <= 1.0
        assert policy.adjust(0.3) <= 1.0


class TestCancellationEdges:
    def test_cancel_flag_set_only_when_sensible(self):
        # In a chain with a fast leaf, middle tasks' re-runs may be
        # cancelled, but a task's *first* run is never cancelled unless
        # the executor opts in.
        region = make_chain(depth=3, n=20, exact_quality=True,
                            costs=[3.0, 1.0, 0.2])
        run_sim(region)
        for task in region.tasks:
            if task.stats.cancelled_runs:
                assert task.stats.runs >= 1  # at least one full run kept

    def test_cancel_first_runs_flag_changes_behaviour(self):
        def cancelled_total(flag):
            region = make_pipeline(n=40, producer_cost=3.0,
                                   consumer_cost=0.1, start_fraction=0.3,
                                   end_fraction=0.35)
            executor = SimExecutor(cores=4, cancel_first_runs=flag)
            executor.submit(region)
            executor.run()
            return region.graph.task("produce").stats.cancelled_runs

        # Lenient quality accepts the racing consumer early; with
        # cancel_first_runs the producer's first run is terminated.
        assert cancelled_total(True) >= 1
        assert cancelled_total(False) == 0


class TestStubbornIntermediate:
    def test_interior_task_without_quality_never_blocks_region(self):
        # All end valves impossible: the region must still finish by the
        # precision override, regardless of how deep the chain is.
        class Deep(FluidRegion):
            def build(self):
                n = 12
                src = self.input_data("src", list(range(n)))
                cells = [self.add_array(f"c{k}", [0] * n) for k in range(4)]
                counts = [self.add_count(f"ct{k}") for k in range(4)]

                def stage(k):
                    def body(ctx):
                        source = src.read() if k == 0 else cells[k - 1]
                        for i in range(n):
                            cells[k][i] = source[i] + 1
                            counts[k].add()
                            yield 0.5
                    return body

                previous = None
                for k in range(4):
                    start = []
                    if k:
                        start = [PercentValve(counts[k - 1], 0.25, n)]
                    end = [NeverValve()] if k == 3 else []
                    self.add_task(f"s{k}", stage(k), start_valves=start,
                                  end_valves=end,
                                  inputs=[src] if k == 0 else
                                         [cells[k - 1]],
                                  outputs=[cells[k]])

        region = Deep("deep")
        run_sim(region)
        assert region.complete
        assert region.output("c3") == [i + 4 for i in range(12)]


class TestReusedRegionGuards:
    def test_region_objects_are_single_shot(self):
        region = make_pipeline(n=10)
        run_sim(region)
        executor = SimExecutor(cores=2)
        executor.submit(region)
        # Tasks are already COMPLETE; re-running the same region object
        # must fail loudly rather than corrupt state.
        with pytest.raises(Exception):
            executor.run()

    def test_terminal_states_frozen(self):
        region = make_pipeline(n=10)
        run_sim(region)
        task = region.graph.task("consume")
        with pytest.raises(Exception):
            task.transition(TaskState.RUNNING, 0.0)
