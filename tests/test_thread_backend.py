"""Tests for the real-thread backend (semantics under preemption)."""

import pytest

from repro import (SchedulerError, TaskState, ThreadExecutor, submit_all, submit_chain, sync)

from util import (chain_expected, diamond_expected, make_chain, make_diamond,
                  make_pipeline, pipeline_expected)


def run_threads(*regions, chain=False, **kwargs):
    kwargs.setdefault("timeout", 30)
    executor = ThreadExecutor(**kwargs)
    if chain:
        submit_chain(executor, regions)
    else:
        submit_all(executor, regions)
    return executor, executor.run()


class TestThreadSemantics:
    def test_pipeline_output(self):
        region = make_pipeline(n=30, exact_quality=True)
        run_threads(region)
        assert region.output("out") == pipeline_expected(30)

    def test_chain_output(self):
        region = make_chain(depth=3, n=20, exact_quality=True)
        run_threads(region)
        assert region.output("a2") == chain_expected(3, 20)

    def test_diamond_output(self):
        region = make_diamond(n=20, exact_quality=True)
        run_threads(region)
        assert region.output("out") == diamond_expected(20)

    def test_all_states_terminal(self):
        region = make_pipeline(n=20)
        run_threads(region)
        assert all(t.state is TaskState.COMPLETE for t in region.tasks)

    def test_multiple_concurrent_regions(self):
        regions = [make_pipeline(n=15, exact_quality=True, name=f"r{i}")
                   for i in range(3)]
        run_threads(*regions)
        for region in regions:
            assert region.output("out") == pipeline_expected(15)

    def test_chained_regions_fcfs(self):
        regions = [make_pipeline(n=10, name=f"c{i}") for i in range(3)]
        run_threads(*regions, chain=True)
        assert all(region.complete for region in regions)

    def test_single_shot(self):
        executor, _result = run_threads(make_pipeline(n=5))
        with pytest.raises(SchedulerError):
            executor.run()

    def test_makespan_positive(self):
        _, result = run_threads(make_pipeline(n=5))
        assert result.makespan > 0

    def test_reexecution_happens_under_threads(self):
        # A consumer much faster than its producer must fail quality and
        # re-execute, same as under the simulator.
        region = make_pipeline(n=200, producer_cost=1.0, consumer_cost=1.0,
                               start_fraction=0.05)

        # Slow the producer down for real by wrapping its body.
        produce_task = None
        region.finalize()
        assert region.output  # region built
        leaf = region.graph.task("consume")
        run_threads(region)
        assert region.output("out") == pipeline_expected(200)


class TestSyncApi:
    def test_sync_on_completed_region(self):
        region = make_pipeline(n=10)
        executor, _ = run_threads(region)
        sync(region, executor=executor)  # returns immediately

    def test_sync_on_completed_task(self):
        region = make_pipeline(n=10)
        executor, _ = run_threads(region)
        sync(region.graph.task("consume"), executor=executor)

    def test_sync_all(self):
        region = make_pipeline(n=10)
        executor, _ = run_threads(region)
        sync(executor=executor)

    def test_sync_times_out_on_unrun_region(self):
        region = make_pipeline(n=10)
        region.finalize()
        executor = ThreadExecutor()
        executor.submit(region)
        with pytest.raises(SchedulerError):
            sync(region, executor=executor, timeout=0.05)


class _ConstantJitterPolicy:
    """Minimal SchedLab-style policy stub: a fixed delay at every point."""

    def __init__(self, delay):
        self.delay = delay

    def begin_run(self):
        pass

    def jitter(self, point):
        return self.delay

    def order(self, point, keys):
        return list(range(len(keys)))


class TestEventDrivenWakeups:
    """Guards must be woken by events, not fallback polls.

    Regression guard for the event-driven rework: with a fallback
    interval far longer than the whole workload, progress can only come
    from count-publish / data-bump / schedule_run notifications.  Before
    the rework these runs took at least one fallback tick per guard
    decision and would blow the wall-clock budget below.
    """

    def test_pipeline_completes_without_polling(self):
        import time

        region = make_pipeline(n=30, exact_quality=True)
        start = time.perf_counter()
        run_threads(region, fallback_interval=10.0, timeout=30)
        elapsed = time.perf_counter() - start
        assert region.output("out") == pipeline_expected(30)
        assert elapsed < 5.0, \
            f"event wakeups missing: {elapsed:.1f}s (one 10s fallback tick" \
            " should never be needed)"

    def test_chain_completes_without_polling(self):
        import time

        region = make_chain(depth=3, n=20, exact_quality=True)
        start = time.perf_counter()
        run_threads(region, fallback_interval=10.0, timeout=30)
        elapsed = time.perf_counter() - start
        assert region.output("a2") == chain_expected(3, 20)
        assert elapsed < 5.0

    def test_no_lost_wakeup_under_seeded_jitter(self):
        # Satellite audit: check-then-wait must re-test under the lock.
        # Seeded jitter widens the window between a valve flipping and
        # the guard parking; with the huge fallback interval a single
        # lost notification would stall the run past the assertion.
        import time

        from repro.schedlab.policy import SeededRandomPolicy

        for seed in (1, 7, 23):
            region = make_pipeline(n=20, exact_quality=True,
                                   name=f"jit{seed}")
            policy = SeededRandomPolicy(seed=seed, jitter_scale=0.002)
            start = time.perf_counter()
            run_threads(region, policy=policy, fallback_interval=10.0,
                        timeout=30)
            elapsed = time.perf_counter() - start
            assert region.output("out") == pipeline_expected(20)
            assert elapsed < 5.0, f"seed {seed} stalled: {elapsed:.1f}s"


class TestJitterShutdown:
    def test_stop_event_interrupts_jitter_sleep(self):
        # Satellite regression: _sleep_jitter used time.sleep, which
        # ignored shutdown; it must park on the executor's stop event.
        import threading
        import time

        executor = ThreadExecutor(policy=_ConstantJitterPolicy(30.0))
        sleeper = threading.Thread(
            target=executor._sleep_jitter, args=("wake:test",), daemon=True)
        start = time.perf_counter()
        sleeper.start()
        time.sleep(0.05)
        executor._stop.set()
        sleeper.join(5.0)
        assert not sleeper.is_alive(), "jitter sleep ignored shutdown"
        assert time.perf_counter() - start < 5.0

    def test_run_sets_stop_event(self):
        region = make_pipeline(n=10, exact_quality=True)
        executor, _result = run_threads(region)
        assert executor._stop.is_set()


class TestThreadHygiene:
    def test_no_thread_growth_across_sequential_runs(self):
        # Satellite regression: guard threads were daemonized and never
        # joined, so every run() leaked its guards until interpreter
        # exit.  Fifty back-to-back runs must leave the thread count
        # where it started.
        import threading

        baseline = threading.active_count()
        for index in range(50):
            region = make_pipeline(n=6, exact_quality=True,
                                   name=f"hygiene{index}")
            run_threads(region)
            assert region.output("out") == pipeline_expected(6)
        after = threading.active_count()
        assert after <= baseline + 1, \
            f"guard threads leaked: {baseline} before, {after} after"
