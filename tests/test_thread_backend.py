"""Tests for the real-thread backend (semantics under preemption)."""

import pytest

from repro import (SchedulerError, TaskState, ThreadExecutor, submit_all, submit_chain, sync)

from util import (chain_expected, diamond_expected, make_chain, make_diamond,
                  make_pipeline, pipeline_expected)


def run_threads(*regions, chain=False, **kwargs):
    kwargs.setdefault("timeout", 30)
    executor = ThreadExecutor(**kwargs)
    if chain:
        submit_chain(executor, regions)
    else:
        submit_all(executor, regions)
    return executor, executor.run()


class TestThreadSemantics:
    def test_pipeline_output(self):
        region = make_pipeline(n=30, exact_quality=True)
        run_threads(region)
        assert region.output("out") == pipeline_expected(30)

    def test_chain_output(self):
        region = make_chain(depth=3, n=20, exact_quality=True)
        run_threads(region)
        assert region.output("a2") == chain_expected(3, 20)

    def test_diamond_output(self):
        region = make_diamond(n=20, exact_quality=True)
        run_threads(region)
        assert region.output("out") == diamond_expected(20)

    def test_all_states_terminal(self):
        region = make_pipeline(n=20)
        run_threads(region)
        assert all(t.state is TaskState.COMPLETE for t in region.tasks)

    def test_multiple_concurrent_regions(self):
        regions = [make_pipeline(n=15, exact_quality=True, name=f"r{i}")
                   for i in range(3)]
        run_threads(*regions)
        for region in regions:
            assert region.output("out") == pipeline_expected(15)

    def test_chained_regions_fcfs(self):
        regions = [make_pipeline(n=10, name=f"c{i}") for i in range(3)]
        run_threads(*regions, chain=True)
        assert all(region.complete for region in regions)

    def test_single_shot(self):
        executor, _result = run_threads(make_pipeline(n=5))
        with pytest.raises(SchedulerError):
            executor.run()

    def test_makespan_positive(self):
        _, result = run_threads(make_pipeline(n=5))
        assert result.makespan > 0

    def test_reexecution_happens_under_threads(self):
        # A consumer much faster than its producer must fail quality and
        # re-execute, same as under the simulator.
        region = make_pipeline(n=200, producer_cost=1.0, consumer_cost=1.0,
                               start_fraction=0.05)

        # Slow the producer down for real by wrapping its body.
        produce_task = None
        region.finalize()
        assert region.output  # region built
        leaf = region.graph.task("consume")
        run_threads(region)
        assert region.output("out") == pipeline_expected(200)


class TestSyncApi:
    def test_sync_on_completed_region(self):
        region = make_pipeline(n=10)
        executor, _ = run_threads(region)
        sync(region, executor=executor)  # returns immediately

    def test_sync_on_completed_task(self):
        region = make_pipeline(n=10)
        executor, _ = run_threads(region)
        sync(region.graph.task("consume"), executor=executor)

    def test_sync_all(self):
        region = make_pipeline(n=10)
        executor, _ = run_threads(region)
        sync(executor=executor)

    def test_sync_times_out_on_unrun_region(self):
        region = make_pipeline(n=10)
        region.finalize()
        executor = ThreadExecutor()
        executor.submit(region)
        with pytest.raises(SchedulerError):
            sync(region, executor=executor, timeout=0.05)
