"""Tests for persistent bench baselines (repro.bench.baseline + CLI)."""

import json
import os

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.baseline import (SCHEMA, compare_to_baseline, load_baseline,
                                  save_baseline)
from repro.bench.harness import BenchRow


def make_row(app="app", input_name="in", latency=10.0, checks=20,
             skipped=0, reexecutions=1):
    return BenchRow(
        app=app, input_name=input_name,
        normalized_latency=latency / 12.0, normalized_accuracy=0.99,
        native_metric="m", native_value=1.0,
        precise_makespan=12.0, fluid_makespan=latency,
        valve_checks=checks, valve_checks_skipped=skipped,
        reexecutions=reexecutions)


CONFIG = dict(backend="sim", quick=True, memoization=True, app=None)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        rows = [make_row(), make_row(input_name="other", latency=5.0)]
        document = save_baseline(path, rows, **CONFIG)
        loaded = load_baseline(path)
        assert loaded == json.loads(json.dumps(document))
        assert loaded["schema"] == SCHEMA
        assert set(loaded["workloads"]) == {"app/in", "app/other"}
        entry = loaded["workloads"]["app/in"]
        assert entry["fluid_makespan"] == 10.0
        assert entry["valve_checks"] == 20
        assert entry["reexecutions"] == 1
        assert loaded["config"]["backend"] == "sim"

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "something-else/9"}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(str(path))

    def test_load_rejects_non_baseline_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestCompare:
    def _document(self, rows):
        from repro.bench.baseline import baseline_dict

        return baseline_dict(rows, **CONFIG)

    def test_identical_run_passes(self):
        rows = [make_row()]
        report = compare_to_baseline(self._document(rows), rows, **CONFIG)
        assert report.ok
        assert not report.regressions
        assert "PASS" in report.render()

    def test_latency_regression_fails(self):
        base = [make_row(latency=10.0)]
        current = [make_row(latency=12.0)]      # +20% > 15% tolerance
        report = compare_to_baseline(self._document(base), current,
                                     tolerance=0.15, **CONFIG)
        assert not report.ok
        assert len(report.regressions) == 1
        assert "REGRESSED" in report.render()

    def test_within_tolerance_passes(self):
        base = [make_row(latency=10.0)]
        current = [make_row(latency=11.0)]      # +10% <= 15%
        report = compare_to_baseline(self._document(base), current,
                                     tolerance=0.15, **CONFIG)
        assert report.ok

    def test_latency_improvement_passes(self):
        base = [make_row(latency=10.0)]
        current = [make_row(latency=6.0)]
        report = compare_to_baseline(self._document(base), current, **CONFIG)
        assert report.ok

    def test_missing_and_extra_workloads_reported_not_fatal(self):
        base = [make_row(input_name="gone"), make_row(input_name="both")]
        current = [make_row(input_name="both"), make_row(input_name="new")]
        report = compare_to_baseline(self._document(base), current, **CONFIG)
        assert report.ok
        assert report.missing == ["app/gone"]
        assert report.extra == ["app/new"]

    def test_backend_mismatch_is_fatal(self):
        rows = [make_row()]
        report = compare_to_baseline(
            self._document(rows), rows, backend="thread", quick=True,
            memoization=True, app=None)
        assert not report.ok
        assert report.config_mismatch
        assert "CONFIG MISMATCH" in report.render()

    def test_memoization_mismatch_is_note_only(self):
        rows = [make_row()]
        report = compare_to_baseline(
            self._document(rows), rows, backend="sim", quick=True,
            memoization=False, app=None)
        assert report.ok
        assert any("memoization" in note for note in report.notes)

    def test_valve_check_totals_rendered(self):
        base = [make_row(checks=100)]
        current = [make_row(checks=60, skipped=40)]
        report = compare_to_baseline(self._document(base), current, **CONFIG)
        text = report.render()
        assert "100 -> 60" in text
        assert "-40.0%" in text


class TestBaselineCli:
    def test_save_then_compare_passes(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_fft.json")
        assert bench_main(["--app", "fft", "--quick",
                           "--save-baseline", path]) == 0
        document = json.loads((tmp_path / "BENCH_fft.json").read_text())
        assert document["schema"] == SCHEMA
        assert "fft/N1K" in document["workloads"]
        capsys.readouterr()
        assert bench_main(["--app", "fft", "--quick",
                           "--compare", path]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out

    def test_compare_fails_on_seeded_regression(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_fft.json")
        assert bench_main(["--app", "fft", "--quick",
                           "--save-baseline", path]) == 0
        document = json.loads((tmp_path / "BENCH_fft.json").read_text())
        for entry in document["workloads"].values():
            entry["fluid_makespan"] *= 0.5   # pretend we used to be 2x faster
            entry["fluid_makespan_min"] *= 0.5
        (tmp_path / "BENCH_fft.json").write_text(json.dumps(document))
        capsys.readouterr()
        assert bench_main(["--app", "fft", "--quick",
                           "--compare", path]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "verdict: FAIL" in out

    def test_compare_missing_file_errors(self, tmp_path, capsys):
        assert bench_main(["--app", "fft", "--quick", "--compare",
                           str(tmp_path / "nope.json")]) == 1
        assert "cannot load baseline" in capsys.readouterr().err

    def test_no_valve_memo_records_more_checks(self, tmp_path):
        on_path = str(tmp_path / "on.json")
        off_path = str(tmp_path / "off.json")
        assert bench_main(["--app", "fft", "--quick",
                           "--save-baseline", on_path]) == 0
        assert bench_main(["--app", "fft", "--quick", "--no-valve-memo",
                           "--save-baseline", off_path]) == 0
        on = json.loads((tmp_path / "on.json").read_text())
        off = json.loads((tmp_path / "off.json").read_text())
        assert on["config"]["memoization"] is True
        assert off["config"]["memoization"] is False
        checks = {name: sum(w["valve_checks"]
                            for w in doc["workloads"].values())
                  for name, doc in (("on", on), ("off", off))}
        assert checks["on"] < checks["off"]
        # The simulator is deterministic: same virtual-time latencies.
        assert (on["workloads"]["fft/N1K"]["fluid_makespan"] ==
                off["workloads"]["fft/N1K"]["fluid_makespan"])

    def test_baseline_flags_reject_sweep_mode(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["--sweep", "fft",
                        "--save-baseline", str(tmp_path / "b.json")])

    def test_fluid_backend_thread_matrix(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_thread.json")
        assert bench_main(["--app", "fft", "--quick",
                           "--fluid-backend", "thread",
                           "--save-baseline", path]) == 0
        document = json.loads((tmp_path / "BENCH_thread.json").read_text())
        assert document["config"]["backend"] == "thread"
        assert "fft/N1K" in document["workloads"]


class TestMissingBaseline:
    """A missing baseline must fail loudly, never skip (the gate with no
    baseline is how regressions ship)."""

    def test_load_raises_missing_baseline_error(self, tmp_path):
        from repro.bench.baseline import MissingBaselineError

        with pytest.raises(MissingBaselineError, match="not found"):
            load_baseline(str(tmp_path / "nope.json"))

    def test_missing_baseline_error_is_a_file_not_found(self, tmp_path):
        from repro.bench.baseline import MissingBaselineError

        assert issubclass(MissingBaselineError, FileNotFoundError)
        with pytest.raises(FileNotFoundError):
            load_baseline(str(tmp_path / "nope.json"))

    def test_dispatch_gate_missing_file_exits_nonzero(self, tmp_path,
                                                      capsys):
        assert bench_main(["--backend", "process", "--compare",
                           str(tmp_path / "nope.json")]) == 1
        assert "cannot load baseline" in capsys.readouterr().err


class TestDispatchGate:
    """--backend process --compare: the batched-dispatch speedup gate."""

    def _baseline(self, tmp_path, **realcore):
        path = str(tmp_path / "BENCH_rc.json")
        rows = [make_row()]
        document = save_baseline(path, rows, **CONFIG)
        if realcore:
            document["realcore"] = realcore
            (tmp_path / "BENCH_rc.json").write_text(json.dumps(document))
        return path

    def test_gate_rejects_baseline_without_realcore(self, tmp_path, capsys):
        path = self._baseline(tmp_path)
        assert bench_main(["--backend", "process", "--compare", path]) == 1
        assert "realcore" in capsys.readouterr().err

    def test_gate_verdict_tracks_min_speedup(self, tmp_path, capsys,
                                             monkeypatch):
        import repro.bench.__main__ as cli
        from repro.bench.harness import DispatchBenchRow

        def fake_bench(**_kwargs):
            return DispatchBenchRow(
                workers=2, tasks=4, iterations=100, rounds=2, batch_size=8,
                legacy_seconds=2.0, pooled_seconds=1.0, outputs_match=True)

        monkeypatch.setattr(cli, "run_process_dispatch_bench", fake_bench)
        fast = self._baseline(tmp_path, min_speedup=1.3)
        assert bench_main(["--backend", "process", "--compare", fast]) == 0
        assert "PASS" in capsys.readouterr().out
        slow = self._baseline(tmp_path, min_speedup=3.0)
        assert bench_main(["--backend", "process", "--compare", slow]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_gate_fails_on_output_divergence(self, tmp_path, capsys,
                                             monkeypatch):
        import repro.bench.__main__ as cli
        from repro.bench.harness import DispatchBenchRow

        monkeypatch.setattr(
            cli, "run_process_dispatch_bench",
            lambda **_kwargs: DispatchBenchRow(
                workers=2, tasks=4, iterations=100, rounds=2, batch_size=8,
                legacy_seconds=2.0, pooled_seconds=1.0,
                outputs_match=False))
        path = self._baseline(tmp_path, min_speedup=1.3)
        assert bench_main(["--backend", "process", "--compare", path]) == 1
        assert "diverged" in capsys.readouterr().err

    def test_save_baseline_rejected_for_realcore_modes(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["--backend", "process",
                        "--save-baseline", str(tmp_path / "b.json")])

    def test_compare_rejected_for_thread_backend(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(["--backend", "thread",
                        "--compare", str(tmp_path / "b.json")])

    def test_committed_root_baseline_has_realcore_section(self):
        root = os.path.join(os.path.dirname(__file__), "..",
                            "BENCH_baseline.json")
        document = load_baseline(root)
        assert document["config"] == {"app": None, "backend": "sim",
                                      "memoization": True, "quick": True,
                                      "repeat": 1}
        realcore = document["realcore"]
        assert realcore["min_speedup"] >= 1.3
        assert realcore["workload"]["batch_size"] > 1
