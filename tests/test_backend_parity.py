"""Parity tests: the simulator and thread backends share one semantics.

Both executors drive the same :class:`~repro.core.guard.Coordinator`;
these tests check that for the same region the two backends produce the
same *outputs* (determinism of timing is only promised by the
simulator).  Includes a hypothesis sweep over random layered DAGs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import SimExecutor, ThreadExecutor, run_serial

from test_properties import build_dag_region, dag_specs
from util import (chain_expected, diamond_expected, make_chain,
                  make_diamond, make_pipeline, pipeline_expected)


def run_sim(region):
    executor = SimExecutor(cores=4)
    executor.submit(region)
    executor.run()
    return region


def run_threads(region):
    executor = ThreadExecutor(timeout=30)
    executor.submit(region)
    executor.run()
    return region


class TestTopologyParity:
    def test_pipeline_outputs_agree(self):
        sim = run_sim(make_pipeline(n=30, exact_quality=True))
        thread = run_threads(make_pipeline(n=30, exact_quality=True))
        assert sim.output("out") == thread.output("out") == \
            pipeline_expected(30)

    def test_chain_outputs_agree(self):
        sim = run_sim(make_chain(depth=3, n=20))
        thread = run_threads(make_chain(depth=3, n=20))
        assert sim.output("a2") == thread.output("a2") == \
            chain_expected(3, 20)

    def test_diamond_outputs_agree(self):
        sim = run_sim(make_diamond(n=20, exact_quality=True))
        thread = run_threads(make_diamond(n=20, exact_quality=True))
        assert sim.output("out") == thread.output("out") == \
            diamond_expected(20)

    def test_racing_pipeline_repairs_on_both_backends(self):
        config = dict(n=50, producer_cost=2.0, consumer_cost=0.1,
                      start_fraction=0.3, exact_quality=True)
        sim = run_sim(make_pipeline(**config))
        thread = run_threads(make_pipeline(**config))
        assert sim.output("out") == pipeline_expected(50)
        assert thread.output("out") == pipeline_expected(50)
        # Both backends observed at least one quality failure.
        assert sim.graph.task("consume").stats.quality_failures >= 1


@settings(max_examples=10, deadline=None)
@given(dag_specs())
def test_random_dags_agree_across_backends(spec):
    nodes, costs, fraction = spec
    sim_region, expected = build_dag_region(nodes, costs, fraction, n=8)
    thread_region, _ = build_dag_region(nodes, costs, fraction, n=8)
    run_sim(sim_region)
    run_threads(thread_region)
    children = [[] for _ in nodes]
    for node, parents in enumerate(nodes):
        for p in parents:
            children[p].append(node)
    for node, kids in enumerate(children):
        if not kids:  # leaves demanded exactness on both backends
            assert list(sim_region.datas[f"d{node}"].read()) == \
                list(thread_region.datas[f"d{node}"].read()) == \
                expected[node]


class TestStatsParity:
    def test_both_backends_record_visits(self):
        from repro.core.states import TaskState
        sim = run_sim(make_pipeline(n=20))
        thread = run_threads(make_pipeline(n=20))
        for region in (sim, thread):
            for task in region.tasks:
                assert task.stats.visits[TaskState.RUNNING] >= 1
                assert task.stats.visits[TaskState.COMPLETE] == 1
