"""Parity tests: the simulator, thread and process backends share one
semantics.

All three executors drive the same :class:`~repro.core.guard.Coordinator`;
these tests check that for the same region the backends produce the same
*outputs* (determinism of timing is only promised by the simulator), and
that fully-serialized valve settings produce the same deterministic
re-execution counts everywhere.  Includes a hypothesis sweep over random
layered DAGs.
"""

from hypothesis import given, settings

from repro import ProcessExecutor, SimExecutor, ThreadExecutor

from test_properties import build_dag_region, dag_specs
from util import (chain_expected, diamond_expected, make_chain,
                  make_diamond, make_pipeline, pipeline_expected)


def run_sim(region):
    executor = SimExecutor(cores=4)
    executor.submit(region)
    executor.run()
    return region


def run_threads(region):
    executor = ThreadExecutor(timeout=30)
    executor.submit(region)
    executor.run()
    return region


def run_process(region):
    executor = ProcessExecutor(workers=2, timeout=60)
    executor.submit(region)
    executor.run()
    return region


ALL_BACKENDS = [run_sim, run_threads, run_process]


class TestTopologyParity:
    def test_pipeline_outputs_agree(self):
        outputs = [run(make_pipeline(n=30, exact_quality=True)).output("out")
                   for run in ALL_BACKENDS]
        assert outputs == [pipeline_expected(30)] * len(ALL_BACKENDS)

    def test_chain_outputs_agree(self):
        outputs = [run(make_chain(depth=3, n=20)).output("a2")
                   for run in ALL_BACKENDS]
        assert outputs == [chain_expected(3, 20)] * len(ALL_BACKENDS)

    def test_diamond_outputs_agree(self):
        outputs = [run(make_diamond(n=20, exact_quality=True)).output("out")
                   for run in ALL_BACKENDS]
        assert outputs == [diamond_expected(20)] * len(ALL_BACKENDS)

    def test_racing_pipeline_repairs_on_all_backends(self):
        config = dict(n=50, producer_cost=2.0, consumer_cost=0.1,
                      start_fraction=0.3, exact_quality=True)
        sim = run_sim(make_pipeline(**config))
        thread = run_threads(make_pipeline(**config))
        process = run_process(make_pipeline(**config))
        assert sim.output("out") == pipeline_expected(50)
        assert thread.output("out") == pipeline_expected(50)
        assert process.output("out") == pipeline_expected(50)
        # The simulator deterministically observed a quality failure; the
        # real-time backends may legitimately win the race, but whenever
        # the end valve rejected a run they must also have re-executed.
        assert sim.graph.task("consume").stats.quality_failures >= 1
        for region in (thread, process):
            consume = region.graph.task("consume")
            assert consume.stats.runs >= 1 + consume.stats.quality_failures


class TestDeterministicReruns:
    """Fully-serialized valves give the same run counts on every backend."""

    def test_pipeline_serialized_runs_once_everywhere(self):
        for run in ALL_BACKENDS:
            region = run(make_pipeline(n=20, start_fraction=1.0,
                                       exact_quality=True))
            consume = region.graph.task("consume")
            assert consume.stats.runs == 1, run.__name__
            assert consume.stats.quality_failures == 0, run.__name__

    def test_chain_serialized_runs_once_everywhere(self):
        for run in ALL_BACKENDS:
            region = run(make_chain(depth=3, n=12, start_fraction=1.0))
            for task in region.tasks:
                assert task.stats.runs == 1, (run.__name__, task.name)
                assert task.stats.quality_failures == 0

    def test_diamond_serialized_runs_once_everywhere(self):
        for run in ALL_BACKENDS:
            region = run(make_diamond(n=12, start_fraction=1.0,
                                      exact_quality=True))
            for task in region.tasks:
                assert task.stats.runs == 1, (run.__name__, task.name)


@settings(max_examples=10, deadline=None)
@given(dag_specs())
def test_random_dags_agree_across_backends(spec):
    nodes, costs, fraction = spec
    sim_region, expected = build_dag_region(nodes, costs, fraction, n=8)
    thread_region, _ = build_dag_region(nodes, costs, fraction, n=8)
    run_sim(sim_region)
    run_threads(thread_region)
    children = [[] for _ in nodes]
    for node, parents in enumerate(nodes):
        for p in parents:
            children[p].append(node)
    for node, kids in enumerate(children):
        if not kids:  # leaves demanded exactness on both backends
            assert list(sim_region.datas[f"d{node}"].read()) == \
                list(thread_region.datas[f"d{node}"].read()) == \
                expected[node]


@settings(max_examples=5, deadline=None)
@given(dag_specs())
def test_random_dags_agree_on_process_backend(spec):
    nodes, costs, fraction = spec
    region, expected = build_dag_region(nodes, costs, fraction, n=8)
    run_process(region)
    children = [[] for _ in nodes]
    for node, parents in enumerate(nodes):
        for p in parents:
            children[p].append(node)
    for node, kids in enumerate(children):
        if not kids:
            assert list(region.datas[f"d{node}"].read()) == expected[node]


class TestStatsParity:
    def test_all_backends_record_visits(self):
        from repro.core.states import TaskState
        for run in ALL_BACKENDS:
            region = run(make_pipeline(n=20))
            for task in region.tasks:
                assert task.stats.visits[TaskState.RUNNING] >= 1
                assert task.stats.visits[TaskState.COMPLETE] == 1
