"""Parity tests: the simulator, thread and process backends share one
semantics.

All three executors drive the same :class:`~repro.core.guard.Coordinator`;
these tests check that for the same region the backends produce the same
*outputs* (determinism of timing is only promised by the simulator), and
that fully-serialized valve settings produce the same deterministic
re-execution counts everywhere.  Includes a hypothesis sweep over random
layered DAGs.
"""

from hypothesis import given, settings

from repro import ProcessExecutor, SimExecutor, ThreadExecutor

from test_properties import build_dag_region, dag_specs
from util import (chain_expected, diamond_expected, make_chain,
                  make_diamond, make_pipeline, pipeline_expected)


def run_sim(region):
    executor = SimExecutor(cores=4)
    executor.submit(region)
    executor.run()
    return region


def run_threads(region):
    executor = ThreadExecutor(timeout=30)
    executor.submit(region)
    executor.run()
    return region


def run_process(region):
    executor = ProcessExecutor(workers=2, timeout=60)
    executor.submit(region)
    executor.run()
    return region


ALL_BACKENDS = [run_sim, run_threads, run_process]


class TestTopologyParity:
    def test_pipeline_outputs_agree(self):
        outputs = [run(make_pipeline(n=30, exact_quality=True)).output("out")
                   for run in ALL_BACKENDS]
        assert outputs == [pipeline_expected(30)] * len(ALL_BACKENDS)

    def test_chain_outputs_agree(self):
        outputs = [run(make_chain(depth=3, n=20)).output("a2")
                   for run in ALL_BACKENDS]
        assert outputs == [chain_expected(3, 20)] * len(ALL_BACKENDS)

    def test_diamond_outputs_agree(self):
        outputs = [run(make_diamond(n=20, exact_quality=True)).output("out")
                   for run in ALL_BACKENDS]
        assert outputs == [diamond_expected(20)] * len(ALL_BACKENDS)

    def test_racing_pipeline_repairs_on_all_backends(self):
        config = dict(n=50, producer_cost=2.0, consumer_cost=0.1,
                      start_fraction=0.3, exact_quality=True)
        sim = run_sim(make_pipeline(**config))
        thread = run_threads(make_pipeline(**config))
        process = run_process(make_pipeline(**config))
        assert sim.output("out") == pipeline_expected(50)
        assert thread.output("out") == pipeline_expected(50)
        assert process.output("out") == pipeline_expected(50)
        # The simulator deterministically observed a quality failure; the
        # real-time backends may legitimately win the race, but whenever
        # the end valve rejected a run they must also have re-executed.
        assert sim.graph.task("consume").stats.quality_failures >= 1
        for region in (thread, process):
            consume = region.graph.task("consume")
            assert consume.stats.runs >= 1 + consume.stats.quality_failures


class TestDeterministicReruns:
    """Fully-serialized valves give the same run counts on every backend."""

    def test_pipeline_serialized_runs_once_everywhere(self):
        for run in ALL_BACKENDS:
            region = run(make_pipeline(n=20, start_fraction=1.0,
                                       exact_quality=True))
            consume = region.graph.task("consume")
            assert consume.stats.runs == 1, run.__name__
            assert consume.stats.quality_failures == 0, run.__name__

    def test_chain_serialized_runs_once_everywhere(self):
        for run in ALL_BACKENDS:
            region = run(make_chain(depth=3, n=12, start_fraction=1.0))
            for task in region.tasks:
                assert task.stats.runs == 1, (run.__name__, task.name)
                assert task.stats.quality_failures == 0

    def test_diamond_serialized_runs_once_everywhere(self):
        for run in ALL_BACKENDS:
            region = run(make_diamond(n=12, start_fraction=1.0,
                                      exact_quality=True))
            for task in region.tasks:
                assert task.stats.runs == 1, (run.__name__, task.name)


@settings(max_examples=10, deadline=None)
@given(dag_specs())
def test_random_dags_agree_across_backends(spec):
    nodes, costs, fraction = spec
    sim_region, expected = build_dag_region(nodes, costs, fraction, n=8)
    thread_region, _ = build_dag_region(nodes, costs, fraction, n=8)
    run_sim(sim_region)
    run_threads(thread_region)
    children = [[] for _ in nodes]
    for node, parents in enumerate(nodes):
        for p in parents:
            children[p].append(node)
    for node, kids in enumerate(children):
        if not kids:  # leaves demanded exactness on both backends
            assert list(sim_region.datas[f"d{node}"].read()) == \
                list(thread_region.datas[f"d{node}"].read()) == \
                expected[node]


@settings(max_examples=5, deadline=None)
@given(dag_specs())
def test_random_dags_agree_on_process_backend(spec):
    nodes, costs, fraction = spec
    region, expected = build_dag_region(nodes, costs, fraction, n=8)
    run_process(region)
    children = [[] for _ in nodes]
    for node, parents in enumerate(nodes):
        for p in parents:
            children[p].append(node)
    for node, kids in enumerate(children):
        if not kids:
            assert list(region.datas[f"d{node}"].read()) == expected[node]


class TestStatsParity:
    def test_all_backends_record_visits(self):
        from repro.core.states import TaskState
        for run in ALL_BACKENDS:
            region = run(make_pipeline(n=20))
            for task in region.tasks:
                assert task.stats.visits[TaskState.RUNNING] >= 1
                assert task.stats.visits[TaskState.COMPLETE] == 1


# ---------------------------------------------------------------- memoization

def make_cross_wake(n_a=8, n_b=60, pace=0.0, name=None):
    """Two producers, one consumer gated on both counts.

    Once the fast producer (``a``) finishes, every wakeup caused by the
    slow producer's count re-tests the already-frozen ``a`` valve — the
    workload that valve memoization exists to short-circuit.  ``pace``
    adds a real sleep per ``b`` element so the consumer guard observes
    individual publishes instead of coalescing them.
    """
    import time as _time

    from repro import FluidRegion, PercentValve
    from repro.core.valves import DataFinalValve

    class CrossWake(FluidRegion):
        def build(self):
            src = self.input_data("src", list(range(max(n_a, n_b))))
            go = self.add_data("go", 0)
            a = self.add_array("a", [0] * n_a)
            b = self.add_array("b", [0] * n_b)
            out = self.add_array("out", [0] * n_b)
            ct_a = self.add_count("ct_a")
            ct_b = self.add_count("ct_b")

            def header(ctx):
                go.write(1)
                yield 1.0

            def produce_a(ctx):
                data = src.read()
                for i in range(n_a):
                    a[i] = data[i] * 2
                    ct_a.add()
                    yield 1.0

            def produce_b(ctx):
                data = src.read()
                for i in range(n_b):
                    if pace:
                        _time.sleep(pace)
                    b[i] = data[i] * 3
                    ct_b.add()
                    yield 1.0

            def consume(ctx):
                for i in range(n_b):
                    out[i] = b[i] + (a[i % n_a] if n_a else 0)
                    yield 1.0

            self.add_task("header", header, inputs=[src], outputs=[go])
            self.add_task("produce_a", produce_a,
                          start_valves=[DataFinalValve(go)],
                          inputs=[go, src], outputs=[a])
            self.add_task("produce_b", produce_b,
                          start_valves=[DataFinalValve(go)],
                          inputs=[go, src], outputs=[b])
            self.add_task("consume", consume,
                          start_valves=[PercentValve(ct_a, 1.0, n_a),
                                        PercentValve(ct_b, 1.0, n_b)],
                          inputs=[a, b], outputs=[out])

    return CrossWake(name)


def cross_wake_expected(n_a=8, n_b=60):
    return [3 * i + 2 * (i % n_a) for i in range(n_b)]


def _valve_counters(region):
    return (sum(v.checks for v in region.valves),
            sum(v.checks_skipped for v in region.valves))


class TestMemoizationParity:
    """Valve memoization must never change results, only skip work."""

    def _run_memo(self, runner, builder, memo):
        from repro.core.valves import set_memoization

        previous = set_memoization(memo)
        try:
            return runner(builder())
        finally:
            set_memoization(previous)

    def test_sim_kmeans_invariant(self):
        from repro.apps.kmeans import KMeansApp
        from repro.workloads import synthetic_image

        def build():
            return KMeansApp(synthetic_image(20, 20, diversity=3, noise=6.0,
                                             seed=3),
                             num_clusters=3, epochs=3)

        runs = {memo: self._run_memo(lambda app: app.run_fluid(),
                                     build, memo)
                for memo in (False, True)}
        assert runs[False].makespan == runs[True].makespan
        assert runs[False].error == runs[True].error

    def test_sim_bellman_ford_invariant(self):
        import numpy as np

        from repro.apps.bellman_ford import BellmanFordApp
        from repro.workloads import random_graph

        def build():
            return BellmanFordApp(random_graph(200, 800, seed=13),
                                  iterations=4)

        runs = {memo: self._run_memo(lambda app: app.run_fluid(),
                                     build, memo)
                for memo in (False, True)}
        assert runs[False].makespan == runs[True].makespan
        assert np.array_equal(np.asarray(runs[False].output),
                              np.asarray(runs[True].output))

    def test_thread_fewer_evaluations_same_output(self):
        results = {}
        for memo in (False, True):
            region = self._run_memo(
                run_threads, lambda: make_cross_wake(pace=0.001), memo)
            assert region.output("out") == cross_wake_expected()
            results[memo] = _valve_counters(region)
        checks_off, skipped_off = results[False]
        checks_on, skipped_on = results[True]
        assert skipped_off == 0
        # With memoization on, a strict subset of the same wakeup-driven
        # check() calls is actually evaluated.
        assert skipped_on > 0
        assert checks_on < checks_on + skipped_on

    def test_process_fewer_evaluations_same_output(self):
        results = {}
        for memo in (False, True):
            region = self._run_memo(
                run_process, lambda: make_cross_wake(), memo)
            assert region.output("out") == cross_wake_expected()
            results[memo] = _valve_counters(region)
        checks_off, skipped_off = results[False]
        checks_on, skipped_on = results[True]
        assert skipped_off == 0
        assert skipped_on > 0
        assert checks_on < checks_off
