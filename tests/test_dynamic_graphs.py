"""Tests for dynamic task graphs (the paper's Section-8 extension).

A running task may spawn successors via ``ctx.spawn`` — e.g. one
consumer per item a scan discovers ("producer early-termination with
non-fixed consumer count").  These tests cover the scan/worker pattern
on all three executors, the structural restrictions, and valve gating
of spawned tasks.
"""

import pytest

from repro import (FluidRegion, GraphError, PercentValve, SimExecutor,
                   TaskState, ThreadExecutor, run_serial)


class ScatterRegion(FluidRegion):
    """A scan task spawns one worker per discovered bucket."""

    def __init__(self, items=12, buckets=3, name=None):
        self.items = items
        self.buckets = buckets
        super().__init__(name)

    def build(self):
        items = self.items
        src = self.input_data("src", list(range(items)))
        found = self.add_array("found", [])
        self.results = {}

        def scan(ctx):
            seen = set()
            for index in range(items):
                bucket = src.read()[index] % self.buckets
                if bucket not in seen:
                    seen.add(bucket)
                    self._spawn_worker(ctx, bucket)
                found.read().append(index)
                found.touch()
                yield 2.0

        self.add_task("scan", scan, inputs=[src], outputs=[found])

    def _spawn_worker(self, ctx, bucket):
        out = self.add_array(f"out_{bucket}", [0])

        def worker(ctx2, bucket=bucket, out=out):
            total = 0
            for value in range(bucket, self.items, self.buckets):
                total += value
                yield 1.0
            out[0] = total

        ctx.spawn(f"worker_{bucket}", worker,
                  inputs=[self.datas["found"]], outputs=[out])
        self.results[bucket] = out


def expected_bucket_sums(items, buckets):
    return {b: sum(range(b, items, buckets)) for b in range(buckets)}


class TestSimulatorDynamic:
    def test_spawned_workers_run_and_complete(self):
        region = ScatterRegion(items=12, buckets=3, name="scatter")
        executor = SimExecutor(cores=4)
        executor.submit(region)
        executor.run()
        assert region.complete
        assert len(region.tasks) == 1 + 3
        sums = {b: cell[0] for b, cell in region.results.items()}
        assert sums == expected_bucket_sums(12, 3)

    def test_spawned_tasks_counted_in_graph(self):
        region = ScatterRegion(items=9, buckets=3)
        executor = SimExecutor(cores=4)
        executor.submit(region)
        executor.run()
        assert len(region.graph) == 4
        scan = region.graph.task("scan")
        assert {t.name for t in scan.children} == \
            {"worker_0", "worker_1", "worker_2"}
        assert scan.state is TaskState.COMPLETE

    def test_trace_records_spawn_events(self):
        region = ScatterRegion(items=9, buckets=3)
        executor = SimExecutor(cores=4, trace=True)
        executor.submit(region)
        result = executor.run()
        assert result.trace.count("spawn") == 3

    def test_spawned_task_with_start_valve(self):
        class Gated(FluidRegion):
            def build(self):
                n = 20
                src = self.input_data("src", list(range(n)))
                mid = self.add_array("mid", [0] * n)
                ct = self.add_count("ct")
                self.out = self.add_array("out", [0] * n)
                region = self

                def produce(ctx):
                    spawned = False
                    for i in range(n):
                        mid[i] = src.read()[i] * 2
                        ct.add()
                        if not spawned:
                            spawned = True

                            def consume(ctx2):
                                for j in range(n):
                                    region.out[j] = mid[j] + 1
                                    yield 1.0

                            ctx.spawn("consume", consume,
                                      start_valves=[PercentValve(
                                          ct, 0.5, n)],
                                      end_valves=[PercentValve(
                                          ct, 1.0, n)],
                                      inputs=[mid], outputs=[region.out])
                        yield 1.0

                self.add_task("produce", produce, inputs=[src],
                              outputs=[mid])

        region = Gated("gated")
        executor = SimExecutor(cores=4)
        executor.submit(region)
        executor.run()
        assert region.complete
        assert region.out.read() == [2 * i + 1 for i in range(20)]


class TestSerialDynamic:
    def test_serial_runs_spawned_tasks(self):
        region = ScatterRegion(items=12, buckets=3)
        run_serial(region)
        sums = {b: cell[0] for b, cell in region.results.items()}
        assert sums == expected_bucket_sums(12, 3)

    def test_serial_matches_fluid(self):
        serial = ScatterRegion(items=15, buckets=3)
        run_serial(serial)
        fluid = ScatterRegion(items=15, buckets=3)
        executor = SimExecutor(cores=4)
        executor.submit(fluid)
        executor.run()
        assert {b: c[0] for b, c in serial.results.items()} == \
            {b: c[0] for b, c in fluid.results.items()}


class TestThreadDynamic:
    def test_thread_backend_runs_spawned_tasks(self):
        region = ScatterRegion(items=12, buckets=3)
        executor = ThreadExecutor(timeout=30)
        executor.submit(region)
        executor.run()
        assert region.complete
        sums = {b: cell[0] for b, cell in region.results.items()}
        assert sums == expected_bucket_sums(12, 3)


class TestRestrictions:
    def test_spawn_without_host_rejected(self):
        region = ScatterRegion(items=6, buckets=2)
        region.finalize()
        scan = region.graph.task("scan")
        scan.state = TaskState.RUNNING
        with pytest.raises(GraphError, match="dynamic"):
            region.spawn_task(scan, "late", lambda ctx: iter(()))

    def test_spawn_from_non_running_task_rejected(self):
        region = ScatterRegion(items=6, buckets=2)
        region.finalize()
        region.dynamic_host = object.__new__(SimExecutor)  # placeholder
        scan = region.graph.task("scan")
        with pytest.raises(GraphError, match="RUNNING"):
            region.spawn_task(scan, "late", lambda ctx: iter(()))

    def test_output_already_produced_rejected(self):
        class BadSpawn(FluidRegion):
            def build(self):
                out = self.add_array("out", [0])

                def body(ctx):
                    yield 1.0

                    def dup(ctx2):
                        yield 1.0

                    ctx.spawn("dup", dup, outputs=[out])

                self.add_task("root", body, outputs=[out])

        executor = SimExecutor(cores=2)
        executor.submit(BadSpawn("badspawn"))
        with pytest.raises(Exception, match="already has producer"):
            executor.run()

    def test_duplicate_dynamic_name_rejected(self):
        class DupName(FluidRegion):
            def build(self):
                mid = self.add_array("mid", [0])

                def body(ctx):
                    yield 1.0

                    def child(ctx2):
                        yield 1.0

                    extra = self.add_array("extra", [0])
                    ctx.spawn("root", child, inputs=[mid],
                              outputs=[extra])

                self.add_task("root", body, outputs=[mid])

        executor = SimExecutor(cores=2)
        executor.submit(DupName("dupname"))
        with pytest.raises(Exception, match="duplicate task name"):
            executor.run()

    def test_demoting_end_valved_leaf_rejected(self):
        class Demote(FluidRegion):
            def build(self):
                from repro import AlwaysValve
                mid = self.add_array("mid", [0])
                self_region = self

                def body(ctx):
                    yield 1.0

                    def child(ctx2):
                        yield 1.0

                    extra = self_region.add_array("extra", [0])
                    ctx.spawn("child", child, inputs=[mid],
                              outputs=[extra])

                self.add_task("root", body, outputs=[mid],
                              end_valves=[AlwaysValve()])

        executor = SimExecutor(cores=2)
        executor.submit(Demote("demote"))
        with pytest.raises(Exception, match="end valves"):
            executor.run()
