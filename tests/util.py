"""Shared builders for the test suite: parametric Fluid regions.

These construct the canonical topologies of Figure 1(a):

* :func:`make_pipeline` — single producer -> consumer;
* :func:`make_chain` — an N-task chain (Bellman-Ford / NN shape);
* :func:`make_diamond` — one producer, two middle tasks, one joiner
  (multi-producer/multi-consumer shape, FFT/DCT class).

Every builder returns the region; task bodies compute simple integer
transformations so tests can assert exact outputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import (FluidRegion, PercentValve, PredicateValve, Valve)


def make_pipeline(n: int = 50, start_fraction: float = 0.4,
                  producer_cost: float = 1.0, consumer_cost: float = 1.0,
                  end_fraction: Optional[float] = 1.0,
                  exact_quality: bool = False,
                  name: Optional[str] = None) -> FluidRegion:
    """producer doubles, consumer adds one; expected out[i] = 2*i + 1.

    ``exact_quality`` swaps the time-based end valve for a content check
    (the output must equal the precise answer); use it in tests that
    assert exact outputs on the *thread* backend, where uncontrolled
    thread speeds make time-based quality bars legitimately accept
    stale reads.
    """

    class Pipeline(FluidRegion):
        def build(self):
            src = self.input_data("src", list(range(n)))
            mid = self.add_array("mid", [0] * n)
            out = self.add_array("out", [0] * n)
            ct = self.add_count("ct")

            def produce(ctx):
                data = src.read()
                for i in range(n):
                    mid[i] = data[i] * 2
                    ct.add()
                    yield producer_cost

            def consume(ctx):
                for i in range(n):
                    out[i] = mid[i] + 1
                    yield consumer_cost

            start: List[Valve] = [PercentValve(ct, start_fraction, n)]
            end: List[Valve] = []
            if exact_quality:
                end.append(PredicateValve(
                    lambda: all(out[i] == 2 * i + 1 for i in range(n)),
                    name="exact"))
            elif end_fraction is not None:
                end.append(PercentValve(ct, end_fraction, n))
            self.add_task("produce", produce, inputs=[src], outputs=[mid])
            self.add_task("consume", consume, start_valves=start,
                          end_valves=end, inputs=[mid], outputs=[out])

    return Pipeline(name)


def pipeline_expected(n: int) -> List[int]:
    return [2 * i + 1 for i in range(n)]


def make_chain(depth: int = 3, n: int = 40,
               start_fraction: float = 0.3,
               costs: Optional[Sequence[float]] = None,
               exact_quality: bool = True,
               name: Optional[str] = None) -> FluidRegion:
    """A depth-task chain; stage k adds 1 to every element.

    Expected out[i] = i + depth.  With ``exact_quality`` the leaf's end
    valve demands the exact precise answer, forcing re-execution chains.
    """
    if costs is None:
        costs = [1.0] * depth
    if len(costs) != depth:
        raise ValueError("need one cost per stage")

    class Chain(FluidRegion):
        def build(self):
            src = self.input_data("src", list(range(n)))
            arrays = [self.add_array(f"a{k}", [0] * n) for k in range(depth)]
            counts = [self.add_count(f"ct{k}") for k in range(depth)]

            def stage_body(k):
                def body(ctx):
                    source = src.read() if k == 0 else arrays[k - 1]
                    for i in range(n):
                        arrays[k][i] = source[i] + 1
                        counts[k].add()
                        yield costs[k]
                return body

            previous = None
            for k in range(depth):
                start = []
                if k > 0:
                    start = [PercentValve(counts[k - 1], start_fraction, n)]
                end = []
                if k == depth - 1 and exact_quality:
                    target = arrays[k]
                    end = [PredicateValve(
                        lambda target=target: all(
                            target[i] == i + depth for i in range(n)),
                        name="exact")]
                inputs = [src] if k == 0 else [arrays[k - 1]]
                previous = self.add_task(
                    f"t{k}", stage_body(k), start_valves=start,
                    end_valves=end, inputs=inputs, outputs=[arrays[k]])

    return Chain(name)


def chain_expected(depth: int, n: int) -> List[int]:
    return [i + depth for i in range(n)]


def make_diamond(n: int = 40, start_fraction: float = 0.4,
                 exact_quality: bool = False,
                 name: Optional[str] = None) -> FluidRegion:
    """root -> (left, right) -> join; join[i] = left[i] + right[i].

    Expected out[i] = (i + 1) + (i * 2) = 3*i + 1.
    """

    class Diamond(FluidRegion):
        def build(self):
            src = self.input_data("src", list(range(n)))
            base = self.add_array("base", [0] * n)
            left = self.add_array("left", [0] * n)
            right = self.add_array("right", [0] * n)
            out = self.add_array("out", [0] * n)
            ct0 = self.add_count("ct0")
            ctl = self.add_count("ctl")
            ctr = self.add_count("ctr")

            def root(ctx):
                data = src.read()
                for i in range(n):
                    base[i] = data[i]
                    ct0.add()
                    yield 1.0

            def go_left(ctx):
                for i in range(n):
                    left[i] = base[i] + 1
                    ctl.add()
                    yield 1.0

            def go_right(ctx):
                for i in range(n):
                    right[i] = base[i] * 2
                    ctr.add()
                    yield 1.0

            def join(ctx):
                for i in range(n):
                    out[i] = left[i] + right[i]
                    yield 1.0

            self.add_task("root", root, inputs=[src], outputs=[base])
            self.add_task("left", go_left, inputs=[base], outputs=[left],
                          start_valves=[PercentValve(ct0, start_fraction, n)])
            self.add_task("right", go_right, inputs=[base], outputs=[right],
                          start_valves=[PercentValve(ct0, start_fraction, n)])
            if exact_quality:
                end: List[Valve] = [PredicateValve(
                    lambda: all(out[i] == 3 * i + 1 for i in range(n)),
                    name="exact")]
            else:
                end = [PercentValve(ctl, 1.0, n),
                       PercentValve(ctr, 1.0, n)]
            self.add_task("join", join, inputs=[left, right], outputs=[out],
                          start_valves=[PercentValve(ctl, start_fraction, n),
                                        PercentValve(ctr, start_fraction, n)],
                          end_valves=end)

    return Diamond(name)


def diamond_expected(n: int) -> List[int]:
    return [3 * i + 1 for i in range(n)]
