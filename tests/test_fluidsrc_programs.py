"""End-to-end tests for the bundled FluidPy application sources.

Each ``src/repro/apps/fluidsrc/*.fpy`` file is the pragma-annotated
version of one evaluation workload (the paper's Table 2 programs).
These tests translate every source, execute the interesting ones on the
simulator, and check their outputs against independent references —
proving the whole compiler + runtime path on real programs.
"""

import glob
import os

import numpy as np
import pytest

from repro import SimExecutor, run_serial
from repro.lang import load_file, translate_file

FLUIDSRC = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                        "repro", "apps", "fluidsrc")


def fluid_run(region, cores=8):
    executor = SimExecutor(cores=cores)
    executor.submit(region)
    executor.run()
    return region


def source(name):
    return os.path.join(FLUIDSRC, f"{name}.fpy")


class TestTranslation:
    @pytest.mark.parametrize("path", sorted(
        glob.glob(os.path.join(FLUIDSRC, "*.fpy"))),
        ids=lambda p: os.path.basename(p))
    def test_translates_without_diagnostics(self, path):
        result = translate_file(path)
        assert not result.diagnostics
        assert result.class_names

    def test_all_eight_present(self):
        names = {os.path.splitext(os.path.basename(p))[0]
                 for p in glob.glob(os.path.join(FLUIDSRC, "*.fpy"))}
        assert names == {"edge_detection", "kmeans", "bellman_ford",
                         "graph_coloring", "fft", "dct",
                         "neural_network", "medusadock"}


class TestEdgeDetectionFpy:
    def build(self):
        namespace = load_file(source("edge_detection"))
        image = [float((i * 7) % 255) for i in range(12 * 12)]
        return namespace["EdgeDetection"](input_img=image,
                                          height=12, width=12)

    def test_fluid_equals_serial(self):
        fluid = fluid_run(self.build())
        serial = self.build()
        run_serial(serial)
        assert fluid.output("d3") == serial.output("d3")

    def test_stats_show_valve_gating(self):
        region = fluid_run(self.build())
        sobel = region.graph.task("t2")
        from repro.core.states import TaskState
        assert sobel.state is TaskState.COMPLETE


class TestBellmanFordFpy:
    def test_shortest_paths(self):
        namespace = load_file(source("bellman_ford"))
        region = fluid_run(namespace["BellmanFord"](
            src=[0, 0, 1, 2, 3], dst=[1, 2, 3, 3, 4],
            weight=[1.0, 4.0, 1.0, 1.0, 1.0],
            num_vertices=5, source=0))
        assert region.output("dist4") == [0.0, 1.0, 4.0, 2.0, 3.0]


class TestKMeansFpy:
    def test_precise_epoch_moves_centroids(self):
        namespace = load_file(source("kmeans"))
        pixels = [0.0] * 20 + [10.0] * 20
        region = namespace["KMeansEpoch"](
            pixels=pixels, centroids=[2.0, 8.0], assignments=[0] * 40)
        run_serial(region)
        lo, hi = region.output("d_centroids")
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(10.0)

    def test_fluid_epoch_is_approximate_but_ordered(self):
        # The .fpy's quality bar accepts the recenter pass once 40% of
        # pixels are assigned, so the fluid centroids may drift from the
        # precise ones — but the cluster structure must survive.
        namespace = load_file(source("kmeans"))
        pixels = [0.0] * 20 + [10.0] * 20
        region = fluid_run(namespace["KMeansEpoch"](
            pixels=pixels, centroids=[2.0, 8.0], assignments=[0] * 40))
        lo, hi = region.output("d_centroids")
        assert lo < hi


class TestGraphColoringFpy:
    def test_round_colors_maxima(self):
        namespace = load_file(source("graph_coloring"))
        region = fluid_run(namespace["ColoringRound"](
            neighbours=[[1], [0], []], priority=[2, 1, 0],
            colors=[-1, -1, -1]))
        colors = region.output("d_colors")
        assert colors[0] >= 0               # the local max got colored
        assert colors[0] != colors[1] or colors[1] == -1


class TestFFTFpy:
    def test_matches_numpy(self):
        namespace = load_file(source("fft"))
        signal = [float(np.sin(2 * np.pi * 3 * t / 32)) for t in range(32)]
        region = fluid_run(namespace["FluidFFT"](signal=signal))
        spectrum = np.array(region.output("d_real")) + \
            1j * np.array(region.output("d_imag"))
        reference = np.fft.fft(np.array(signal))
        power = float(np.mean(np.abs(reference) ** 2))
        error = float(np.mean(np.abs(spectrum - reference) ** 2)) / power
        assert error < 1e-6


class TestDCTFpy:
    def test_coefficients_match_reference(self):
        from repro.apps.dct import dct2_blocks_reference
        namespace = load_file(source("dct"))
        tensor = [[float((i + 2 * j) % 11) for j in range(8)]
                  for i in range(8)]
        region = fluid_run(namespace["FluidDCT"](tensor=tensor))
        hi = np.array(region.output("d_hi")).reshape(8, 8)
        reference = dct2_blocks_reference(np.array(tensor))
        # One 8x8 block: the "hi" half holds it (lo half is empty).
        assert np.allclose(hi, reference, atol=1e-9)


class TestNeuralNetworkFpy:
    def test_logits_match_numpy_forward(self):
        namespace = load_file(source("neural_network"))
        rng = np.random.default_rng(5)
        dims = [4, 6, 6, 5, 3]
        weights = [(rng.normal(size=(dims[i], dims[i + 1])).tolist(),
                    [0.0] * dims[i + 1]) for i in range(4)]
        batch = rng.normal(size=(8, 4)).tolist()
        region = namespace["FluidNet"](batch=batch, weights=weights)
        run_serial(region)   # precise forward pass
        logits = np.array(region.output("d_act4")).reshape(8, 3)

        acts = np.array(batch)
        for index, (w, b) in enumerate(weights):
            pre = acts @ np.array(w) + np.array(b)
            acts = pre if index == 3 else np.maximum(pre, 0.0)
        assert np.allclose(logits, acts, atol=1e-9)


class TestMedusaDockFpy:
    def test_selects_lowest_energies(self):
        namespace = load_file(source("medusadock"))
        rng = np.random.default_rng(6)
        protein = rng.uniform(-3, 3, size=(6, 3)).tolist()
        poses = rng.uniform(-5, 5, size=(12, 3, 3)).tolist()
        region = fluid_run(namespace["MedusaDock"](
            protein=protein, poses=poses, top_k=3))
        selection = set(region.output("d_selection"))

        from repro.workloads.molecules import pose_energy
        energies = [pose_energy(np.array(protein), np.array(pose))
                    for pose in poses]
        expected = set(np.argsort(energies)[:3].tolist())
        assert selection == expected
