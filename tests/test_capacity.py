"""Tests for the cluster-scale capacity simulator (repro.sched.capacity)."""

import json

import pytest

from repro.bench.baseline import load_baseline
from repro.sched.capacity import (capacity_document, check_monotone, main,
                                  run_sweep, simulate, synthesize)
from repro.sched.schedulers import make_scheduler

REQUIRED_FIELDS = (
    "throughput", "latency_p50", "latency_p95", "latency_p99",
    "tasks_completed", "tasks_shed", "deadline_misses", "picks", "steals",
)


def test_synthesize_is_deterministic():
    first = synthesize(tasks=200, cores=4, rate=0.8, seed=7)
    second = synthesize(tasks=200, cores=4, rate=0.8, seed=7)
    assert [(t.name, t.arrival, t.service) for t in first] == \
        [(t.name, t.arrival, t.service) for t in second]
    other = synthesize(tasks=200, cores=4, rate=0.8, seed=8)
    assert [t.arrival for t in first] != [t.arrival for t in other]


def test_synthesize_workload_is_scheduler_independent():
    """The stream depends only on (tasks, cores, rate, seed): every
    scheduler in a sweep cell sees the identical offered load."""
    stream = synthesize(tasks=500, cores=2, rate=1.0, seed=3)
    fcfs = simulate(list(stream), make_scheduler("fcfs"), cores=2)
    edf = simulate(list(stream), make_scheduler("edf"), cores=2)
    assert fcfs["tasks_offered"] == edf["tasks_offered"] == 500


def test_simulate_reports_required_fields():
    stream = synthesize(tasks=300, cores=2, rate=0.8, seed=0)
    row = simulate(stream, make_scheduler("fcfs"), cores=2)
    for field in REQUIRED_FIELDS:
        assert field in row, field
    assert row["tasks_completed"] == 300
    assert row["tasks_shed"] == 0
    assert row["picks"] == 300
    assert row["throughput"] > 0
    assert row["latency_p50"] <= row["latency_p95"] <= row["latency_p99"]


def test_fcfs_throughput_monotone_in_cores():
    results = run_sweep(tasks=2000, schedulers=["fcfs"], cores=[1, 2, 4],
                        rates=[0.8, 1.5], seed=0)
    violations = check_monotone(results, ["fcfs"], [1, 2, 4], [0.8, 1.5])
    assert violations == []


def test_check_monotone_flags_regressions():
    results = {
        "fcfs/cores1/rate1": {"throughput": 10.0},
        "fcfs/cores4/rate1": {"throughput": 5.0},
    }
    violations = check_monotone(results, ["fcfs"], [1, 4], [1.0])
    assert len(violations) == 1
    assert "fell" in violations[0]
    assert check_monotone(results, ["edf"], [1, 4], [1.0]) == []


def test_bounded_queue_sheds_under_overload():
    results = run_sweep(tasks=2000, schedulers=["fcfs"], cores=[2],
                        rates=[2.0], seed=0, queue_capacity=8)
    (row,) = results.values()
    assert row["scheduler"] == {
        "scheduler": "bounded", "capacity": 8,
        "inner": {"scheduler": "fcfs"}}
    assert row["tasks_shed"] > 0
    assert row["tasks_completed"] + row["tasks_shed"] == row["tasks_offered"]


def test_run_sweep_is_deterministic():
    kwargs = dict(tasks=1000, schedulers=["fcfs", "edf"], cores=[1, 2],
                  rates=[0.8, 1.2], seed=5)
    assert run_sweep(**kwargs) == run_sweep(**kwargs)


def test_capacity_document_matches_baseline_schema(tmp_path):
    results = run_sweep(tasks=500, schedulers=["fcfs", "edf"], cores=[1, 2],
                        rates=[0.8], seed=0)
    document = capacity_document(
        results, tasks=500, seed=0, schedulers=["fcfs", "edf"],
        cores=[1, 2], rates=[0.8], queue_capacity=None)
    path = tmp_path / "capacity.json"
    path.write_text(json.dumps(document))
    baseline = load_baseline(str(path))
    assert baseline["schema"] == "repro-bench-baseline/1"
    assert set(baseline["workloads"]) == set(results)
    assert baseline["config"]["backend"] == "capacity"
    assert baseline["config"]["quick"] is True


def test_cli_writes_curves_and_asserts_monotone(tmp_path, capsys):
    out = tmp_path / "curves.json"
    code = main(["--tasks", "500", "--schedulers", "fcfs,edf",
                 "--cores", "1,2", "--rates", "0.8,1.5",
                 "--assert-monotone", "--out", str(out)])
    assert code == 0
    document = json.loads(out.read_text())
    assert document["schema"] == "repro-bench-baseline/1"
    assert len(document["workloads"]) == 2 * 2 * 2
    assert "monotonicity" in capsys.readouterr().out


def test_cli_rejects_unknown_scheduler():
    with pytest.raises(SystemExit):
        main(["--tasks", "100", "--schedulers", "no-such-discipline"])
