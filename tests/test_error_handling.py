"""Tests for failure reporting: body exceptions carry task context."""

import pytest

from repro import FluidRegion, SimExecutor, ThreadExecutor
from repro.core.errors import TaskBodyError


def broken_region(name="broken", explode_at=3):
    class Broken(FluidRegion):
        def build(self):
            out = self.add_array("out", [0] * 10)

            def body(ctx):
                for i in range(10):
                    if i == explode_at:
                        raise ValueError("kaboom")
                    out[i] = i
                    yield 1.0

            self.add_task("worker", body, outputs=[out])

    return Broken(name)


class TestSimulatorErrors:
    def test_body_error_wrapped_with_context(self):
        executor = SimExecutor(cores=2)
        executor.submit(broken_region("sim_broken"))
        with pytest.raises(TaskBodyError) as exc:
            executor.run()
        assert "sim_broken/worker" in str(exc.value)
        assert "kaboom" in str(exc.value)
        assert isinstance(exc.value.__cause__, ValueError)

    def test_error_in_first_chunk(self):
        executor = SimExecutor(cores=2)
        executor.submit(broken_region("early", explode_at=0))
        with pytest.raises(TaskBodyError):
            executor.run()

    def test_run_index_recorded(self):
        executor = SimExecutor(cores=2)
        executor.submit(broken_region("runidx"))
        with pytest.raises(TaskBodyError) as exc:
            executor.run()
        assert exc.value.run_index == 0


class TestThreadBackendErrors:
    def test_body_error_surfaces_from_run(self):
        executor = ThreadExecutor(timeout=10)
        executor.submit(broken_region("thr_broken"))
        with pytest.raises(TaskBodyError) as exc:
            executor.run()
        assert "thr_broken/worker" in str(exc.value)

    def test_healthy_regions_unaffected(self):
        from util import make_pipeline, pipeline_expected
        region = make_pipeline(n=10)
        executor = ThreadExecutor(timeout=10)
        executor.submit(region)
        executor.run()
        assert region.output("out") == pipeline_expected(10)
