"""Property-based tests for the core data structures (counts, arrays,
snapshots, stats) — complements the scheduler-level properties in
test_properties.py."""

from hypothesis import given, settings, strategies as st

from repro.core.count import Count
from repro.core.data import FluidArray, FluidData
from repro.core.stats import TaskStats
from repro.core.states import TaskState

deltas = st.lists(st.integers(min_value=-100, max_value=100), max_size=40)
floats = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)


class TestCountProperties:
    @settings(max_examples=100, deadline=None)
    @given(deltas)
    def test_add_is_running_sum(self, values):
        count = Count("ct")
        for delta in values:
            count.add(delta)
        assert count.value == sum(values)
        assert count.updates == len(values)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(floats, min_size=1, max_size=30))
    def test_track_min_is_minimum(self, values):
        count = Count("m")
        for value in values:
            count.track_min(value)
        assert count.value == min(values)
        assert count.updates == len(values)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(floats, min_size=1, max_size=30))
    def test_track_max_is_maximum(self, values):
        count = Count("m")
        for value in values:
            count.track_max(value)
        assert count.value == max(values)

    @settings(max_examples=50, deadline=None)
    @given(deltas)
    def test_subscribers_see_every_update_in_order(self, values):
        count = Count("ct")
        seen = []
        count.subscribe(lambda c, v: seen.append(v))
        for delta in values:
            count.add(delta)
        running = []
        total = 0
        for delta in values:
            total += delta
            running.append(total)
        assert seen == running


class TestDataProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(), min_size=1, max_size=20))
    def test_version_counts_writes(self, values):
        data = FluidData("d")
        for value in values:
            data.write(value)
        assert data.version == len(values)
        assert data.read() == values[-1]

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=10),
           st.integers(min_value=0, max_value=10))
    def test_snapshot_advancement_is_monotone(self, before, after):
        data = FluidData("d", 0)
        for _ in range(before):
            data.write(0)
        snapshot = data.snapshot()
        for _ in range(after):
            data.write(0)
        assert snapshot.advanced_in(data) == (after > 0)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                              st.integers()), max_size=30))
    def test_array_setitem_tracks_all_mutations(self, writes):
        array = FluidArray("a", [0] * 10)
        mirror = [0] * 10
        for index, value in writes:
            array[index] = value
            mirror[index] = value
        assert array.read() == mirror
        assert array.version == len(writes)


class TestStatsProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=20))
    def test_residence_times_sum_to_span(self, durations):
        stats = TaskStats("t")
        cycle = [TaskState.RUNNING, TaskState.END_CHECK, TaskState.WAITING]
        now = 0.0
        for index, duration in enumerate(durations):
            stats.enter(cycle[index % 3], now)
            now += duration
        stats.finish(now)
        total_time = sum(stats.time.values())
        assert abs(total_time - sum(durations)) < 1e-6

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=20))
    def test_visit_counts_match_entries(self, reentries):
        stats = TaskStats("t")
        now = 0.0
        for _ in range(reentries):
            stats.enter(TaskState.RUNNING, now)
            now += 1.0
        assert stats.visits[TaskState.RUNNING] == reentries
