"""Cross-application invariants of the evaluation protocol.

The strongest one is the paper's own observation: "setting all valves to
require the completion of antecedents ... will result in a precise
execution".  For every app whose region is a pure dependency chain
(no sibling task parallelism), a zero-overhead, full-threshold fluid run
must equal the serial makespan exactly and reproduce the precise output.
"""

import numpy as np
import pytest

from repro.apps.bellman_ford import BellmanFordApp
from repro.apps.edge_detection import EdgeDetectionApp
from repro.apps.graph_coloring import GraphColoringApp
from repro.apps.kmeans import KMeansApp
from repro.apps.medusadock import MedusaDockApp
from repro.apps.neural_network import NeuralNetworkApp
from repro.runtime.simulator import Overheads
from repro.workloads import (random_graph, synthetic_digits,
                             synthetic_image, synthetic_poses)


def chain_apps():
    yield "edge_detection", EdgeDetectionApp(
        synthetic_image(24, 24, seed=201))
    yield "kmeans", KMeansApp(synthetic_image(20, 20, seed=202),
                              num_clusters=3, epochs=3)
    yield "bellman_ford", BellmanFordApp(
        random_graph(120, 600, seed=203), iterations=5)
    yield "graph_coloring", GraphColoringApp(
        random_graph(150, 900, seed=204))
    yield "neural_network", NeuralNetworkApp(
        synthetic_digits(samples=64, seed=205), batch_size=64)
    yield "medusadock", MedusaDockApp(
        [synthetic_poses(num_poses=24, seed=s, name=f"p{s}")
         for s in range(2)], top_k=3)


@pytest.mark.parametrize("name,app", list(chain_apps()),
                         ids=lambda v: v if isinstance(v, str) else "")
def test_full_threshold_zero_overhead_equals_serial(name, app):
    precise = app.run_precise()
    fluid = app.run_fluid(threshold=1.0, valve="percent",
                          overheads=Overheads.zero())
    assert fluid.makespan == pytest.approx(precise.makespan, rel=1e-6), \
        f"{name}: full-threshold fluid must serialize exactly"
    # Outputs must equal the precise run's bit-for-bit.  (Comparing
    # app.error would be wrong for Bellman-Ford, whose metric is taken
    # against full convergence rather than the fixed-budget baseline.)
    assert _same(fluid.output, precise.output), \
        f"{name}: full-threshold fluid output must equal precise output"


def _same(a, b) -> bool:
    """Structural equality over arrays / tuples / lists of arrays."""
    if isinstance(a, (tuple, list)):
        return len(a) == len(b) and all(_same(x, y) for x, y in zip(a, b))
    return np.array_equal(np.asarray(a), np.asarray(b))


@pytest.mark.parametrize("name,app", list(chain_apps()),
                         ids=lambda v: v if isinstance(v, str) else "")
def test_default_fluid_never_catastrophic(name, app):
    """At its shipped defaults every app stays within sane bands."""
    precise = app.run_precise()
    fluid = app.run_fluid()
    assert fluid.makespan < 1.5 * precise.makespan
    assert fluid.accuracy > 0.5
