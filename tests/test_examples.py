"""Smoke tests: every bundled example must run and make its point."""

import os
import subprocess
import sys

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
EXAMPLES = os.path.join(REPO, "examples")
SRC = os.path.join(REPO, "src")


def run_example(name, timeout=180):
    # Examples import ``repro`` from the source tree; the subprocess does
    # not inherit pytest's import path, so propagate it explicitly.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    result = subprocess.run(
        [sys.executable, name], cwd=EXAMPLES, capture_output=True,
        text=True, timeout=timeout, env=env)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "speedup" in out
        assert "outputs identical:         True" in out

    def test_edge_detection_pipeline(self):
        out = run_example("edge_detection_pipeline.py")
        assert "fluid == serial:  True" in out
        assert "matches library:  True" in out

    def test_custom_valve_kmeans(self):
        out = run_example("custom_valve_kmeans.py")
        assert "percent valve" in out
        assert "stability valve" in out

    def test_compile_fluidpy(self):
        out = run_example("compile_fluidpy.py")
        assert "generated Python" in out
        assert "[10.5, 20.5, 30.5, 40.5]" in out

    def test_multithreaded_fluid(self):
        out = run_example("multithreaded_fluid.py")
        assert "region complete:     True" in out

    def test_timeline_and_tuning(self):
        out = run_example("timeline_and_tuning.py")
        assert "legend" in out
        assert "chosen threshold" in out

    def test_dynamic_task_graph(self):
        out = run_example("dynamic_task_graph.py")
        assert "outputs agree with serial: True" in out
        assert "spawn events in trace:    4" in out

    def test_telemetry_tour(self):
        out = run_example("telemetry_tour.py")
        assert "headline counters:" in out
        assert "worker utilization" in out
        assert "timeline slices" in out

    def test_process_parallel(self):
        out = run_example("process_parallel.py")
        assert out.count("outputs ok: True") == 2
        assert "complete: True" in out
        assert "speedup" in out

    def test_fluid_service(self):
        out = run_example("fluid_service.py")
        assert "all correct:      True" in out
        assert "svc.requests           60" in out
        assert "shed (backpressure):" in out
