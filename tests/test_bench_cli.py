"""Tests for the standalone benchmark CLI (python -m repro.bench)."""

import json

from repro.bench.__main__ import main as bench_main
from repro.telemetry import load_metrics


class TestBenchCli:
    def test_single_app(self, capsys):
        assert bench_main(["--app", "dct"]) == 0
        out = capsys.readouterr().out
        assert "dct" in out and "AVERAGE" in out

    def test_unknown_app(self, capsys):
        assert bench_main(["--app", "nonsense"]) == 1

    def test_sweep(self, capsys):
        assert bench_main(["--sweep", "fft",
                           "--thresholds", "0.3,1.0"]) == 0
        out = capsys.readouterr().out
        assert "Threshold sweep" in out
        assert "0.300" in out

    def test_sweep_unknown_app(self):
        assert bench_main(["--sweep", "nonsense"]) == 1

    def test_quick_runs_one_input_per_app(self, capsys):
        assert bench_main(["--app", "fft", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "N1K" in out and "N4K" not in out

    def test_telemetry_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "run.perfetto.json"
        metrics = tmp_path / "run.metrics.json"
        assert bench_main(["--app", "kmeans", "--quick",
                           "--trace-out", str(trace),
                           "--metrics-out", str(metrics)]) == 0
        err = capsys.readouterr().err
        assert "wrote trace" in err and "wrote metrics" in err
        doc = json.loads(trace.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
        dump = load_metrics(str(metrics))
        assert dump["counters"]["tasks.runs"] > 0

    def test_backend_thread(self, capsys):
        assert bench_main(["--backend", "thread", "--scale", "0.01",
                           "--tasks", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup vs thread" in out

    def test_backend_sim_falls_back_to_figure6(self, capsys):
        assert bench_main(["--backend", "sim", "--app", "fft",
                           "--quick"]) == 0
        out = capsys.readouterr().out
        assert "normalized to the original" in out


class TestDebugFlag:
    # Satellite regression: spec errors were flattened to str(error)
    # with the traceback swallowed; --debug must re-raise the original.

    def test_bad_scheduler_spec_is_a_cli_error(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as info:
            bench_main(["--scheduler", "bogus-discipline"])
        assert info.value.code == 2
        assert "bogus-discipline" in capsys.readouterr().err

    def test_debug_reraises_scheduler_spec_error(self):
        import pytest

        from repro import SchedulerError

        with pytest.raises(SchedulerError):
            bench_main(["--scheduler", "bogus-discipline", "--debug"])

    def test_debug_reraises_autotune_spec_error(self):
        import pytest

        from repro import FluidError

        with pytest.raises(FluidError):
            bench_main(["--autotune", "bogus-controller", "--debug"])

    def test_traceback_logged_at_debug_level(self, caplog):
        import logging

        import pytest

        with caplog.at_level(logging.DEBUG, logger="repro.bench"):
            with pytest.raises(SystemExit):
                bench_main(["--scheduler", "bogus-discipline"])
        debug_records = [record for record in caplog.records
                         if record.levelno == logging.DEBUG
                         and record.exc_info]
        assert debug_records, "spec failure must log its traceback"


class TestSchedlabDebugFlag:
    @staticmethod
    def _bad_artifact(tmp_path):
        artifact = tmp_path / "stale.json"
        artifact.write_text(json.dumps({"version": "ancient"}))
        return str(artifact)

    def test_error_returns_3_without_debug(self, tmp_path, capsys):
        from repro.schedlab.__main__ import main as schedlab_main

        assert schedlab_main(["replay", self._bad_artifact(tmp_path)]) == 3
        assert "error:" in capsys.readouterr().err

    def test_debug_reraises_with_traceback(self, tmp_path):
        import pytest

        from repro import SchedulerError
        from repro.schedlab.__main__ import main as schedlab_main

        with pytest.raises(SchedulerError):
            schedlab_main(["--debug", "replay",
                           self._bad_artifact(tmp_path)])
