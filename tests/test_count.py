"""Unit tests for repro.core.count."""

import pytest

from repro.core.count import Count, UpdateSink


class RecordingSink(UpdateSink):
    def __init__(self):
        self.events = []

    def count_updated(self, count, value):
        self.events.append((count.name, value))


class TestCountBasics:
    def test_initial_value(self):
        assert Count("ct").value == 0

    def test_initial_value_custom(self):
        assert Count("ct", initial=7).value == 7

    def test_add_default_increment(self):
        ct = Count("ct")
        ct.add()
        assert ct.value == 1

    def test_add_delta(self):
        ct = Count("ct")
        ct.add(5)
        ct.add(3)
        assert ct.value == 8

    def test_set_overwrites(self):
        ct = Count("ct")
        ct.set(42)
        assert ct.value == 42

    def test_updates_counter(self):
        ct = Count("ct")
        for _ in range(4):
            ct.add()
        assert ct.updates == 4

    def test_reset_restores_initial(self):
        ct = Count("ct", initial=3)
        ct.add(10)
        ct.reset()
        assert ct.value == 3
        assert ct.updates == 0

    def test_float_counts(self):
        ct = Count("avg", initial=0.0)
        ct.add(0.5)
        assert ct.value == pytest.approx(0.5)


class TestTrackedStatistics:
    def test_track_min_keeps_minimum(self):
        ct = Count("energy", initial=0.0)
        for value in (5.0, 3.0, 4.0, 1.0, 2.0):
            ct.track_min(value)
        assert ct.value == 1.0

    def test_track_min_first_observation_wins(self):
        ct = Count("energy", initial=999.0)
        ct.track_min(5.0)
        assert ct.value == 5.0

    def test_track_min_counts_non_improving_updates(self):
        # Convergence valves need every observation, improving or not.
        ct = Count("energy")
        ct.track_min(5.0)
        ct.track_min(7.0)
        ct.track_min(6.0)
        assert ct.updates == 3
        assert ct.value == 5.0

    def test_track_max(self):
        ct = Count("score")
        for value in (1.0, 9.0, 4.0):
            ct.track_max(value)
        assert ct.value == 9.0


class TestNotification:
    def test_subscribers_see_updates(self):
        ct = Count("ct")
        seen = []
        ct.subscribe(lambda count, value: seen.append(value))
        ct.add()
        ct.add(2)
        assert seen == [1, 3]

    def test_sink_receives_every_update(self):
        sink = RecordingSink()
        ct = Count("ct", sink=sink)
        ct.add()
        ct.set(9)
        assert sink.events == [("ct", 1), ("ct", 9)]

    def test_buffered_sink_defers_dispatch(self):
        # A sink that swallows updates must prevent subscriber dispatch
        # until it decides to publish.
        class Buffering(UpdateSink):
            def __init__(self):
                self.held = []

            def count_updated(self, count, value):
                self.held.append((count, value))

        sink = Buffering()
        ct = Count("ct", sink=sink)
        seen = []
        ct.subscribe(lambda count, value: seen.append(value))
        ct.add()
        assert seen == []          # held back
        assert ct.value == 1       # but the value is already visible
        for count, value in sink.held:
            count.dispatch(value)
        assert seen == [1]

    def test_bind_sink_replaces_routing(self):
        ct = Count("ct")
        sink = RecordingSink()
        ct.bind_sink(sink)
        ct.add()
        assert sink.events == [("ct", 1)]

    def test_multiple_subscribers(self):
        ct = Count("ct")
        a, b = [], []
        ct.subscribe(lambda c, v: a.append(v))
        ct.subscribe(lambda c, v: b.append(v))
        ct.add()
        assert a == [1] and b == [1]
