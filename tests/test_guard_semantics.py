"""Semantic tests for the guard state machine (Figure 5 / Section 6.1).

These exercise the interesting runtime behaviours end-to-end on the
simulator: the three CE completion conditions, re-execution on quality
failure, request propagation into the D state, early termination, and
the worst-case convergence to precise output.
"""


from repro import (FluidRegion, ModulationPolicy, NeverValve, PercentValve,
                   PredicateValve, SimExecutor, TaskState)

from util import (chain_expected, diamond_expected, make_chain, make_diamond,
                  make_pipeline, pipeline_expected)


def run_sim(region, cores=4, **kwargs):
    executor = SimExecutor(cores=cores, **kwargs)
    executor.submit(region)
    result = executor.run()
    return executor, result


class TestCompletionConditions:
    def test_root_completes_via_precise_inputs(self):
        region = make_pipeline(n=10)
        _, result = run_sim(region, trace=True)
        assert result.trace.count("complete", "produce") == 1
        events = [e for e in result.trace.events
                  if e.task == "produce" and e.event == "complete"]
        assert events[0].detail == "precise-inputs"

    def test_leaf_without_end_valves_completes_immediately(self):
        region = make_pipeline(n=10, end_fraction=None, start_fraction=0.2,
                               consumer_cost=0.1)
        _, result = run_sim(region, trace=True)
        leaf = region.graph.task("consume")
        assert leaf.stats.runs == 1
        assert leaf.stats.quality_failures == 0

    def test_leaf_completes_via_quality(self):
        region = make_pipeline(n=10, start_fraction=0.5)
        _, result = run_sim(region, trace=True)
        completes = [e for e in result.trace.events
                     if e.task == "consume" and e.event == "complete"]
        assert completes[-1].detail in ("quality-passed", "precise-inputs")

    def test_interior_completes_via_descendants(self):
        region = make_chain(depth=3, n=20, exact_quality=False)
        _, result = run_sim(region)
        assert region.complete


class TestReExecution:
    def test_quality_failure_triggers_rerun(self):
        # Fast consumer races far ahead of a slow producer.
        region = make_pipeline(n=30, producer_cost=2.0, consumer_cost=0.1,
                               start_fraction=0.3)
        _, _ = run_sim(region)
        leaf = region.graph.task("consume")
        assert leaf.stats.quality_failures >= 1
        assert leaf.stats.runs >= 2

    def test_output_precise_after_reexecution_chain(self):
        region = make_pipeline(n=30, producer_cost=2.0, consumer_cost=0.1,
                               start_fraction=0.3)
        run_sim(region)
        assert region.output("out") == pipeline_expected(30)

    def test_worst_case_converges_to_precise(self):
        # NeverValve quality: can never pass; the region must still finish
        # by re-running on fully precise inputs (quality override).
        class Stubborn(FluidRegion):
            def build(self):
                src = self.input_data("src", list(range(10)))
                mid = self.add_array("mid", [0] * 10)
                out = self.add_array("out", [0] * 10)
                ct = self.add_count("ct")

                def produce(ctx):
                    for i in range(10):
                        mid[i] = src.read()[i] * 2
                        ct.add()
                        yield 1.0

                def consume(ctx):
                    for i in range(10):
                        out[i] = mid[i] + 1
                        yield 0.1

                self.add_task("produce", produce, inputs=[src], outputs=[mid])
                self.add_task("consume", consume,
                              start_valves=[PercentValve(ct, 0.2, 10)],
                              end_valves=[NeverValve()],
                              inputs=[mid], outputs=[out])

        region = Stubborn("stubborn")
        run_sim(region)
        assert region.complete
        assert region.output("out") == pipeline_expected(10)
        leaf = region.graph.task("consume")
        # The final, accepted run started on precise inputs.
        assert leaf.started_precise

    def test_chain_reexecution_propagates(self):
        region = make_chain(depth=3, n=20, exact_quality=True,
                            costs=[3.0, 1.0, 0.2])
        run_sim(region)
        assert region.output("a2") == chain_expected(3, 20)
        middle = region.graph.task("t1")
        assert middle.stats.runs >= 2  # re-ran to refine its output


class TestEarlyTermination:
    def test_pointless_rerun_is_cancelled_or_skipped(self):
        region = make_chain(depth=3, n=20, exact_quality=True,
                            costs=[3.0, 1.0, 0.2])
        _, result = run_sim(region, trace=True)
        cancels = result.trace.count("complete") \
            + sum(t.stats.cancelled_runs for t in region.tasks)
        assert region.complete
        # Early termination shows up as cancelled runs or skipped reruns
        # in deep chains with fast leaves; at minimum nothing deadlocks
        # and every task completed exactly once logically.
        for task in region.tasks:
            assert task.state is TaskState.COMPLETE


class TestDependenceStall:
    def test_request_propagates_to_d_state(self):
        # Producer finishes quickly on *imprecise* input while the root is
        # still slowly producing; the leaf's quality check then demands
        # more precise data, stalling the middle task into D.
        class Stall(FluidRegion):
            def build(self):
                n = 40
                src = self.input_data("src", list(range(n)))
                a = self.add_array("a", [0] * n)
                b = self.add_array("b", [0] * n)
                c = self.add_array("c", [0] * n)
                ct0 = self.add_count("ct0")
                ct1 = self.add_count("ct1")

                def t0(ctx):
                    for i in range(n):
                        a[i] = src.read()[i] + 1
                        ct0.add()
                        yield 10.0  # very slow root

                def t1(ctx):
                    for i in range(n):
                        b[i] = a[i] * 10
                        ct1.add()
                        yield 0.05  # finishes long before the root

                def t2(ctx):
                    for i in range(n):
                        c[i] = b[i] + 5
                        yield 0.05

                self.add_task("t0", t0, inputs=[src], outputs=[a])
                self.add_task("t1", t1, inputs=[a], outputs=[b],
                              start_valves=[PercentValve(ct0, 0.1, n)])
                self.add_task("t2", t2, inputs=[b], outputs=[c],
                              start_valves=[PercentValve(ct1, 1.0, n)],
                              end_valves=[PredicateValve(
                                  lambda: all(c[i] == (i + 1) * 10 + 5
                                              for i in range(n)))])

        region = Stall("stall")
        _, result = run_sim(region, trace=True)
        assert region.complete
        assert region.output("c") == [(i + 1) * 10 + 5 for i in range(40)]
        t1 = region.graph.task("t1")
        assert t1.stats.visits[TaskState.DEP_STALLED] >= 1
        assert result.trace.count("dep-stalled", "t1") >= 1


class TestDiamond:
    def test_multi_producer_join(self):
        region = make_diamond(n=24)
        run_sim(region)
        assert region.output("out") == diamond_expected(24)

    def test_all_tasks_complete(self):
        region = make_diamond(n=24)
        run_sim(region)
        assert all(t.state is TaskState.COMPLETE for t in region.tasks)


class TestModulation:
    def test_quality_failures_tighten_thresholds(self):
        region = make_pipeline(n=30, producer_cost=2.0, consumer_cost=0.1,
                               start_fraction=0.3)
        executor = SimExecutor(cores=4,
                               modulation=ModulationPolicy(fraction=0.5))
        executor.submit(region)
        executor.run()
        valve = region.graph.task("consume").spec.start_valves[0]
        assert valve.threshold > valve.base_threshold

    def test_zero_fraction_is_noop(self):
        region = make_pipeline(n=30, producer_cost=2.0, consumer_cost=0.1,
                               start_fraction=0.3)
        executor = SimExecutor(cores=4,
                               modulation=ModulationPolicy(fraction=0.0))
        executor.submit(region)
        executor.run()
        valve = region.graph.task("consume").spec.start_valves[0]
        assert valve.threshold == valve.base_threshold
