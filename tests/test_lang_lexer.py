"""Unit tests for the pragma tokenizer."""

from repro.lang.diagnostics import DiagnosticSink
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def lex(text):
    sink = DiagnosticSink()
    tokens = tokenize(text, line=1, sink=sink)
    return tokens, sink


def kinds(tokens):
    return [t.kind for t in tokens]


class TestTokenizer:
    def test_data_pragma_payload(self):
        tokens, sink = lex("{Image *d1;}")
        assert not sink.errors
        assert kinds(tokens) == [
            TokenKind.LBRACE, TokenKind.IDENT, TokenKind.STAR,
            TokenKind.IDENT, TokenKind.SEMI, TokenKind.RBRACE,
            TokenKind.END]

    def test_guard_brackets(self):
        tokens, _ = lex("<<<t1, {}, {}, {d1}, {d2}>>>")
        assert tokens[0].kind is TokenKind.LGUARD
        assert tokens[-2].kind is TokenKind.RGUARD

    def test_guard_vs_comparison(self):
        tokens, _ = lex("a < b")
        assert [t.kind for t in tokens[:3]] == [
            TokenKind.IDENT, TokenKind.OP, TokenKind.IDENT]

    def test_numbers(self):
        tokens, _ = lex("0.4 17 1e-3 2.5e4")
        numbers = [t.text for t in tokens if t.kind is TokenKind.NUMBER]
        assert numbers == ["0.4", "17", "1e-3", "2.5e4"]

    def test_identifiers_with_underscores(self):
        tokens, _ = lex("_private input_img2")
        idents = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert idents == ["_private", "input_img2"]

    def test_strings(self):
        tokens, _ = lex("'hello' \"world\"")
        strings = [t.text for t in tokens if t.kind is TokenKind.STRING]
        assert strings == ["'hello'", '"world"']

    def test_unterminated_string_reports_error(self):
        _, sink = lex("'oops")
        assert sink.errors

    def test_columns_are_one_based(self):
        tokens, _ = lex("{x}")
        assert tokens[0].column == 1
        assert tokens[1].column == 2

    def test_operators(self):
        tokens, _ = lex("a*b+c**2")
        texts = [t.text for t in tokens if t.kind in
                 (TokenKind.OP, TokenKind.STAR)]
        assert texts == ["*", "+", "**"]

    def test_unexpected_character(self):
        _, sink = lex("a @ b")
        assert any("unexpected" in str(d) for d in sink.errors)

    def test_end_token_always_present(self):
        tokens, _ = lex("")
        assert tokens[-1].kind is TokenKind.END
