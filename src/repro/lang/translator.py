"""The FluidPy source-to-source translator driver.

The pipeline is the paper's Section 5 compiler realized for the Python
host: parse the pragma-annotated source, run semantic analysis, generate
plain Python against :mod:`repro.core`, and (optionally) load the result
so applications can use translated fluid classes directly::

    from repro.lang import translate_source, load_source

    result = translate_source(open("edge.fpy").read(), "edge.fpy")
    print(result.python_source)          # the Figure-4 equivalent

    namespace = load_source(open("edge.fpy").read(), "edge.fpy")
    region = namespace["EdgeDetection"](input_img=img, size=len(img))
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import CompileError
from .ast_nodes import TranslationUnitNode
from .codegen import generate_module
from .diagnostics import Diagnostic
from .parser import parse_source
from .semantics import analyze_class


@dataclass
class PragmaStats:
    """Line/pragma accounting for one fluid class (Table 2 columns)."""
    class_name: str
    region_lines: int
    region_pragmas: int

    @property
    def region_ratio(self) -> float:
        return self.region_pragmas / self.region_lines if self.region_lines else 0.0


@dataclass
class TranslationResult:
    """Everything produced by one translator invocation."""
    python_source: str
    unit: TranslationUnitNode
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def class_names(self) -> List[str]:
        return [fc.name for fc in self.unit.classes]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    # ---- Table 2 accounting ------------------------------------------------

    def total_lines(self) -> int:
        return sum(1 for text in self.unit.source_lines if text.strip())

    def total_pragmas(self) -> int:
        markers = sum(1 for text in self.unit.source_lines
                      if text.strip() == "__fluid__")
        pragmas = sum(1 for text in self.unit.source_lines
                      if text.lstrip().startswith("#pragma") or
                      text.lstrip().startswith("# pragma"))
        return markers + pragmas

    def pragma_ratio(self) -> float:
        total = self.total_lines()
        return self.total_pragmas() / total if total else 0.0

    def per_class_stats(self) -> List[PragmaStats]:
        stats = []
        for fc, (start, end) in zip(self.unit.classes,
                                    self.unit.owned_ranges):
            segment = self.unit.source_lines[start - 1:end]
            lines = sum(1 for text in segment if text.strip())
            pragmas = sum(1 for text in segment
                          if text.lstrip().startswith("#pragma") or
                          text.lstrip().startswith("# pragma") or
                          text.strip() == "__fluid__")
            stats.append(PragmaStats(fc.name, lines, pragmas))
        return stats


def translate_source(source: str, filename: str = "<fluid>",
                     strict: bool = True) -> TranslationResult:
    """Translate FluidPy source text; raise :class:`CompileError` on errors."""
    unit, sink = parse_source(source, filename)
    for fluid_class in unit.classes:
        analyze_class(fluid_class, sink)
    if not unit.classes:
        sink.warning("no __fluid__ classes found; output is a passthrough")
    if strict:
        sink.raise_if_errors()
    python_source = generate_module(unit) if not sink.errors else ""
    return TranslationResult(python_source, unit, sink.diagnostics)


def translate_file(path: str, out_path: Optional[str] = None,
                   strict: bool = True) -> TranslationResult:
    """Translate a ``.fpy`` file; write ``out_path`` if given."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    result = translate_source(source, filename=os.path.basename(path),
                              strict=strict)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(result.python_source)
    return result


def load_source(source: str, filename: str = "<fluid>",
                extra_globals: Optional[Dict] = None) -> Dict:
    """Translate and execute; returns the generated module namespace."""
    result = translate_source(source, filename)
    namespace: Dict = dict(extra_globals or {})
    code = compile(result.python_source, f"<generated from {filename}>",
                   "exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated code
    namespace["__translation__"] = result
    return namespace


def load_file(path: str, extra_globals: Optional[Dict] = None) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return load_source(source, filename=os.path.basename(path),
                       extra_globals=extra_globals)


def check_source(source: str, filename: str = "<fluid>") -> List[Diagnostic]:
    """Lint mode: return all diagnostics without raising."""
    try:
        result = translate_source(source, filename, strict=False)
    except CompileError:  # pragma: no cover - strict=False should not raise
        raise
    return result.diagnostics
