"""Tokenizer for Fluid pragma payloads.

A pragma line looks like::

    #pragma data {Image *d1;}
    #pragma count {int ct;}
    #pragma valve {ValveCT v1;}
    #pragma task <<<t1, {v1}, {v2}, {d2}, {d3}>>> Sobel(img, out)

The lexer turns the text after ``#pragma`` into a token stream for the
recursive-descent parser.  ``<<<`` / ``>>>`` are recognized greedily so
that comparison operators inside argument expressions (``a < b``) are
still possible.
"""

from __future__ import annotations

from typing import List

from .diagnostics import DiagnosticSink
from .tokens import OPERATORS, PUNCTUATION, Token, TokenKind


def tokenize(text: str, line: int, sink: DiagnosticSink,
             column_offset: int = 0) -> List[Token]:
    """Tokenize one pragma payload; errors go to ``sink``."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        column = column_offset + i + 1
        if ch in " \t":
            i += 1
            continue
        if text.startswith("<<<", i):
            tokens.append(Token(TokenKind.LGUARD, "<<<", line, column))
            i += 3
            continue
        if text.startswith(">>>", i):
            tokens.append(Token(TokenKind.RGUARD, ">>>", line, column))
            i += 3
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(TokenKind.IDENT, text[i:j], line, column))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or
                             (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            if j < n and text[j] in "eE":  # exponent
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                while k < n and text[k].isdigit():
                    k += 1
                j = k
            tokens.append(Token(TokenKind.NUMBER, text[i:j], line, column))
            i = j
            continue
        if ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            if j >= n:
                sink.error("unterminated string literal", line, column)
                return tokens
            tokens.append(Token(TokenKind.STRING, text[i:j + 1], line, column))
            i = j + 1
            continue
        if text.startswith("**", i):
            tokens.append(Token(TokenKind.OP, "**", line, column))
            i += 2
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(PUNCTUATION[ch], ch, line, column))
            i += 1
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, line, column))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        sink.error(f"unexpected character {ch!r} in pragma", line, column)
        i += 1
    tokens.append(Token(TokenKind.END, "", line, column_offset + n + 1))
    return tokens
