"""AST node types for FluidPy translation units.

The host structure (classes, methods) comes from Python's own AST; these
nodes describe only the Fluid-specific constructs layered on top:
pragmas, fluid classes, and the pieces of a region body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class DataPragma:
    """``#pragma data {TYPE NAME;}`` / ``#pragma data {TYPE *NAME;}``."""
    type_name: str
    name: str
    is_array: bool
    line: int


@dataclass
class CountPragma:
    """``#pragma count {TYPE NAME;}``."""
    type_name: str
    name: str
    line: int


@dataclass
class ValvePragma:
    """``#pragma valve {VALVETYPE NAME;}`` or with constructor args
    ``#pragma valve {VALVETYPE NAME(arg, ...);}``."""
    valve_type: str
    name: str
    args_src: Optional[str]     # raw argument text, or None for two-phase init
    line: int


@dataclass
class TaskPragma:
    """``#pragma task <<<name, {SV}, {EV}, {In}, {Out}>>> func(args)``."""
    task_name: str
    start_valves: List[str]
    end_valves: List[str]
    inputs: List[str]
    outputs: List[str]
    func_name: str
    args_src: str              # raw argument text of the call
    line: int


@dataclass
class RegionStatement:
    """One line of the region() body after classification."""
    kind: str                  # "task" | "sync" | "python"
    text: str                  # original source line (dedented)
    task: Optional[TaskPragma] = None
    line: int = 0


@dataclass
class FluidMethod:
    """A method of the fluid class, copied verbatim into the output."""
    name: str
    source: str                # dedented full def block
    params: List[str]
    line: int
    is_generator: bool = False


@dataclass
class FluidClassNode:
    """One ``__fluid__``-marked class."""
    name: str
    bases: List[str]
    datas: List[DataPragma] = field(default_factory=list)
    counts: List[CountPragma] = field(default_factory=list)
    valves: List[ValvePragma] = field(default_factory=list)
    methods: List[FluidMethod] = field(default_factory=list)
    region_body: List[RegionStatement] = field(default_factory=list)
    class_assigns: List[str] = field(default_factory=list)
    line: int = 0
    end_line: int = 0

    @property
    def tasks(self) -> List[TaskPragma]:
        return [stmt.task for stmt in self.region_body
                if stmt.kind == "task" and stmt.task is not None]


@dataclass
class TranslationUnitNode:
    """A whole FluidPy file: passthrough Python + fluid classes."""
    filename: str
    source_lines: List[str]
    classes: List[FluidClassNode] = field(default_factory=list)
    #: (start, end) 1-based inclusive line ranges owned by fluid classes
    #: (including their ``__fluid__`` marker), excluded from passthrough.
    owned_ranges: List[Tuple[int, int]] = field(default_factory=list)
