"""Semantic analysis for fluid classes (compile-time region checking).

Everything :class:`~repro.core.graph.TaskGraph` enforces at runtime is
checked here at translation time, on names, so that a bad FluidPy file
is rejected with source locations before any code is generated:

* the class has a ``region()`` and at least one Fluid data member and
  one Fluid method used as a task (Section 4.1, FluidDef rules);
* every name in a task guard resolves to a declared valve/data member;
* the inferred dataflow graph has one root, at least one leaf, no
  cycles, and no data cell with two producers;
* end valves appear only on leaf tasks;
* task bodies are generator methods taking ``(self, ctx, ...)``.

Unused members produce warnings, not errors.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Set

from .ast_nodes import FluidClassNode, TaskPragma
from .diagnostics import DiagnosticSink
from .support import VALVE_TYPES


def analyze_class(fluid_class: FluidClassNode, sink: DiagnosticSink) -> None:
    """Run every check on one fluid class; report into ``sink``."""
    _check_members(fluid_class, sink)
    _check_tasks(fluid_class, sink)
    _check_graph(fluid_class, sink)
    _check_argument_expressions(fluid_class, sink)
    _check_usage(fluid_class, sink)


def _check_argument_expressions(fc: FluidClassNode,
                                sink: DiagnosticSink) -> None:
    """Pragma argument lists must be valid Python expressions — catch
    `gaussian(ct,,)` at translate time, not when the generated module is
    first imported."""
    for task in fc.tasks:
        _check_expression(task.args_src, f"task {task.task_name!r} call",
                          task.line, sink, allow_empty=True)
    for valve in fc.valves:
        if valve.args_src is not None:
            _check_expression(valve.args_src,
                              f"valve {valve.name!r} constructor",
                              valve.line, sink, allow_empty=False)


def _check_expression(args_src: str, what: str, line: int,
                      sink: DiagnosticSink, allow_empty: bool) -> None:
    text = args_src.strip()
    if not text:
        if not allow_empty:
            sink.error(f"{what} has an empty argument list", line)
        return
    try:
        ast.parse(f"__probe__({text})", mode="eval")
    except SyntaxError as exc:
        sink.error(f"{what} arguments are not a valid Python "
                   f"expression list: {exc.msg}", line)


# ------------------------------------------------------------------ members

def _check_members(fc: FluidClassNode, sink: DiagnosticSink) -> None:
    seen: Dict[str, int] = {}
    for pragma in list(fc.datas) + list(fc.counts) + list(fc.valves):
        if pragma.name in seen:
            sink.error(
                f"duplicate fluid member {pragma.name!r} "
                f"(first declared on line {seen[pragma.name]})", pragma.line)
        seen[pragma.name] = pragma.line
    if not fc.datas:
        sink.error(
            f"fluid class {fc.name!r} declares no fluid data; a fluid "
            "class must contain at least one data member (Section 4.1)",
            fc.line)
    for valve in fc.valves:
        if valve.valve_type not in VALVE_TYPES:
            sink.error(
                f"unknown valve type {valve.valve_type!r}; known types: "
                f"{', '.join(sorted(VALVE_TYPES))}", valve.line)
    method_names = {m.name for m in fc.methods}
    member_names = set(seen)
    clash = member_names & method_names
    for name in sorted(clash):
        sink.error(f"member {name!r} collides with a method name", fc.line)


# -------------------------------------------------------------------- tasks

def _check_tasks(fc: FluidClassNode, sink: DiagnosticSink) -> None:
    tasks = fc.tasks
    if not tasks:
        sink.error(
            f"fluid class {fc.name!r} schedules no tasks in region()",
            fc.line)
        return
    data_names = {d.name for d in fc.datas}
    valve_names = {v.name for v in fc.valves}
    methods = {m.name: m for m in fc.methods}
    seen_names: Dict[str, int] = {}
    for task in tasks:
        if task.task_name in seen_names:
            sink.error(
                f"duplicate task name {task.task_name!r} (first scheduled "
                f"on line {seen_names[task.task_name]})", task.line)
        seen_names[task.task_name] = task.line
        for valve_name in task.start_valves + task.end_valves:
            if valve_name not in valve_names:
                sink.error(
                    f"task {task.task_name!r} references undeclared valve "
                    f"{valve_name!r}", task.line)
        for data_name in task.inputs + task.outputs:
            if data_name not in data_names:
                sink.error(
                    f"task {task.task_name!r} references undeclared data "
                    f"{data_name!r}", task.line)
        _check_task_method(fc, task, methods, sink)


def _check_task_method(fc: FluidClassNode, task: TaskPragma,
                       methods, sink: DiagnosticSink) -> None:
    func = task.func_name
    if func.startswith("self."):
        func = func[len("self."):]
    if "." in func:
        return  # external callable; checked at runtime
    method = methods.get(func)
    if method is None:
        sink.error(
            f"task {task.task_name!r} calls {task.func_name!r}, which is "
            f"not a method of {fc.name!r}", task.line)
        return
    if not method.is_generator:
        sink.error(
            f"fluid method {func!r} must be a generator (yield the cost "
            "of each work chunk)", method.line)
    if len(method.params) < 2 or method.params[0] != "self" or \
            method.params[1] != "ctx":
        sink.error(
            f"fluid method {func!r} must take (self, ctx, ...) — the task "
            "context is its first real parameter", method.line)


# -------------------------------------------------------------------- graph

def _check_graph(fc: FluidClassNode, sink: DiagnosticSink) -> None:
    tasks = fc.tasks
    if not tasks:
        return
    producer: Dict[str, TaskPragma] = {}
    for task in tasks:
        for output in task.outputs:
            if output in producer:
                sink.error(
                    f"data {output!r} is produced by both "
                    f"{producer[output].task_name!r} and "
                    f"{task.task_name!r}; order anti-dependencies with "
                    "sync() instead", task.line)
            producer[output] = task

    parents: Dict[str, Set[str]] = {t.task_name: set() for t in tasks}
    children: Dict[str, Set[str]] = {t.task_name: set() for t in tasks}
    for task in tasks:
        for name in task.inputs:
            source = producer.get(name)
            if source is not None and source.task_name != task.task_name:
                parents[task.task_name].add(source.task_name)
                children[source.task_name].add(task.task_name)

    roots = [t for t in tasks if not parents[t.task_name]]
    leaves = [t for t in tasks if not children[t.task_name]]
    if len(roots) != 1:
        sink.error(
            f"fluid class {fc.name!r} has {len(roots)} root tasks "
            f"({', '.join(t.task_name for t in roots) or 'none'}); a region "
            "must have exactly one root (add a header task, Section 2)",
            fc.line)
    if not leaves:
        sink.error(f"fluid class {fc.name!r} has no leaf task", fc.line)
    for task in tasks:
        if task.end_valves and children[task.task_name]:
            sink.error(
                f"task {task.task_name!r} has end valves but is not a "
                "leaf; only leaf tasks carry quality functions "
                "(Section 3.3)", task.line)
        if parents[task.task_name] and not task.start_valves:
            sink.warning(
                f"task {task.task_name!r} consumes another task's output "
                "but has no start valves: it will start immediately and "
                "race its producers even at full thresholds", task.line)

    # Cycle check (Kahn) on the name graph.
    in_degree = {name: len(p) for name, p in parents.items()}
    frontier = [name for name, deg in in_degree.items() if deg == 0]
    visited = 0
    while frontier:
        name = frontier.pop()
        visited += 1
        for child in children[name]:
            in_degree[child] -= 1
            if in_degree[child] == 0:
                frontier.append(child)
    if visited != len(tasks):
        cyclic = sorted(name for name, deg in in_degree.items() if deg > 0)
        sink.error(
            f"cyclic dataflow among tasks {cyclic} in fluid class "
            f"{fc.name!r}", fc.line)


# -------------------------------------------------------------------- usage

def _check_usage(fc: FluidClassNode, sink: DiagnosticSink) -> None:
    tasks = fc.tasks
    used_data = {name for t in tasks for name in t.inputs + t.outputs}
    used_valves = {name for t in tasks
                   for name in t.start_valves + t.end_valves}
    region_text = "\n".join(stmt.text for stmt in fc.region_body)
    method_text = "\n".join(m.source for m in fc.methods)

    def mentioned(name: str, text: str) -> bool:
        return re.search(rf"\b{re.escape(name)}\b", text) is not None

    for data in fc.datas:
        if data.name not in used_data and not mentioned(data.name,
                                                        region_text):
            sink.warning(f"fluid data {data.name!r} is never used",
                         data.line)
    for valve in fc.valves:
        if valve.name not in used_valves:
            sink.warning(f"valve {valve.name!r} is never attached to a task",
                         valve.line)
    for count in fc.counts:
        if not mentioned(count.name, region_text) and \
                not mentioned(count.name, method_text):
            sink.warning(f"count {count.name!r} is never read or updated",
                         count.line)
