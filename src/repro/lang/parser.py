"""Parser for FluidPy translation units.

FluidPy is the paper's pragma language (Figure 2) hosted in Python
syntax: a fluid class is marked by a bare ``__fluid__`` line immediately
above its ``class`` statement, member pragmas appear as ``#pragma``
comments in the class body, and task pragmas appear inside the
``region()`` method.  Because pragmas are comments to Python, the host
structure is parsed with :mod:`ast` while each pragma payload goes
through the dedicated lexer and the recursive-descent routines below.

Grammar (from the paper, Figure 2)::

    FluidStmt  :: FluidDef | PragmaStmt
    FluidDef   :: __fluid__ class
    PragmaStmt :: DataPra | ValvePra | CountPra | TaskPra
    DataPra    :: #pragma data { type  name ; }
                | #pragma data { type *name ; }
    CountPra   :: #pragma count { type name ; }
    ValvePra   :: #pragma valve { type name (args...)? ; }
    TaskPra    :: #pragma task <<< name, SV, EV, Inputs, Outputs >>> func(args)
    SV, EV, Inputs, Outputs :: { (name (, name)*)? }
"""

from __future__ import annotations

import ast
import re
import textwrap
from typing import List, Optional, Tuple

from .ast_nodes import (CountPragma, DataPragma, FluidClassNode, FluidMethod,
                        RegionStatement, TaskPragma, TranslationUnitNode,
                        ValvePragma)
from .diagnostics import DiagnosticSink
from .lexer import tokenize
from .tokens import Token, TokenKind

_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+(\w+)\s*(.*?)\s*$")
_SYNC_RE = re.compile(r"^\s*sync\s*\(")
_MARKER = "__fluid__"


class _TokenStream:
    """Cursor over a token list with diagnostic-reporting helpers."""

    def __init__(self, tokens: List[Token], sink: DiagnosticSink):
        self.tokens = tokens
        self.sink = sink
        self.pos = 0
        self.failed = False

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.END:
            self.pos += 1
        return token

    def accept(self, kind: TokenKind) -> Optional[Token]:
        if self.peek().kind is kind:
            return self.advance()
        return None

    def expect(self, kind: TokenKind, what: str) -> Optional[Token]:
        token = self.peek()
        if token.kind is kind:
            return self.advance()
        self.sink.error(
            f"expected {what} but found {token.kind.value} "
            f"{token.text!r}", token.line, token.column)
        self.failed = True
        return None


# ---------------------------------------------------------------- pragmas

def parse_data_pragma(payload: str, line: int,
                      sink: DiagnosticSink) -> Optional[DataPragma]:
    stream = _TokenStream(tokenize(payload, line, sink), sink)
    if stream.expect(TokenKind.LBRACE, "'{'") is None:
        return None
    type_token = stream.expect(TokenKind.IDENT, "a type name")
    is_array = stream.accept(TokenKind.STAR) is not None
    name_token = stream.expect(TokenKind.IDENT, "the data member name")
    stream.accept(TokenKind.SEMI)
    stream.expect(TokenKind.RBRACE, "'}'")
    if stream.failed or type_token is None or name_token is None:
        return None
    return DataPragma(type_token.text, name_token.text, is_array, line)


def parse_count_pragma(payload: str, line: int,
                       sink: DiagnosticSink) -> Optional[CountPragma]:
    stream = _TokenStream(tokenize(payload, line, sink), sink)
    if stream.expect(TokenKind.LBRACE, "'{'") is None:
        return None
    type_token = stream.expect(TokenKind.IDENT, "a type name")
    name_token = stream.expect(TokenKind.IDENT, "the count name")
    stream.accept(TokenKind.SEMI)
    stream.expect(TokenKind.RBRACE, "'}'")
    if stream.failed or type_token is None or name_token is None:
        return None
    return CountPragma(type_token.text, name_token.text, line)


def parse_valve_pragma(payload: str, line: int,
                       sink: DiagnosticSink) -> Optional[ValvePragma]:
    stream = _TokenStream(tokenize(payload, line, sink), sink)
    if stream.expect(TokenKind.LBRACE, "'{'") is None:
        return None
    type_token = stream.expect(TokenKind.IDENT, "a valve type")
    name_token = stream.expect(TokenKind.IDENT, "the valve name")
    args_src: Optional[str] = None
    open_paren = stream.accept(TokenKind.LPAREN)
    if open_paren is not None:
        close = _find_matching_paren(stream, sink)
        if close is None:
            return None
        args_src = payload[open_paren.column:close.column - 1].strip()
    stream.accept(TokenKind.SEMI)
    stream.expect(TokenKind.RBRACE, "'}'")
    if stream.failed or type_token is None or name_token is None:
        return None
    return ValvePragma(type_token.text, name_token.text, args_src, line)


def _find_matching_paren(stream: _TokenStream,
                         sink: DiagnosticSink) -> Optional[Token]:
    """Consume tokens until the paren opened just before is closed."""
    depth = 1
    while True:
        token = stream.advance()
        if token.kind is TokenKind.END:
            sink.error("unbalanced parentheses in pragma",
                       token.line, token.column)
            stream.failed = True
            return None
        if token.kind is TokenKind.LPAREN:
            depth += 1
        elif token.kind is TokenKind.RPAREN:
            depth -= 1
            if depth == 0:
                return token


def _parse_name_set(stream: _TokenStream, what: str) -> Optional[List[str]]:
    if stream.expect(TokenKind.LBRACE, f"'{{' opening the {what} set") is None:
        return None
    names: List[str] = []
    if stream.peek().kind is TokenKind.IDENT:
        names.append(stream.advance().text)
        while stream.accept(TokenKind.COMMA):
            token = stream.expect(TokenKind.IDENT, f"a name in the {what} set")
            if token is None:
                return None
            names.append(token.text)
    if stream.expect(TokenKind.RBRACE, f"'}}' closing the {what} set") is None:
        return None
    return names


def parse_task_pragma(payload: str, line: int,
                      sink: DiagnosticSink) -> Optional[TaskPragma]:
    stream = _TokenStream(tokenize(payload, line, sink), sink)
    if stream.expect(TokenKind.LGUARD, "'<<<' opening the guard") is None:
        return None
    name_token = stream.expect(TokenKind.IDENT, "the task name")
    if name_token is None:
        return None
    sets: List[List[str]] = []
    for what in ("start-valve", "end-valve", "input", "output"):
        if stream.expect(TokenKind.COMMA, f"',' before the {what} set") is None:
            return None
        names = _parse_name_set(stream, what)
        if names is None:
            return None
        sets.append(names)
    if stream.expect(TokenKind.RGUARD, "'>>>' closing the guard") is None:
        return None
    func_token = stream.expect(TokenKind.IDENT, "the task function name")
    if func_token is None:
        return None
    func_name = func_token.text
    while stream.accept(TokenKind.DOT):
        part = stream.expect(TokenKind.IDENT, "an attribute name")
        if part is None:
            return None
        func_name += "." + part.text
    open_paren = stream.expect(TokenKind.LPAREN, "'(' opening the call")
    if open_paren is None:
        return None
    close = _find_matching_paren(stream, sink)
    if close is None:
        return None
    args_src = payload[open_paren.column:close.column - 1].strip()
    return TaskPragma(name_token.text, sets[0], sets[1], sets[2], sets[3],
                      func_name, args_src, line)


# ------------------------------------------------------------- host file

def parse_source(source: str, filename: str = "<fluid>",
                 sink: Optional[DiagnosticSink] = None
                 ) -> Tuple[TranslationUnitNode, DiagnosticSink]:
    """Parse a whole FluidPy file into a :class:`TranslationUnitNode`."""
    sink = sink or DiagnosticSink(filename)
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        sink.error(f"host Python syntax error: {exc.msg}",
                   exc.lineno or 0, exc.offset or 1)
        return TranslationUnitNode(filename, lines), sink

    unit = TranslationUnitNode(filename, lines)
    marker_lines = {i + 1 for i, text in enumerate(lines)
                    if text.strip() == _MARKER}

    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        marker = _marker_above(node.lineno, lines, marker_lines)
        if marker is None:
            continue
        fluid_class = _parse_fluid_class(node, lines, sink)
        unit.classes.append(fluid_class)
        unit.owned_ranges.append((marker, node.end_lineno or node.lineno))

    orphaned = marker_lines - {start for start, _ in unit.owned_ranges}
    for line in sorted(orphaned):
        sink.error("__fluid__ marker is not followed by a class definition",
                   line)
    return unit, sink


def _marker_above(class_line: int, lines: List[str],
                  markers: set) -> Optional[int]:
    """Find a ``__fluid__`` marker directly above the class (blank lines
    and comments may intervene)."""
    probe = class_line - 1
    while probe >= 1:
        text = lines[probe - 1].strip()
        if probe in markers:
            return probe
        if text == "" or text.startswith("#"):
            probe -= 1
            continue
        return None
    return None


def _parse_fluid_class(node: ast.ClassDef, lines: List[str],
                       sink: DiagnosticSink) -> FluidClassNode:
    fluid_class = FluidClassNode(
        name=node.name,
        bases=[ast.unparse(base) for base in node.bases],
        line=node.lineno,
        end_line=node.end_lineno or node.lineno)

    region_node: Optional[ast.FunctionDef] = None
    method_ranges: List[Tuple[int, int]] = []
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            start = min([child.lineno] +
                        [d.lineno for d in child.decorator_list])
            end = child.end_lineno or child.lineno
            method_ranges.append((start, end))
            if child.name.lower() == "region":
                region_node = child
                continue
            if child.name == "__init__":
                sink.error(
                    f"fluid class {node.name!r} may not define __init__; "
                    "pass construction parameters as keyword arguments "
                    "(they become attributes)", child.lineno)
                continue
            source = textwrap.dedent(
                "\n".join(lines[start - 1:end]))
            is_generator = any(isinstance(sub, (ast.Yield, ast.YieldFrom))
                               for sub in ast.walk(child))
            params = [arg.arg for arg in child.args.args]
            fluid_class.methods.append(FluidMethod(
                child.name, source, params, child.lineno, is_generator))
        elif isinstance(child, (ast.Assign, ast.AnnAssign)):
            start, end = child.lineno, child.end_lineno or child.lineno
            fluid_class.class_assigns.append(
                textwrap.dedent("\n".join(lines[start - 1:end])))

    # ---- member pragmas: class-level lines not inside any method --------
    def inside_method(line_number: int) -> bool:
        return any(start <= line_number <= end
                   for start, end in method_ranges)

    region_range = (0, -1)
    if region_node is not None:
        region_range = (region_node.lineno, region_node.end_lineno or 0)

    for line_number in range(node.lineno, (node.end_lineno or node.lineno) + 1):
        text = lines[line_number - 1]
        match = _PRAGMA_RE.match(text)
        if not match:
            continue
        kind, payload = match.group(1), match.group(2)
        in_region = region_range[0] <= line_number <= region_range[1]
        if kind == "task":
            if not in_region:
                sink.error("task pragmas are only allowed inside region()",
                           line_number)
            continue  # handled with the region body below
        if in_region or inside_method(line_number):
            sink.error(f"{kind} pragmas must appear at class level",
                       line_number)
            continue
        if kind == "data":
            pragma = parse_data_pragma(payload, line_number, sink)
            if pragma:
                fluid_class.datas.append(pragma)
        elif kind == "count":
            pragma = parse_count_pragma(payload, line_number, sink)
            if pragma:
                fluid_class.counts.append(pragma)
        elif kind == "valve":
            pragma = parse_valve_pragma(payload, line_number, sink)
            if pragma:
                fluid_class.valves.append(pragma)
        else:
            sink.error(f"unknown pragma kind {kind!r}", line_number)

    # ---- region body ------------------------------------------------------
    if region_node is None:
        sink.error(f"fluid class {node.name!r} has no region() method",
                   node.lineno)
        return fluid_class

    body_start = region_node.body[0].lineno
    body_end = region_node.end_lineno or body_start
    # Comments (including pragmas) above the first statement belong to the
    # body too.
    scan_start = region_node.lineno + 1
    for line_number in range(scan_start, body_end + 1):
        raw = lines[line_number - 1]
        match = _PRAGMA_RE.match(raw)
        if match and match.group(1) == "task":
            task = parse_task_pragma(match.group(2), line_number, sink)
            if task is not None:
                fluid_class.region_body.append(RegionStatement(
                    "task", raw.rstrip("\n"), task=task, line=line_number))
            continue
        if match:
            continue  # member pragma already reported above
        if _SYNC_RE.match(raw):
            fluid_class.region_body.append(RegionStatement(
                "sync", raw.rstrip("\n"), line=line_number))
            continue
        fluid_class.region_body.append(RegionStatement(
            "python", raw.rstrip("\n"), line=line_number))
    return fluid_class
