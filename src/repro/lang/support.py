"""Runtime support referenced by generated FluidPy code.

Generated modules import this as ``from repro.lang import support as
_fluid_support``; keeping the helpers here (rather than inlining them
into every generated file) keeps the emitted code small and readable,
mirroring how the paper's translator links against the Fluid runtime
library.
"""

from __future__ import annotations

from typing import Callable, Dict, Type

from ..core.valves import (ConvergenceValve, CountValve, DataFinalValve,
                           PercentValve, PredicateValve, StabilityValve,
                           Valve)

#: Valve type names accepted in ``#pragma valve`` declarations.  The
#: left-hand names are the paper's spellings (``ValveCT``); the runtime
#: class names are accepted too.
VALVE_TYPES: Dict[str, Type[Valve]] = {
    "ValveCT": CountValve,
    "CountValve": CountValve,
    "ValvePC": PercentValve,
    "PercentValve": PercentValve,
    "ValveCV": ConvergenceValve,
    "ConvergenceValve": ConvergenceValve,
    "ValveSB": StabilityValve,
    "StabilityValve": StabilityValve,
    "ValvePred": PredicateValve,
    "PredicateValve": PredicateValve,
    "ValveDF": DataFinalValve,
    "DataFinalValve": DataFinalValve,
}


def declare_valve(type_name: str, name: str) -> Valve:
    """Two-phase valve construction for ``#pragma valve {Type name;}``."""
    try:
        valve_class = VALVE_TYPES[type_name]
    except KeyError:
        raise KeyError(
            f"unknown valve type {type_name!r}; known: "
            f"{sorted(VALVE_TYPES)}") from None
    return valve_class.declared(name)


def make_valve(type_name: str, name: str, *args) -> Valve:
    """One-phase valve construction for ``#pragma valve {Type name(args);}``."""
    valve = declare_valve(type_name, name)
    valve.init(*args)
    return valve


def bind_task(method: Callable, args: tuple) -> Callable:
    """Couple a Fluid method with its scheduling-time arguments.

    The Python analogue of the ``std::bind`` call the paper's translator
    emits (Figure 4, line 20): the returned callable takes only the task
    context and produces the body generator.
    """
    def body(ctx):
        return method(ctx, *args)
    return body
