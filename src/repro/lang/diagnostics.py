"""Source-located diagnostics for the FluidPy translator.

The translator accumulates errors and warnings with ``file:line:col``
locations so that a single compile reports every problem, the way a real
compiler does, instead of stopping at the first.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..core.errors import CompileError


class SourceLocation(NamedTuple):
    filename: str
    line: int       # 1-based
    column: int     # 1-based

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class Diagnostic(NamedTuple):
    severity: str            # "error" | "warning"
    message: str
    location: Optional[SourceLocation]

    def __str__(self) -> str:
        prefix = f"{self.location}: " if self.location else ""
        return f"{prefix}{self.severity}: {self.message}"


class DiagnosticSink:
    """Collects diagnostics during one translation unit."""

    def __init__(self, filename: str = "<fluid>"):
        self.filename = filename
        self.diagnostics: List[Diagnostic] = []

    def error(self, message: str, line: int = 0, column: int = 1) -> None:
        location = SourceLocation(self.filename, line, column) if line else None
        self.diagnostics.append(Diagnostic("error", message, location))

    def warning(self, message: str, line: int = 0, column: int = 1) -> None:
        location = SourceLocation(self.filename, line, column) if line else None
        self.diagnostics.append(Diagnostic("warning", message, location))

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def raise_if_errors(self) -> None:
        if not self.errors:
            return
        summary = "\n".join(str(d) for d in self.diagnostics)
        first = self.errors[0]
        raise CompileError(
            f"{len(self.errors)} error(s) translating {self.filename}:\n"
            f"{summary}",
            filename=self.filename,
            line=first.location.line if first.location else 0,
            column=first.location.column if first.location else 0)
