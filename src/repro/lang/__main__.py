"""Command-line entry point for the FluidPy translator.

Usage::

    python -m repro.lang input.fpy [-o output.py] [--check] [--stats]
"""

from __future__ import annotations

import argparse
import sys

from ..core.errors import CompileError
from .translator import translate_file


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lang",
        description="Translate FluidPy (pragma-annotated) source to plain "
                    "Python over the repro runtime.")
    parser.add_argument("input", help="FluidPy source file (.fpy)")
    parser.add_argument("-o", "--output",
                        help="write generated Python here (default: stdout)")
    parser.add_argument("--check", action="store_true",
                        help="only run diagnostics; emit no code")
    parser.add_argument("--stats", action="store_true",
                        help="print Table-2 style pragma statistics")
    args = parser.parse_args(argv)

    try:
        result = translate_file(args.input, strict=not args.check)
    except CompileError as exc:
        print(exc, file=sys.stderr)
        return 1

    for diagnostic in result.diagnostics:
        print(diagnostic, file=sys.stderr)

    if args.stats:
        print(f"{args.input}: {result.total_lines()} lines, "
              f"{result.total_pragmas()} pragmas "
              f"({100 * result.pragma_ratio():.1f}%)")
        for stats in result.per_class_stats():
            print(f"  region {stats.class_name}: {stats.region_lines} lines, "
                  f"{stats.region_pragmas} pragmas "
                  f"({100 * stats.region_ratio:.1f}%)")
        return 0

    if args.check:
        return 1 if any(d.severity == "error"
                        for d in result.diagnostics) else 0

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.python_source)
    else:
        print(result.python_source)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
