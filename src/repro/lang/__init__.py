"""FluidPy: the paper's pragma language and source-to-source translator.

Pipeline: :mod:`lexer` tokenizes pragma payloads, :mod:`parser` builds
the translation-unit AST (host structure via Python's own parser),
:mod:`semantics` enforces the region rules at compile time, and
:mod:`codegen` emits plain Python against :mod:`repro.core`.

Command line: ``python -m repro.lang input.fpy -o output.py``.
"""

from .ast_nodes import (CountPragma, DataPragma, FluidClassNode, FluidMethod,
                        TaskPragma, TranslationUnitNode, ValvePragma)
from .diagnostics import Diagnostic, DiagnosticSink, SourceLocation
from .support import VALVE_TYPES, bind_task, declare_valve, make_valve
from .translator import (PragmaStats, TranslationResult, check_source,
                         load_file, load_source, translate_file,
                         translate_source)

__all__ = [
    "CountPragma", "DataPragma", "FluidClassNode", "FluidMethod",
    "TaskPragma", "TranslationUnitNode", "ValvePragma",
    "Diagnostic", "DiagnosticSink", "SourceLocation",
    "VALVE_TYPES", "bind_task", "declare_valve", "make_valve",
    "PragmaStats", "TranslationResult", "check_source",
    "load_file", "load_source", "translate_file", "translate_source",
]
