"""Token definitions for the Fluid pragma mini-language (paper Figure 2).

Only the pragma payloads are tokenized with this set; the Python host
code around them is handled by the standard :mod:`ast` module.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class TokenKind(enum.Enum):
    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LGUARD = "<<<"
    RGUARD = ">>>"
    COMMA = ","
    SEMI = ";"
    STAR = "*"
    DOT = "."
    OP = "operator"        # arithmetic etc. inside argument expressions
    END = "end of pragma"


class Token(NamedTuple):
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})"


#: Single-character punctuation understood outside of guard brackets.
PUNCTUATION = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    "*": TokenKind.STAR,
    ".": TokenKind.DOT,
}

#: Multi-character operator fragments allowed inside argument expressions.
OPERATORS = ("**", "//", "==", "!=", "<=", ">=", "->",
             "+", "-", "/", "%", "<", ">", "=", ":")
