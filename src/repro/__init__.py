"""repro — a reproduction of *Fluid: A Framework for Approximate
Concurrency via Controlled Dependency Relaxation* (PLDI 2021).

Quickstart::

    from repro import (FluidRegion, PercentValve, SimExecutor, run_serial)

    class Pipeline(FluidRegion):
        def build(self):
            src = self.input_data("src", payload)
            mid = self.add_array("mid", bytearray(n))
            out = self.add_array("out", bytearray(n))
            ct = self.add_count("ct")

            def produce(ctx):
                for i in range(n):
                    mid[i] = transform(src.read()[i])
                    ct.add()
                    yield 1.0

            def consume(ctx):
                for i in range(n):
                    out[i] = refine(mid[i])
                    yield 1.0

            t1 = self.add_task("produce", produce,
                               inputs=[src], outputs=[mid])
            self.add_task("consume", consume,
                          start_valves=[PercentValve(ct, 0.4, n)],
                          end_valves=[PercentValve(ct, 1.0, n)],
                          inputs=[mid], outputs=[out])

    executor = SimExecutor(cores=20)
    executor.submit(Pipeline())
    result = executor.run()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import (AlwaysValve, CompileError, ConvergenceValve, Count,
                   CountValve, DataFinalValve, FluidArray, FluidData,
                   FluidError, FluidRegion, FluidScalar, FluidTask,
                   GraphError, ModulationPolicy, NeverValve, PercentValve,
                   TaskBodyError,
                   PredicateValve, RegionStats, SchedulerError,
                   StabilityValve, StalenessValve, TaskContext,
                   TaskGraph, TaskSpec,
                   TaskState, Valve, ValveError, memoization_enabled,
                   set_memoization, submit_all, submit_chain,
                   submit_stages, sync)
from .runtime import (BACKENDS, Overheads, ProcessExecutor, RunResult,
                      SimExecutor, SimResult, ThreadExecutor, Trace,
                      make_executor, run_serial)
from .runtime.gantt import TimelineRecorder
from .telemetry import (ChromeTraceExporter, MetricsRegistry, Telemetry,
                        TelemetryBus, TelemetryEvent)
from .tuning import ThresholdTuner, TuningResult, ValveSelector

__version__ = "1.0.0"

__all__ = [
    "AlwaysValve", "CompileError", "ConvergenceValve", "Count",
    "CountValve", "DataFinalValve", "FluidArray", "FluidData",
    "FluidError", "FluidRegion", "FluidScalar", "FluidTask",
    "GraphError", "ModulationPolicy", "NeverValve", "PercentValve",
    "TaskBodyError",
    "PredicateValve", "RegionStats", "SchedulerError", "StabilityValve",
    "StalenessValve",
    "TaskContext", "TaskGraph", "TaskSpec", "TaskState", "Valve",
    "ValveError", "memoization_enabled", "set_memoization",
    "submit_all", "submit_chain", "submit_stages", "sync",
    "BACKENDS", "Overheads", "ProcessExecutor", "RunResult", "SimExecutor",
    "SimResult", "ThreadExecutor", "Trace", "make_executor", "run_serial",
    "TimelineRecorder", "ThresholdTuner", "TuningResult", "ValveSelector",
    "ChromeTraceExporter", "MetricsRegistry", "Telemetry", "TelemetryBus",
    "TelemetryEvent",
    "__version__",
]
