"""The eight evaluation applications (paper Table 2), fluidized.

Each module provides the precise kernels, a fluid region construction,
and the :class:`~repro.apps.base.FluidApp` protocol the benchmark
harness consumes.  The pragma-annotated FluidPy source of each app
lives in ``fluidsrc/``.
"""

from .base import (AppRun, DEFAULT_OVERHEADS, FluidApp, PAPER_CORES,
                   SubmitPlan)
from .bellman_ford import BellmanFordApp
from .dct import DCTApp
from .edge_detection import EdgeDetectionApp
from .fft import FFTApp
from .graph_coloring import GraphColoringApp
from .kmeans import KMeansApp
from .medusadock import MedusaDockApp
from .neural_network import NeuralNetworkApp

ALL_APPS = {
    "edge_detection": EdgeDetectionApp,
    "kmeans": KMeansApp,
    "bellman_ford": BellmanFordApp,
    "graph_coloring": GraphColoringApp,
    "fft": FFTApp,
    "dct": DCTApp,
    "neural_network": NeuralNetworkApp,
    "medusadock": MedusaDockApp,
}

__all__ = [
    "AppRun", "DEFAULT_OVERHEADS", "FluidApp", "PAPER_CORES",
    "SubmitPlan", "ALL_APPS",
    "BellmanFordApp", "DCTApp", "EdgeDetectionApp", "FFTApp",
    "GraphColoringApp", "KMeansApp", "MedusaDockApp",
    "NeuralNetworkApp",
]
