"""MedusaDock: dock-energy scoring -> lowest-energy pose selection.

The paper's drug-discovery workload: the producer computes a force-field
docking energy for every candidate pose, the consumer "starts selecting
poses when a portion of the poses are processed" (Table 2).  Energies
arrive in arbitrary order; unprocessed poses read as +inf, so an eager
selection can miss a good pose that has not been scored yet — the top-k
overlap with the precise selection is the accuracy metric.

Valve types (Figure 8): MedusaDock "prefers the convergence valve since
the lowest pose energy converges at an early stage for many proteins" —
the synthetic pose sets plant their good poses early-ish in the scoring
order a fraction of the time, so a valve watching the running minimum
pays off where a fixed percentage does not.

The end valve enforces the paper's floor: "we do not allow pose
selection to start if we only check pose energy a few times, to
guarantee the software invests in enough poses.  However, around 51% of
proteins fail this check" — selection runs that finish before the floor
fraction of poses is scored fail quality and re-execute.

Each protein is one region; multiple proteins exploit inter-region
concurrency.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.region import FluidRegion
from ..core.valves import (ConvergenceValve, DataFinalValve, PercentValve)
from ..metrics.error import topk_overlap
from ..workloads.molecules import DockingInput, pose_energy
from .base import FluidApp, SubmitPlan

SCAN_COST_PER_POSE = 12.0


class DockingRegion(FluidRegion):
    """header -> dock (energies) -> select (top-k, leaf)."""

    def __init__(self, app: "MedusaDockApp", docking: DockingInput,
                 threshold: float, valve: str, name=None):
        self.app = app
        self.docking = docking
        self.threshold = threshold
        self.valve = valve
        super().__init__(name)

    def build(self):
        app = self.app
        docking = self.docking
        num_poses = docking.num_poses
        src = self.input_data("src", docking)
        ready = self.add_data("ready")
        energies = np.full(num_poses, np.inf)
        energy_cell = self.add_array("energies", energies)
        selection_cell = self.add_array("selection", None)
        ct = self.add_count("ct_scored")
        min_energy = self.add_count("min_energy", initial=np.inf)

        # Per-pose cost scales with the interaction-pair count, the
        # knob behind "larger input sizes lead to better results".
        pose_cost = SCAN_COST_PER_POSE * docking.protein.shape[0] * \
            docking.poses.shape[1] / 64.0

        def header(ctx):
            ready.write(True)
            yield 16.0

        self.add_task("header", header, inputs=[src], outputs=[ready])

        def dock(ctx):
            for index in range(num_poses):
                energies[index] = pose_energy(docking.protein,
                                              docking.poses[index])
                energy_cell.touch()
                min_energy.track_min(energies[index])
                ct.add()
                yield pose_cost

        self.add_task("medusa_dock", dock,
                      start_valves=[DataFinalValve(ready)],
                      inputs=[ready], outputs=[energy_cell])

        selection = np.full(app.top_k, -1, dtype=np.int64)
        self._selection = selection

        def select(ctx):
            order = []
            for start in range(0, num_poses, 8):
                stop = min(start + 8, num_poses)
                for index in range(start, stop):
                    order.append((energies[index], index))
                yield 2.0 * (stop - start)
            order.sort()
            for rank in range(app.top_k):
                selection[rank] = order[rank][1] if rank < len(order) else -1
            selection_cell.init(selection)
            selection_cell.touch()
            yield float(app.top_k)

        self.add_task(
            "select_pose", select,
            start_valves=[self._start_valve(ct, min_energy, num_poses)],
            end_valves=[PercentValve(ct, app.floor_fraction, num_poses,
                                     name="v_floor")],
            inputs=[energy_cell], outputs=[selection_cell])

    def _start_valve(self, ct, min_energy, num_poses):
        if self.valve == "convergence":
            # Satisfied when the running minimum stopped improving over a
            # window of scored poses — but never before the quality
            # floor's share of poses has been invested, so a spuriously
            # quiet stretch early in the scan cannot trigger a selection
            # that is doomed to fail its own end valve.
            window = max(2, int(num_poses * self.app.convergence_window))
            floor = int(num_poses * self.app.floor_fraction)
            return ConvergenceValve(min_energy, window=window,
                                    tolerance=self.app.convergence_tolerance,
                                    min_updates=max(window + 1, floor),
                                    mode="min", name="v_converge")
        return PercentValve(ct, self.threshold, num_poses, name="v_start")

    def selection(self) -> np.ndarray:
        return self._selection


class MedusaDockApp(FluidApp):
    """Top-k pose selection over a set of synthetic proteins."""

    name = "medusadock"
    default_threshold = 0.75
    #: accepting a selection cancels the rest of the docking scan — the
    #: skip that produces MedusaDock's latency gain.
    cancel_first_runs = True

    def __init__(self, dockings: Sequence[DockingInput], top_k: int = 4,
                 floor_fraction: float = 0.5,
                 convergence_window: float = 0.25,
                 convergence_tolerance: float = 1e-6):
        super().__init__()
        self.dockings = list(dockings)
        self.top_k = top_k
        self.floor_fraction = floor_fraction
        self.convergence_window = convergence_window
        self.convergence_tolerance = convergence_tolerance

    def build_regions(self, threshold: float, valve: str,
                      parallelism: int) -> SubmitPlan:
        plan = SubmitPlan()
        regions = [DockingRegion(self, docking, threshold, valve,
                                 name=f"dock_{docking.name}_{index}")
                   for index, docking in enumerate(self.dockings)]
        for region in regions:   # proteins scored one after another, as
            plan.add_region(region)   # in the original pipeline
        plan.extras["regions"] = regions
        return plan

    def extract_output(self, plan: SubmitPlan) -> List[np.ndarray]:
        return [region.selection().copy()
                for region in plan.extras["regions"]]

    def compute_error(self, output, precise_output) -> float:
        overlaps = [topk_overlap(got, want)
                    for got, want in zip(output, precise_output)]
        return min(1.0, 1.0 - float(np.mean(overlaps)))

    def compute_metric(self, output):
        if self._precise is None:
            return ("topk_overlap", 1.0)
        overlaps = [topk_overlap(got, want)
                    for got, want in zip(output, self._precise.output)]
        return ("topk_overlap", float(np.mean(overlaps)))
