"""Graph Coloring: find local-maximum vertices -> color them.

The baseline is the round-based Jones-Plassmann style algorithm of the
paper's reference [82]: each round selects the uncolored vertices whose
random priority beats every uncolored neighbour (an independent set) and
colors them with their smallest available color.  Fluidization (Table
2): the *coloring* task starts "coloring selected nodes before finding
out all local maximum vertices".

Racing ahead has a real quality cost: a vertex colored while its
neighbour's selection flag is still unknown can grab the same smallest
color as that neighbour in the same round.  The coloring task resolves
conflicts it can see by bumping to the next free color, so the error
metric is the paper's: the number of colors used (the graph's "spectral
number") normalized to the precise run of the same algorithm.

Rounds are chained regions; multithreading (Figure 12) splits the
selection scan into ``p`` vertex bands.
"""

from __future__ import annotations


import numpy as np

from ..core.region import FluidRegion
from ..core.valves import DataFinalValve, PercentValve
from ..metrics.error import coloring_error
from ..workloads.graphs import GraphInput
from .base import FluidApp, SubmitPlan

# Per-vertex virtual costs scale with degree: selecting checks every
# neighbour's priority, coloring scans every neighbour's color.  This is
# what makes dense graphs heavier per round — and fluid gains larger on
# dense inputs, as the paper observes.
SELECT_COST_BASE = 2.0
COLOR_COST_BASE = 3.0
CHUNK_VERTICES = 64
SKIP_COST_PER_VERTEX = 0.5


class ColoringRoundRegion(FluidRegion):
    """One round: header -> p x select(band) -> color (leaf)."""

    def __init__(self, app: "GraphColoringApp", round_index: int,
                 threshold: float, parallelism: int, state: dict,
                 name=None):
        self.app = app
        self.round_index = round_index
        self.threshold = threshold
        self.parallelism = parallelism
        self.state = state  # {"colors": array, "priority": array}
        super().__init__(name or f"gc_round{round_index}")

    def build(self):
        app = self.app
        graph = app.graph
        n = graph.num_vertices
        colors = self.state["colors"]
        priority = self.state["priority"]
        neighbours = app.neighbours
        ready = self.add_data("ready")
        colored_cell = self.add_data("colored")
        # -1 unknown, 0 not selected, 1 selected this round
        selected = np.full(n, -1, dtype=np.int8)

        def header(ctx):
            ready.write(True)
            yield 16.0

        self.add_task("header", header, outputs=[ready])

        bounds = np.linspace(0, n, self.parallelism + 1).astype(int)
        bands = [(int(bounds[i]), int(bounds[i + 1]))
                 for i in range(self.parallelism)
                 if bounds[i + 1] > bounds[i]]

        select_cells = []
        start_valves = []
        end_valves = []
        for band_index, (start, stop) in enumerate(bands):
            cell = self.add_array(f"selected_{band_index}", selected)
            ct = self.add_count(f"scanned_{band_index}")
            band_size = stop - start

            def select_body(ctx, start=start, stop=stop, ct=ct, cell=cell):
                for chunk in range(start, stop, CHUNK_VERTICES):
                    hi = min(chunk + CHUNK_VERTICES, stop)
                    cost = 0.0
                    for vertex in range(chunk, hi):
                        if colors[vertex] >= 0:
                            selected[vertex] = 0
                            cost += SKIP_COST_PER_VERTEX
                            continue
                        is_max = all(
                            colors[other] >= 0 or
                            priority[other] < priority[vertex]
                            for other in neighbours[vertex])
                        selected[vertex] = 1 if is_max else 0
                        cost += SELECT_COST_BASE + len(neighbours[vertex])
                    cell.touch()
                    ct.add(hi - chunk)
                    yield cost

            self.add_task(f"select_{band_index}", select_body,
                          start_valves=[DataFinalValve(ready)],
                          inputs=[ready], outputs=[cell])
            select_cells.append(cell)
            start_valves.append(PercentValve(
                ct, self.threshold, band_size, name=f"v_start_{band_index}"))
            # Lenient quality bar: eager coloring is *accepted* — that is
            # the approximation GC trades for latency; vertices whose
            # selection the color pass missed fall to later rounds (and,
            # past the round budget, to the greedy sweep, growing the
            # spectral number).  A 100% bar would force a full re-pass
            # every round and erase the gains.
            quality = min(1.0, self.threshold + self.app.quality_margin)
            end_valves.append(PercentValve(
                ct, quality, band_size, name=f"v_end_{band_index}"))

        def color_body(ctx):
            newly = 0
            for chunk in range(0, n, CHUNK_VERTICES):
                hi = min(chunk + CHUNK_VERTICES, n)
                cost = 0.0
                for vertex in range(chunk, hi):
                    if selected[vertex] != 1 or colors[vertex] >= 0:
                        cost += SKIP_COST_PER_VERTEX
                        continue
                    used = {colors[other] for other in neighbours[vertex]
                            if colors[other] >= 0}
                    color = 0
                    while color in used:
                        color += 1
                    colors[vertex] = color
                    newly += 1
                    cost += COLOR_COST_BASE + len(neighbours[vertex])
                colored_cell.touch()
                yield cost
            self.state["progress"] = newly

        self.add_task("color", color_body, start_valves=start_valves,
                      end_valves=end_valves, inputs=select_cells,
                      outputs=[colored_cell])


class GraphColoringApp(FluidApp):
    """Round-based greedy coloring with a fixed round budget.

    ``rounds`` must be generous enough for the precise run to color every
    vertex (checked by the tests); the fluid run uses the same budget —
    any vertex left uncolored by racing is swept up in later rounds, and
    a final sequential sweep guarantees totality.
    """

    name = "graph_coloring"
    #: skipping the selection tail is where GC's fluid gains come from
    cancel_first_runs = True
    default_threshold = 0.5

    def __init__(self, graph: GraphInput, rounds: int = 0,
                 round_slack: int = 1, round_cap: int = 12,
                 quality_margin: float = 0.03):
        super().__init__()
        self.graph = graph
        self.quality_margin = quality_margin
        self.neighbours = graph.adjacency_lists()
        rng = np.random.default_rng(graph.seed + 12345)
        self.priority = rng.permutation(graph.num_vertices)
        # Budget what the precise algorithm needs (plus slack), capped:
        # Jones-Plassmann has a long tail of near-empty rounds that is
        # pure scheduling overhead, so *both* versions hand the tail to
        # the greedy sweep.  The tight budget is also what makes racing
        # cost colors — selections deferred past the last round fall to
        # the sweep.
        self.rounds = rounds or min(self._reference_rounds() + round_slack,
                                    round_cap)

    def _reference_rounds(self) -> int:
        colors = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        rounds = 0
        while (colors < 0).any():
            rounds += 1
            chosen = [v for v in range(self.graph.num_vertices)
                      if colors[v] < 0 and all(
                          colors[o] >= 0 or
                          self.priority[o] < self.priority[v]
                          for o in self.neighbours[v])]
            for vertex in chosen:
                used = {colors[o] for o in self.neighbours[vertex]
                        if colors[o] >= 0}
                color = 0
                while color in used:
                    color += 1
                colors[vertex] = color
        return rounds

    def build_regions(self, threshold: float, valve: str,
                      parallelism: int) -> SubmitPlan:
        state = {
            "colors": np.full(self.graph.num_vertices, -1, dtype=np.int64),
            "priority": self.priority,
        }
        plan = SubmitPlan()
        for round_index in range(self.rounds):
            plan.add_region(ColoringRoundRegion(
                self, round_index, threshold, parallelism, state,
                name=f"gc_r{round_index}_{id(state) % 9973}"))
        plan.extras["state"] = state
        return plan

    def extract_output(self, plan: SubmitPlan) -> np.ndarray:
        colors = plan.extras["state"]["colors"]
        # Totality sweep: color any vertex the round budget missed.
        for vertex in np.flatnonzero(colors < 0):
            used = {colors[other] for other in self.neighbours[vertex]
                    if colors[other] >= 0}
            color = 0
            while color in used:
                color += 1
            colors[vertex] = color
        return colors.copy()

    def compute_error(self, output: np.ndarray, precise_output) -> float:
        return min(1.0, coloring_error(output, precise_output))

    def compute_metric(self, output: np.ndarray):
        return ("colors", float(output.max()) + 1.0)

    def conflicts(self, colors: np.ndarray) -> int:
        """Sanity metric: adjacent same-color pairs (should be zero)."""
        count = 0
        for s, d in zip(self.graph.src.tolist(), self.graph.dst.tolist()):
            if s != d and colors[s] == colors[d]:
                count += 1
        return count
