"""Edge Detection: noise-removal filter -> gradient filter (Section 4.3).

The paper's running example.  The producer smooths the image (Gaussian
or Mean 3x3), the consumer extracts edges (Sobel or Laplacian); the
consumer may start once a fraction of the rows have been smoothed and
reads the *unsmoothed* pixels for rows the producer has not reached —
exactly the semantics of Figure 3 (the work buffer starts as a copy of
the noisy input).  The end valve demands the whole image smoothed before
the gradient pass finishes, triggering re-execution when the consumer
races too far ahead ("if only a few pixels are smoothed ... the result
is inaccurate and t2 is re-executed").

The four filter combinations of Figure 9 are the ``noise_filter`` x
``gradient`` parameters; multithreading (Figure 12) splits the image
into row bands fanned out under a header task.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.region import FluidRegion
from ..core.valves import DataFinalValve, PercentValve
from ..metrics.error import normalized_mse, psnr
from .base import FluidApp, SubmitPlan

GAUSSIAN = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=float) / 16.0
MEAN = np.ones((3, 3)) / 9.0
SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=float)
SOBEL_Y = SOBEL_X.T
LAPLACIAN = np.array([[0, 1, 0], [1, -4, 1], [0, 1, 0]], dtype=float)

#: per-pixel virtual costs: Gaussian is heavier than Mean, Sobel heavier
#: than Laplacian ("Laplacian runs faster than Sobel", Section 7.3).
FILTER_COST = {"gaussian": 9.0, "mean": 5.0}
GRADIENT_COST = {"sobel": 18.0, "laplacian": 4.0}


def conv3x3_row(image: np.ndarray, row: int, kernel: np.ndarray) -> np.ndarray:
    """One output row of a clamped-border 3x3 convolution."""
    height, width = image.shape
    out = np.zeros(width)
    for dy in (-1, 0, 1):
        source = image[min(max(row + dy, 0), height - 1)]
        padded = np.concatenate(([source[0]], source, [source[-1]]))
        for dx in (-1, 0, 1):
            out += kernel[dy + 1, dx + 1] * padded[1 + dx:1 + dx + width]
    return out


def gradient_row(image: np.ndarray, row: int, gradient: str) -> np.ndarray:
    if gradient == "sobel":
        gx = conv3x3_row(image, row, SOBEL_X)
        gy = conv3x3_row(image, row, SOBEL_Y)
        return np.abs(gx) + np.abs(gy)
    return np.abs(conv3x3_row(image, row, LAPLACIAN))


class EdgeDetectionRegion(FluidRegion):
    """One fluid region over the whole image (or one band fan-out)."""

    def __init__(self, app: "EdgeDetectionApp", threshold: float,
                 parallelism: int, name=None):
        self.app = app
        self.threshold = threshold
        self.parallelism = parallelism
        super().__init__(name)

    def build(self):
        app = self.app
        height, width = app.image.shape
        pixels = height * width
        src = self.input_data("src", app.image)
        ready = self.add_data("ready")
        work = app.image.copy()       # smoothed in place; starts noisy
        edges = np.zeros_like(app.image)

        bands = self._bands(height)
        filter_cost = FILTER_COST[app.noise_filter]
        gradient_cost = GRADIENT_COST[app.gradient]
        kernel = GAUSSIAN if app.noise_filter == "gaussian" else MEAN

        def header(ctx):
            ready.write(True)
            yield 32.0

        self.add_task("header", header, inputs=[src], outputs=[ready])

        self._edge_cells = []
        for band_index, (start, stop) in enumerate(bands):
            band_rows = stop - start
            filtered = self.add_array(f"filtered_{band_index}", work)
            out_cell = self.add_array(f"edges_{band_index}", edges)
            ct = self.add_count(f"ct_{band_index}")
            band_pixels = band_rows * width

            def filter_body(ctx, start=start, stop=stop, ct=ct,
                            filtered=filtered):
                source = src.read()
                for row in range(start, stop):
                    smoothed = conv3x3_row(source, row, kernel)
                    work[row] = smoothed
                    filtered.touch()
                    ct.add(width)
                    yield filter_cost * width

            def gradient_body(ctx, start=start, stop=stop,
                              out_cell=out_cell):
                for row in range(start, stop):
                    edges[row] = gradient_row(work, row, app.gradient)
                    out_cell.touch()
                    yield gradient_cost * width

            self.add_task(
                f"filter_{band_index}", filter_body,
                start_valves=[DataFinalValve(ready)],
                inputs=[ready], outputs=[filtered])
            self.add_task(
                f"gradient_{band_index}", gradient_body,
                start_valves=[PercentValve(ct, self.threshold, band_pixels,
                                           name=f"v_start_{band_index}")],
                end_valves=[PercentValve(ct, 1.0, band_pixels,
                                         name=f"v_end_{band_index}")],
                inputs=[filtered], outputs=[out_cell])
            self._edge_cells.append(out_cell)

        self._edges = edges

    def _bands(self, height: int) -> List:
        parallelism = min(self.parallelism, height)
        bounds = np.linspace(0, height, parallelism + 1).astype(int)
        return [(int(bounds[i]), int(bounds[i + 1]))
                for i in range(parallelism) if bounds[i + 1] > bounds[i]]

    def edge_map(self) -> np.ndarray:
        return self._edges


class EdgeDetectionApp(FluidApp):
    """Edge detection on one image with configurable filter chain."""

    name = "edge_detection"

    def __init__(self, image: np.ndarray, noise_filter: str = "gaussian",
                 gradient: str = "sobel"):
        super().__init__()
        if noise_filter not in FILTER_COST:
            raise ValueError(f"unknown noise filter {noise_filter!r}")
        if gradient not in GRADIENT_COST:
            raise ValueError(f"unknown gradient filter {gradient!r}")
        self.image = np.asarray(image, dtype=float)
        self.noise_filter = noise_filter
        self.gradient = gradient

    def build_regions(self, threshold: float, valve: str,
                      parallelism: int) -> SubmitPlan:
        plan = SubmitPlan()
        region = EdgeDetectionRegion(self, threshold, parallelism)
        plan.add_region(region)
        plan.extras["region"] = region
        return plan

    def extract_output(self, plan: SubmitPlan) -> np.ndarray:
        return plan.extras["region"].edge_map().copy()

    def compute_error(self, output: np.ndarray,
                      precise_output: np.ndarray) -> float:
        return min(1.0, normalized_mse(output, precise_output))

    def compute_metric(self, output: np.ndarray):
        precise = self._precise.output if self._precise is not None else output
        return ("psnr_db", psnr(output, precise))
