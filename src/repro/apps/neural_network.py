"""Neural network inference: a fluidized layer chain (LeNet / VGG role).

The paper's class-3 graph: "start next layer before all feature
calculated" (Table 2).  Layer ``k+1`` begins once a fraction of layer
``k``'s activations are computed; unreached batch rows still hold zeros,
so racing too far misclassifies those samples until re-execution (or the
quality bar) repairs them.

Three networks stand in for the paper's models (see DESIGN.md):

* ``lenet`` — small 4-layer MLP (the Mnist/LeNet role);
* ``vgg``   — a much wider 4-layer MLP (the ImageNet/VGG role: deeper
  payload, approximation hurts accuracy more);
* ``squeezed`` — the ``lenet`` topology with factorized, 4x-narrower
  hidden layers: an *already approximate* network playing Squeezenet's
  part in the composition study (Figure 10).

The logits layer is gated on its complete input (it is tiny and would
race unboundedly); the interior layers carry the swept threshold, and
the leaf's quality function checks that layer 1 covered (almost) the
whole batch by prediction time.  Interior layers whose producer finished
while they ran re-execute per Section 6.1; those re-executions become
pointless once the logits are accepted and are early-terminated — the
same phenomenon as the paper's Table-3 NN row, where upper layers stall
in W and a still-running layer is terminated when the last layer
finishes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.region import FluidRegion
from ..core.valves import PercentValve
from ..metrics.error import normalized_accuracy, prediction_agreement
from ..workloads.mnist import DigitDataset
from .base import FluidApp, SubmitPlan

#: (hidden-layer widths, input pooling factor) per network variant.
#: Widths are chosen so successive layers' per-row costs shrink gently:
#: consumers only outrace producers when the start threshold is small,
#: which is what makes the Figure-7 accuracy curve bend down at low
#: thresholds instead of collapsing everywhere.  ``squeezed`` pools the
#: input 2x and narrows every layer — the already-approximate network of
#: the Figure-10 composition study.
ARCHITECTURES: Dict[str, Tuple[List[int], int]] = {
    "lenet": ([288, 256, 224], 1),
    "vgg": ([768, 640, 512], 1),
    "squeezed": ([144, 128, 112], 2),
}

ROW_CHUNK = 16
MAC_COST = 1.0 / 64.0   # virtual cost per multiply-accumulate (scaled)


class NNRegion(FluidRegion):
    """layer1 -> layer2 -> layer3 -> layer4 (leaf, quality on layer3)."""

    def __init__(self, app: "NeuralNetworkApp", batch: np.ndarray,
                 threshold: float, name=None):
        self.app = app
        self.batch = batch
        self.threshold = threshold
        super().__init__(name)

    def build(self):
        app = self.app
        batch = self.batch
        rows = len(batch)
        src = self.input_data("src", batch)
        weights = app.weights
        dims = app.layer_dims
        activations = [batch] + [
            np.zeros((rows, dim)) for dim in dims[1:]]
        self._logits = activations[-1]

        previous_cell = src
        previous_count = None
        first_count = None
        num_layers = len(weights)
        for layer in range(num_layers):
            w, b = weights[layer]
            out_cell = self.add_array(f"acts_{layer + 1}",
                                      activations[layer + 1])
            ct = self.add_count(f"rows_{layer + 1}")
            cost_per_row = MAC_COST * dims[layer] * dims[layer + 1]
            is_last = layer == num_layers - 1

            def layer_body(ctx, layer=layer, w=w, b=b, ct=ct,
                           out_cell=out_cell, is_last=is_last,
                           cost_per_row=cost_per_row):
                source = activations[layer]
                target = activations[layer + 1]
                for start in range(0, rows, ROW_CHUNK):
                    stop = min(start + ROW_CHUNK, rows)
                    pre = source[start:stop] @ w + b
                    target[start:stop] = pre if is_last else \
                        np.maximum(pre, 0.0)
                    out_cell.touch()
                    ct.add(stop - start)
                    yield cost_per_row * (stop - start)

            start_valves = []
            if previous_count is not None:
                # The logits layer is tiny and races unboundedly, so it
                # waits for its full input; the interior layers carry the
                # swept threshold.
                fraction = 1.0 if is_last else self.threshold
                start_valves = [PercentValve(
                    previous_count, fraction, rows,
                    name=f"v_start_{layer + 1}")]
            end_valves = []
            if is_last:
                end_valves = [PercentValve(
                    first_count, app.quality_fraction, rows,
                    name="v_quality")]
            self.add_task(f"layer{layer + 1}", layer_body,
                          start_valves=start_valves, end_valves=end_valves,
                          inputs=[previous_cell], outputs=[out_cell])
            previous_cell = out_cell
            previous_count = ct
            if first_count is None:
                first_count = ct

    def logits(self) -> np.ndarray:
        return self._logits


class NeuralNetworkApp(FluidApp):
    """Batch inference over a digit dataset with a planted-teacher model.

    The model is fit in closed form (one ridge-regression step from
    inputs to one-hot labels, then split across the hidden layers by
    seeded random projections), giving a deterministic network whose
    precise accuracy is high — so approximation-induced accuracy drops
    are attributable to fluidization alone.
    """

    name = "neural_network"

    def __init__(self, dataset: DigitDataset, architecture: str = "lenet",
                 batch_size: int = 128, seed: int = 0,
                 quality_fraction: float = 0.95):
        super().__init__()
        if architecture not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {architecture!r}; "
                             f"have {sorted(ARCHITECTURES)}")
        self.dataset = dataset
        self.architecture = architecture
        self.batch_size = batch_size
        self.seed = seed
        self.quality_fraction = quality_fraction
        hidden, self.pool = ARCHITECTURES[architecture]
        features = dataset.inputs.shape[1] // self.pool
        self.layer_dims = [features] + hidden + [dataset.num_classes]
        self.weights = self._fit_weights()

    def pooled_inputs(self) -> np.ndarray:
        """Stride-``pool`` feature subsampling (Squeezenet's downsizing)."""
        if self.pool == 1:
            return self.dataset.inputs
        features = self.layer_dims[0] * self.pool
        return self.dataset.inputs[:, :features].reshape(
            len(self.dataset.inputs), self.layer_dims[0],
            self.pool).mean(axis=2)

    def _fit_weights(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        rng = np.random.default_rng(self.seed)
        dims = self.layer_dims
        weights = []
        for layer in range(len(dims) - 1):
            scale = np.sqrt(2.0 / dims[layer])
            w = rng.normal(0.0, scale, size=(dims[layer], dims[layer + 1]))
            b = np.zeros(dims[layer + 1])
            weights.append((w, b))
        # Calibrate the final layer in closed form so precise predictions
        # track the labels: run the frozen random feature stack, then
        # ridge-regress to one-hot targets.
        acts = self.pooled_inputs()
        for w, b in weights[:-1]:
            acts = np.maximum(acts @ w + b, 0.0)
        onehot = np.eye(self.dataset.num_classes)[self.dataset.labels]
        gram = acts.T @ acts + 1e-3 * np.eye(acts.shape[1])
        weights[-1] = (np.linalg.solve(gram, acts.T @ onehot),
                       np.zeros(self.dataset.num_classes))
        return weights

    def build_regions(self, threshold: float, valve: str,
                      parallelism: int) -> SubmitPlan:
        plan = SubmitPlan()
        regions = []
        inputs = self.pooled_inputs()
        for index, start in enumerate(range(0, len(inputs),
                                            self.batch_size)):
            batch = inputs[start:start + self.batch_size]
            regions.append(NNRegion(self, batch, threshold,
                                    name=f"nn_batch{index}_{id(plan) % 9973}"))
        for start in range(0, len(regions), max(1, parallelism)):
            plan.add_stage(regions[start:start + max(1, parallelism)])
        plan.extras["regions"] = regions
        return plan

    def extract_output(self, plan: SubmitPlan) -> np.ndarray:
        logits = np.vstack([region.logits()
                            for region in plan.extras["regions"]])
        return logits.argmax(axis=1)

    def accuracy_vs_labels(self, predictions: np.ndarray) -> float:
        return prediction_agreement(predictions, self.dataset.labels)

    def compute_error(self, output, precise_output) -> float:
        fluid_acc = self.accuracy_vs_labels(output)
        precise_acc = self.accuracy_vs_labels(precise_output)
        return min(1.0, normalized_accuracy(fluid_acc, precise_acc))

    def compute_metric(self, output):
        return ("accuracy", self.accuracy_vs_labels(output))
