"""FFT: sin/cos twiddle-table producers -> butterfly consumer.

The paper's class-4 task graph (multi-producer): two producer tasks
evaluate the sine and cosine twiddle tables with an expensive Taylor
series, and the butterfly consumer "calculates FFT with approximate
sin/cos values" (Table 2).  The tables are pre-seeded with a cheap
parabolic approximation of sine/cosine, so a consumer that starts before
the tables are fully refined computes with mildly wrong twiddles — the
source of the normalized-MSE error in Figures 6/7.

Larger inputs gain more (Section 7.2): the butterfly payload grows as
``N log N`` while framework overheads stay constant.

Multithreading (Figure 12) processes a batch of vectors, one region per
vector, using inter-region concurrency.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..core.region import FluidRegion
from ..core.valves import DataFinalValve, PercentValve
from ..metrics.error import normalized_mse
from .base import FluidApp, SubmitPlan

SERIES_TERMS = 9          # Taylor terms per precise table entry
TABLE_COST_PER_ENTRY = 4.0 * SERIES_TERMS
BUTTERFLY_COST = 6.0
TABLE_CHUNK = 64
BUTTERFLY_CHUNK = 256


def _series_sin(x: float) -> float:
    """Expensive high-accuracy sine via Taylor series (the producer's
    actual work; matches numpy to ~1e-12 on [-pi, pi])."""
    x = math.remainder(x, 2.0 * math.pi)
    total, term = 0.0, x
    for k in range(SERIES_TERMS):
        total += term
        term *= -x * x / ((2 * k + 2) * (2 * k + 3))
    return total


def _crude_sin(x: float) -> float:
    """Cheap parabolic approximation that pre-fills the tables."""
    x = math.remainder(x, 2.0 * math.pi)
    b = 4.0 / math.pi
    c = -4.0 / (math.pi * math.pi)
    return b * x + c * x * abs(x)


def bit_reverse_permutation(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


class FFTRegion(FluidRegion):
    """header -> (sin_table, cos_table) -> butterflies (leaf)."""

    def __init__(self, app: "FFTApp", signal: np.ndarray, threshold: float,
                 name=None):
        self.app = app
        self.signal = signal
        self.threshold = threshold
        super().__init__(name)

    def build(self):
        n = len(self.signal)
        half = n // 2
        src = self.input_data("src", self.signal)
        ready = self.add_data("ready")
        sin_cell = self.add_array("sin_table", None)
        cos_cell = self.add_array("cos_table", None)
        out_cell = self.add_array("spectrum", None)
        ct_sin = self.add_count("ct_sin")
        ct_cos = self.add_count("ct_cos")

        angles = -2.0 * np.pi * np.arange(half) / n
        sin_table = np.array([_crude_sin(a) for a in angles])
        cos_table = np.array([_crude_sin(a + np.pi / 2) for a in angles])
        sin_cell.init(sin_table)
        cos_cell.init(cos_table)

        def header(ctx):
            ready.write(True)
            yield 16.0

        self.add_task("header", header, inputs=[src], outputs=[ready])

        def make_table_body(table, count, phase):
            def body(ctx):
                for start in range(0, half, TABLE_CHUNK):
                    stop = min(start + TABLE_CHUNK, half)
                    for index in range(start, stop):
                        table.read()[index] = _series_sin(
                            angles[index] + phase)
                    table.touch()
                    count.add(stop - start)
                    yield TABLE_COST_PER_ENTRY * (stop - start)
            return body

        self.add_task("sin_table", make_table_body(sin_cell, ct_sin, 0.0),
                      start_valves=[DataFinalValve(ready)],
                      inputs=[ready], outputs=[sin_cell])
        self.add_task("cos_table",
                      make_table_body(cos_cell, ct_cos, np.pi / 2),
                      start_valves=[DataFinalValve(ready)],
                      inputs=[ready], outputs=[cos_cell])

        permutation = bit_reverse_permutation(n)
        spectrum = np.zeros(n, dtype=complex)

        def butterflies(ctx):
            sin_t = sin_cell.read()
            cos_t = cos_cell.read()
            data = src.read()[permutation].astype(complex)
            size = 2
            while size <= n:
                stride = n // size
                half_size = size // 2
                done = 0
                for block in range(0, n, size):
                    for j in range(half_size):
                        angle_index = j * stride
                        w = complex(cos_t[angle_index], sin_t[angle_index])
                        a = data[block + j]
                        b = data[block + j + half_size] * w
                        data[block + j] = a + b
                        data[block + j + half_size] = a - b
                        done += 1
                        if done % BUTTERFLY_CHUNK == 0:
                            yield BUTTERFLY_COST * BUTTERFLY_CHUNK
                if done % BUTTERFLY_CHUNK:
                    yield BUTTERFLY_COST * (done % BUTTERFLY_CHUNK)
                size *= 2
            spectrum[:] = data
            out_cell.init(spectrum)
            out_cell.touch()
            yield float(n)

        self.add_task(
            "fft", butterflies,
            start_valves=[PercentValve(ct_sin, self.threshold, half,
                                       name="v_sin"),
                          PercentValve(ct_cos, self.threshold, half,
                                       name="v_cos")],
            end_valves=[PercentValve(ct_sin, 1.0, half, name="q_sin"),
                        PercentValve(ct_cos, 1.0, half, name="q_cos")],
            inputs=[sin_cell, cos_cell], outputs=[out_cell])
        self._spectrum = spectrum

    def result(self) -> np.ndarray:
        return self._spectrum


class FFTApp(FluidApp):
    """Radix-2 FFT over a batch of vectors (one region per vector)."""

    name = "fft"

    def __init__(self, signals: List[np.ndarray]):
        super().__init__()
        for signal in signals:
            if len(signal) & (len(signal) - 1):
                raise ValueError("FFT length must be a power of two")
        self.signals = [np.asarray(s, dtype=float) for s in signals]

    def build_regions(self, threshold: float, valve: str,
                      parallelism: int) -> SubmitPlan:
        plan = SubmitPlan()
        regions = [FFTRegion(self, signal, threshold, name=f"fft_{i}")
                   for i, signal in enumerate(self.signals)]
        # parallelism = how many vector regions run concurrently.
        for start in range(0, len(regions), max(1, parallelism)):
            plan.add_stage(regions[start:start + max(1, parallelism)])
        plan.extras["regions"] = regions
        return plan

    def extract_output(self, plan: SubmitPlan) -> List[np.ndarray]:
        return [region.result().copy()
                for region in plan.extras["regions"]]

    def compute_error(self, output, precise_output) -> float:
        errors = [normalized_mse(got, want)
                  for got, want in zip(output, precise_output)]
        return min(1.0, float(np.mean(errors)))

    def compute_metric(self, output):
        if self._precise is None:
            return ("normalized_mse", 0.0)
        errors = [normalized_mse(got, want)
                  for got, want in zip(output, self._precise.output)]
        return ("normalized_mse", float(np.mean(errors)))

    def reference_spectra(self) -> List[np.ndarray]:
        """numpy's FFT, for validating the precise kernel."""
        return [np.fft.fft(signal) for signal in self.signals]
