"""DCT: cosine-basis producer -> blockwise sum consumers.

The paper's other class-4 graph, on the multi-consumer side: one
producer evaluates the 2-D DCT-II cosine basis (an 8x8 block transform,
64x64 = 4096 series-evaluated entries) and *two* consumer tasks
("calculate sum", Table 2) apply it to disjoint halves of the image
blocks, each with its own start condition on the shared basis table.

As with FFT, the basis is pre-filled with a cheap parabolic cosine so
eager consumers work with approximate coefficients; larger tensors gain
more because the summation payload grows with the block count while the
basis cost is fixed.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.region import FluidRegion
from ..core.valves import DataFinalValve, PercentValve
from ..metrics.error import normalized_mse
from .base import FluidApp, SubmitPlan
from .fft import SERIES_TERMS, _crude_sin, _series_sin

BLOCK = 8
BASIS_ENTRIES = (BLOCK * BLOCK) ** 2
BASIS_COST_PER_ENTRY = 4.0 * SERIES_TERMS
SUM_COST_PER_BLOCK = float(BLOCK ** 4)  # dense 64x64 basis apply per block
BASIS_CHUNK = 128


def _series_cos(x: float) -> float:
    return _series_sin(x + math.pi / 2.0)


def _crude_cos(x: float) -> float:
    return _crude_sin(x + math.pi / 2.0)


def dct_basis_reference() -> np.ndarray:
    k = np.arange(BLOCK)
    n = np.arange(BLOCK)
    basis = np.cos(math.pi * (2.0 * n[None, :] + 1.0) * k[:, None]
                   / (2.0 * BLOCK))
    basis[0] *= 1.0 / math.sqrt(2.0)
    return basis * math.sqrt(2.0 / BLOCK)


def dct2_blocks_reference(tensor: np.ndarray) -> np.ndarray:
    """Precise blockwise 2-D DCT-II (for kernel validation)."""
    basis = dct_basis_reference()
    out = np.zeros_like(tensor)
    for by in range(0, tensor.shape[0], BLOCK):
        for bx in range(0, tensor.shape[1], BLOCK):
            block = tensor[by:by + BLOCK, bx:bx + BLOCK]
            out[by:by + BLOCK, bx:bx + BLOCK] = basis @ block @ basis.T
    return out


class DCTRegion(FluidRegion):
    """header -> basis -> (sum_lo, sum_hi) leaves."""

    def __init__(self, app: "DCTApp", threshold: float, name=None):
        self.app = app
        self.threshold = threshold
        super().__init__(name)

    def build(self):
        app = self.app
        tensor = app.tensor
        src = self.input_data("src", tensor)
        ready = self.add_data("ready")
        basis_cell = self.add_array("basis", None)
        ct = self.add_count("ct_basis")

        scale = math.sqrt(2.0 / BLOCK)
        crude = np.zeros((BLOCK, BLOCK))
        for k in range(BLOCK):
            for n in range(BLOCK):
                value = _crude_cos(math.pi * (2 * n + 1) * k / (2 * BLOCK))
                if k == 0:
                    value /= math.sqrt(2.0)
                crude[k, n] = value * scale
        basis_cell.init(None)  # re-bound to basis2 below

        def header(ctx):
            ready.write(True)
            yield 16.0

        self.add_task("header", header, inputs=[src], outputs=[ready])

        # The full 2-D basis: B2[(k,l),(m,n)] = b[k,m] * b[l,n], 4096
        # series-evaluated entries ("Cos value" producer, Table 2).
        flat = BLOCK * BLOCK
        basis2 = np.zeros((flat, flat))
        for row in range(flat):
            k, l = divmod(row, BLOCK)
            for col in range(flat):
                m, n = divmod(col, BLOCK)
                basis2[row, col] = crude[k, m] * crude[l, n]
        total_entries = BASIS_ENTRIES

        def basis_body(ctx):
            produced = 0
            for row in range(flat):
                k, l = divmod(row, BLOCK)
                row_k = np.empty(BLOCK)
                row_l = np.empty(BLOCK)
                for m in range(BLOCK):
                    value = _series_cos(
                        math.pi * (2 * m + 1) * k / (2 * BLOCK))
                    if k == 0:
                        value /= math.sqrt(2.0)
                    row_k[m] = value * scale
                for n in range(BLOCK):
                    value = _series_cos(
                        math.pi * (2 * n + 1) * l / (2 * BLOCK))
                    if l == 0:
                        value /= math.sqrt(2.0)
                    row_l[n] = value * scale
                basis2[row] = np.outer(row_k, row_l).ravel()
                produced += flat
                basis_cell.touch()
                ct.add(flat)
                yield BASIS_COST_PER_ENTRY * flat

        basis_cell.init(basis2)
        self.add_task("basis", basis_body,
                      start_valves=[DataFinalValve(ready)],
                      inputs=[ready], outputs=[basis_cell])

        out = np.zeros_like(tensor)
        blocks = [(by, bx)
                  for by in range(0, tensor.shape[0], BLOCK)
                  for bx in range(0, tensor.shape[1], BLOCK)]
        halves = [blocks[:len(blocks) // 2], blocks[len(blocks) // 2:]]

        self._out = out
        for index, half in enumerate(halves):
            out_cell = self.add_array(f"coeff_{index}", out)

            def sum_body(ctx, half=half, out_cell=out_cell):
                for by, bx in half:
                    block = tensor[by:by + BLOCK, bx:bx + BLOCK]
                    coefficients = basis2 @ block.ravel()
                    out[by:by + BLOCK, bx:bx + BLOCK] = \
                        coefficients.reshape(BLOCK, BLOCK)
                    out_cell.touch()
                    yield SUM_COST_PER_BLOCK

            self.add_task(
                f"sum_{index}", sum_body,
                start_valves=[PercentValve(ct, self.threshold, total_entries,
                                           name=f"v_start_{index}")],
                end_valves=[PercentValve(ct, 1.0, total_entries,
                                         name=f"v_end_{index}")],
                inputs=[basis_cell], outputs=[out_cell])

    def coefficients(self) -> np.ndarray:
        return self._out


class DCTApp(FluidApp):
    """Blockwise 2-D DCT of one tensor."""

    name = "dct"

    def __init__(self, tensor: np.ndarray):
        super().__init__()
        if tensor.shape[0] % BLOCK or tensor.shape[1] % BLOCK:
            raise ValueError(f"tensor dimensions must be multiples of {BLOCK}")
        self.tensor = np.asarray(tensor, dtype=float)

    def build_regions(self, threshold: float, valve: str,
                      parallelism: int) -> SubmitPlan:
        plan = SubmitPlan()
        region = DCTRegion(self, threshold)
        plan.add_region(region)
        plan.extras["region"] = region
        return plan

    def extract_output(self, plan: SubmitPlan) -> np.ndarray:
        return plan.extras["region"].coefficients().copy()

    def compute_error(self, output, precise_output) -> float:
        return min(1.0, normalized_mse(output, precise_output))

    def compute_metric(self, output):
        if self._precise is None:
            return ("normalized_mse", 0.0)
        return ("normalized_mse",
                normalized_mse(output, self._precise.output))
