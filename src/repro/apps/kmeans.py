"""K-means image clustering: assign-clusters -> re-calculate centers.

Fluidization (Table 2): the *recenter* task starts accumulating centroid
sums before every pixel has been assigned in the current epoch; pixels
the assign task has not reached yet still carry their previous-epoch
assignment, which is exactly the kind of "high probability of resembling
the final value" input the paper targets (most pixels stop changing
cluster after the first few epochs [46]).

Each epoch is one fluid region; epochs form a chain of regions (the
paper's class-2 task graph, Figure 1(a) center-left).  The multithreaded
variant (Figure 12) fans the assign task out into ``p`` pixel bands
under a header task, with the recenter task consuming all bands.

Valve types (Figure 8):

* ``percent`` — recenter starts once a fraction of pixels are assigned;
* ``stability`` — an application-specific valve: recenter starts early
  only when the observed fraction of *changed* assignments among those
  processed so far is small (later epochs), otherwise it effectively
  waits for completion (early epochs) — "it will take more time for
  stability checking".
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.region import FluidRegion
from ..core.valves import (DataFinalValve, PercentValve,
                            PredicateValve)
from ..metrics.error import kmeans_objective, normalized_accuracy
from .base import FluidApp, SubmitPlan

ASSIGN_COST_PER_PIXEL = 6.0     # distance to each of k centroids
RECENTER_COST_PER_PIXEL = 2.0   # one scatter-add per pixel
CHUNK_PIXELS = 256


class KMeansEpochRegion(FluidRegion):
    """One epoch: header -> p x assign(band) -> recenter."""

    def __init__(self, app: "KMeansApp", epoch: int, threshold: float,
                 valve: str, parallelism: int,
                 centroids_box: List[np.ndarray], name=None):
        self.app = app
        self.epoch = epoch
        self.threshold = threshold
        self.valve = valve
        self.parallelism = parallelism
        self.centroids_box = centroids_box  # shared across the epoch chain
        super().__init__(name or f"kmeans_epoch{epoch}")

    def build(self):
        app = self.app
        pixels = app.pixels
        n = len(pixels)
        k = app.num_clusters
        assignments = app.assignments       # persists across epochs
        c_in = self.input_data("centroids_in", None)
        ready = self.add_data("ready")
        c_out = self.add_array("centroids_out", np.zeros((k, 1)))

        def header(ctx):
            c_in.init(self.centroids_box[0].copy())
            c_in.mark_input()
            ready.write(True)
            yield 16.0

        self.add_task("header", header, outputs=[ready])

        bounds = np.linspace(0, n, self.parallelism + 1).astype(int)
        bands = [(int(bounds[i]), int(bounds[i + 1]))
                 for i in range(self.parallelism)
                 if bounds[i + 1] > bounds[i]]

        assign_cells = []
        start_valves_all = []
        end_valves_all = []
        for band_index, (start, stop) in enumerate(bands):
            cell = self.add_array(f"assign_{band_index}", assignments)
            ct = self.add_count(f"assigned_{band_index}")
            changed = self.add_count(f"changed_{band_index}")
            band_size = stop - start

            def assign_body(ctx, start=start, stop=stop, ct=ct,
                            changed=changed, cell=cell):
                centroids = self.centroids_box[0]
                for chunk in range(start, stop, CHUNK_PIXELS):
                    hi = min(chunk + CHUNK_PIXELS, stop)
                    block = pixels[chunk:hi]
                    dists = ((block[:, None, :] - centroids[None]) ** 2
                             ).sum(axis=2)
                    new = dists.argmin(axis=1)
                    changed.add(int((new != assignments[chunk:hi]).sum()))
                    assignments[chunk:hi] = new
                    cell.touch()
                    ct.add(hi - chunk)
                    yield ASSIGN_COST_PER_PIXEL * (hi - chunk)

            self.add_task(f"assign_{band_index}", assign_body,
                          start_valves=[DataFinalValve(ready)],
                          inputs=[ready], outputs=[cell])
            assign_cells.append(cell)
            start_valves_all.append(self._start_valve(ct, changed,
                                                      band_size, band_index))
            end_valves_all.append(PercentValve(
                ct, self.app.quality_fraction, band_size,
                name=f"v_end_{band_index}"))

        def recenter(ctx):
            centroids = self.centroids_box[0]
            sums = np.zeros((k, pixels.shape[1]))
            counts = np.zeros(k)
            for chunk in range(0, n, CHUNK_PIXELS):
                hi = min(chunk + CHUNK_PIXELS, n)
                which = assignments[chunk:hi]
                np.add.at(sums, which, pixels[chunk:hi])
                np.add.at(counts, which, 1.0)
                yield RECENTER_COST_PER_PIXEL * (hi - chunk)
            fresh = centroids.copy()
            nonzero = counts > 0
            fresh[nonzero] = sums[nonzero] / counts[nonzero, None]
            self.centroids_box[0] = fresh
            c_out.write(fresh)
            yield float(k)

        self.add_task("recenter", recenter,
                      start_valves=start_valves_all,
                      end_valves=end_valves_all,
                      inputs=assign_cells, outputs=[c_out])

    def _start_valve(self, ct, changed, band_size, band_index):
        if self.valve == "stability":
            # Application-specific valve: start early only when the
            # change rate among processed pixels is already low.
            epsilon = self.app.stability_epsilon
            floor = max(1, int(self.threshold * band_size))

            def stable_enough():
                done = ct.value
                if done >= band_size:
                    return True
                if done < floor:
                    return False
                return changed.value / max(1, done) <= epsilon

            return PredicateValve(stable_enough, watches=[ct, changed],
                                  name=f"v_stable_{band_index}")
        return PercentValve(ct, self.threshold, band_size,
                            name=f"v_start_{band_index}")


class KMeansApp(FluidApp):
    """K-means over image pixels for a fixed number of epochs.

    The paper runs both versions for the same number of epochs and
    measures the clustering objective — "the benefit of Fluid for
    K-means comes from overlapping the producer and consumer, not from
    reducing the number of epochs".
    """

    name = "kmeans"
    #: empirically-chosen default (Section 7): recenter is cheap relative
    #: to assign, so an aggressive start is needed for visible overlap.
    default_threshold = 0.4

    def __init__(self, image: np.ndarray, num_clusters: int = 6,
                 epochs: int = 8, seed: int = 0,
                 stability_epsilon: float = 0.05,
                 quality_fraction: float = 0.4):
        super().__init__()
        image = np.asarray(image, dtype=float)
        if image.ndim <= 1:          # already a pixel vector
            self.pixels = image.reshape(-1, 1)
        elif image.ndim == 2:        # grayscale H x W
            self.pixels = image.reshape(-1, 1)
        else:                        # color H x W x C -> (H*W, C)
            self.pixels = image.reshape(-1, image.shape[-1])
        self.num_clusters = num_clusters
        self.epochs = epochs
        self.seed = seed
        self.stability_epsilon = stability_epsilon
        # Lenient quality: the paper's K-means approximation *is* the
        # recenter pass consuming partial assignments; epochs self-correct.
        self.quality_fraction = quality_fraction
        self.assignments = None  # rebuilt per run

    def _initial_centroids(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        picks = rng.choice(len(self.pixels), size=self.num_clusters,
                           replace=False)
        return self.pixels[picks].astype(float)

    def build_regions(self, threshold: float, valve: str,
                      parallelism: int) -> SubmitPlan:
        self.assignments = np.zeros(len(self.pixels), dtype=np.int64)
        centroids_box = [self._initial_centroids()]
        plan = SubmitPlan()
        for epoch in range(self.epochs):
            plan.add_region(KMeansEpochRegion(
                self, epoch, threshold, valve, parallelism, centroids_box,
                name=f"kmeans_e{epoch}_{id(centroids_box) % 9973}"))
        plan.extras["centroids_box"] = centroids_box
        plan.extras["app_assignments"] = self.assignments
        return plan

    def extract_output(self, plan: SubmitPlan):
        return (plan.extras["centroids_box"][0].copy(),
                plan.extras["app_assignments"].copy())

    def compute_error(self, output, precise_output) -> float:
        objective = self._objective(output)
        objective_precise = self._objective(precise_output)
        return min(1.0, normalized_accuracy(objective, objective_precise))

    def compute_metric(self, output):
        return ("sum_sq_dist", self._objective(output))

    def _objective(self, output) -> float:
        centroids, assignments = output
        return kmeans_objective(self.pixels, assignments, centroids)
