"""Common scaffolding for the eight evaluation applications.

Every app module implements the same protocol so the benchmark harness
can treat them uniformly:

* the app object is constructed with its input configuration;
* :meth:`FluidApp.run_precise` executes the original program (serial,
  no framework) and caches its outputs;
* :meth:`FluidApp.run_fluid` builds fresh fluid regions, runs them on a
  :class:`~repro.runtime.simulator.SimExecutor` (or the thread/process
  backend via ``backend=``), and reports the makespan plus the app's
  error metric against the precise output.

Accuracy convention: every app maps its paper metric to an *error* in
``[0, 1]`` where 0 means "identical to precise"; Figure-6-style
"normalized accuracy" is ``1 - error``.  The per-app benchmark prints
the paper's native metric (PSNR, path error, colors, ...) as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.guard import ModulationPolicy
from ..core.region import FluidRegion
from ..runtime.executor import RunResult, make_executor, run_serial
from ..runtime.simulator import Overheads, SimExecutor

#: The paper's evaluation platform: a 20-core Xeon.
PAPER_CORES = 20

#: Framework overheads in cost units (one unit ~ one elementary scalar
#: op).  ``task_init`` models guard/thread launch; it is what makes the
#: many-small-regions apps (K-means, Graph Coloring, MedusaDock) show
#: visible overhead in Figure 11 while the heavy-kernel apps do not.
DEFAULT_OVERHEADS = Overheads(task_init=400.0, end_check=80.0,
                              region_setup=300.0, valve_check=0.5,
                              signal=1.0)


@dataclass
class AppRun:
    """Result of one application execution (precise or fluid)."""

    makespan: float
    output: Any
    error: float = 0.0            # 0 for the precise run by definition
    metric: float = 0.0           # the app's native quality metric
    metric_name: str = ""
    result: Optional[RunResult] = None
    regions: List[FluidRegion] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        return max(0.0, 1.0 - self.error)


class FluidApp:
    """Base class for the eight applications."""

    name = "app"
    #: Default start-valve threshold used in Figure 6 ("default values of
    #: our fluidization parameters").
    default_threshold = 0.4
    #: Whether early termination may kill still-running *first* runs
    #: (the paper's NN layer-1 / GC selection-tail behaviour).
    cancel_first_runs = False

    def __init__(self):
        self._precise: Optional[AppRun] = None
        #: the ModulationPolicy of the in-flight run_fluid call, if any.
        self.active_modulation: Optional[ModulationPolicy] = None

    # ---- to implement per app -------------------------------------------

    def build_regions(self, threshold: float, valve: str,
                      parallelism: int) -> "SubmitPlan":
        """Construct fresh regions plus their submission topology."""
        raise NotImplementedError

    def extract_output(self, plan: "SubmitPlan") -> Any:
        """Pull the app-level output out of the completed regions."""
        raise NotImplementedError

    def compute_error(self, output: Any, precise_output: Any) -> float:
        """App error in [0, 1]; 0 when identical to precise."""
        raise NotImplementedError

    def compute_metric(self, output: Any) -> "tuple[str, float]":
        """The paper's native metric for this app (name, value)."""
        return ("", 0.0)

    # ---- protocol ---------------------------------------------------------

    def run_precise(self) -> AppRun:
        """The original program: serial topological execution, cached."""
        if self._precise is None:
            self.active_modulation = None
            plan = self.build_regions(threshold=1.0, valve="percent",
                                      parallelism=1)
            result = run_serial(*plan.ordered_regions())
            output = self.extract_output(plan)
            name, value = self.compute_metric(output)
            self._precise = AppRun(result.makespan, output, 0.0, value,
                                   name, result, plan.ordered_regions())
        return self._precise

    def run_fluid(self, threshold: Optional[float] = None,
                  valve: str = "percent",
                  cores: int = PAPER_CORES,
                  overheads: Optional[Overheads] = None,
                  modulation: Optional[ModulationPolicy] = None,
                  parallelism: int = 1,
                  trace: bool = False,
                  backend: str = "sim",
                  telemetry: Optional[Any] = None,
                  backend_options: Optional[Dict[str, Any]] = None,
                  scheduler: Optional[Any] = None,
                  autotune: Optional[Any] = None) -> AppRun:
        """Execute the fluidized app on the chosen backend.

        ``backend="sim"`` (the default) reports makespans in virtual
        cost units; ``"thread"`` and ``"process"`` report wall-clock
        seconds, so those makespans are only comparable to other
        real-time runs.  The process backend additionally requires the
        app's regions to honour the process-backend contract (honest
        input/output declarations, no aliased payload buffers; see
        docs/runtime-semantics.md).

        Pass a :class:`repro.telemetry.Telemetry` via ``telemetry=`` to
        collect structured metrics and a Perfetto-loadable trace from
        any backend (see docs/telemetry.md).  ``backend_options``
        forwards extra constructor knobs to the real-time executors
        (e.g. ``{"fallback_interval": 0.002}`` to bench the legacy
        polling wake cadence); it is ignored on the simulator, whose
        knobs are explicit parameters here.

        ``scheduler`` selects a :mod:`repro.sched` ready-queue
        discipline — a spec string (``"edf"``,
        ``"bounded:capacity=8,inner=priority"``), a
        :class:`~repro.sched.Scheduler` instance, or ``None`` for the
        paper-faithful FCFS default (see docs/schedulers.md).

        ``autotune`` enables closed-loop SLO autotuning
        (:mod:`repro.tuning`) — a spec string such as
        ``"accuracy_floor:target=0.9"``, a
        :class:`~repro.tuning.ValveAutotuner` instance (single-run), or
        ``None`` to keep thresholds static (see docs/autotuning.md).
        """
        if threshold is None:
            threshold = self.default_threshold
        precise = self.run_precise()
        # Regions are finalized lazily at launch, so apps that build
        # repeated regions may consult this policy's accumulated failure
        # pressure (ModulationPolicy.adjust) while constructing later
        # epochs.
        self.active_modulation = modulation
        plan = self.build_regions(threshold=threshold, valve=valve,
                                  parallelism=parallelism)
        if backend == "sim":
            executor = SimExecutor(
                cores=cores,
                overheads=(overheads if overheads is not None
                           else DEFAULT_OVERHEADS),
                modulation=modulation, trace=trace,
                cancel_first_runs=self.cancel_first_runs,
                telemetry=telemetry, scheduler=scheduler,
                autotune=autotune)
        else:
            executor = make_executor(
                backend, modulation=modulation,
                cancel_first_runs=self.cancel_first_runs,
                telemetry=telemetry, scheduler=scheduler,
                autotune=autotune,
                **(backend_options or {}))
        plan.submit_to(executor)
        result = executor.run()
        output = self.extract_output(plan)
        error = self.compute_error(output, precise.output)
        name, value = self.compute_metric(output)
        return AppRun(result.makespan, output, error, value, name, result,
                      plan.ordered_regions())

    def run_multithreaded_baseline(self, parallelism: int,
                                   cores: int = PAPER_CORES) -> AppRun:
        """The conventional multithreaded (non-fluid) version: the same
        task decomposition with completion valves (Figure 12 baseline).

        The baseline pays the same thread-launch and setup costs as the
        fluid version — a pthread program also forks its workers — but
        none of the fluid-specific costs (valve checks, end checks)."""
        self.active_modulation = None
        plan = self.build_regions(threshold=1.0, valve="percent",
                                  parallelism=parallelism)
        baseline_overheads = Overheads(
            task_init=DEFAULT_OVERHEADS.task_init,
            region_setup=DEFAULT_OVERHEADS.region_setup,
            end_check=0.0, valve_check=0.0, signal=0.0)
        executor = SimExecutor(cores=cores, overheads=baseline_overheads)
        plan.submit_to(executor)
        result = executor.run()
        output = self.extract_output(plan)
        precise = self.run_precise()
        error = self.compute_error(output, precise.output)
        return AppRun(result.makespan, output, error,
                      result=result, regions=plan.ordered_regions())


class SubmitPlan:
    """Regions plus their inter-region dependency topology."""

    def __init__(self):
        self.stages: List[List[FluidRegion]] = []
        self.extras: Dict[str, Any] = {}

    def add_stage(self, regions: Sequence[FluidRegion]) -> None:
        self.stages.append(list(regions))

    def add_region(self, region: FluidRegion) -> FluidRegion:
        self.stages.append([region])
        return region

    def ordered_regions(self) -> List[FluidRegion]:
        return [region for stage in self.stages for region in stage]

    def submit_to(self, executor) -> None:
        previous: Sequence[FluidRegion] = ()
        for stage in self.stages:
            for region in stage:
                executor.submit(region, after=tuple(previous))
            previous = stage
