"""Bellman-Ford: a chain of relax iterations in one fluid region.

The paper's class-3 task graph (Figure 1(a) center-right): iteration
``k+1`` may start relaxing edges once a fraction of iteration ``k``'s
edges have been processed, pipelining the wavefront.  Skipped or stale
relaxations are benign for most graphs because "each vertex tends to
only update its neighbors very few times" — the fluid output usually
matches the precise shortest paths exactly (Figure 6).

Each iteration task copies the (possibly partial) previous distance
vector and relaxes every edge in chunks; the distance array is shared
in-place, so a racing successor sees progressively better bounds.
Distances only ever decrease, which is why consuming a partial vector is
safe: it is an upper bound that later iterations repair.
"""

from __future__ import annotations

import numpy as np

from ..core.region import FluidRegion
from ..core.valves import DataFinalValve, PercentValve
from ..metrics.error import normalized_path_error
from ..workloads.graphs import GraphInput, bellman_ford_reference
from .base import FluidApp, SubmitPlan

RELAX_COST_PER_EDGE = 3.0
CHUNK_EDGES = 512


class BellmanFordRegion(FluidRegion):
    """seed -> relax_first -> ... -> relax_{last-1} (leaf).

    One segment of the app's relax-iteration budget.  The classic
    single-region pipeline is ``first=0, last=iterations``; segmented
    mode (``BellmanFordApp(segments=...)``) chains several of these
    regions over the shared distance vector, giving each segment its
    own leaf quality valve — per-segment quality feedback, and a
    threshold lever that still matters after the first tasks have
    started (what closed-loop autotuning steers; see
    docs/autotuning.md).
    """

    def __init__(self, app: "BellmanFordApp", threshold: float,
                 first: int = 0, last: int = None, name=None):
        self.app = app
        self.threshold = threshold
        self.first = first
        self.last = app.iterations if last is None else last
        super().__init__(name)

    def build(self):
        app = self.app
        graph = app.graph
        m = graph.num_edges
        src_cell = self.input_data("graph", graph)
        dist = app._dist_work
        self._dist = dist

        previous_cell = self.add_data(f"dist_{self.first}")
        previous_count = None

        def seed(ctx):
            previous_cell.write(dist)
            yield float(graph.num_vertices)

        self.add_task("seed", seed, inputs=[src_cell],
                      outputs=[previous_cell])

        for iteration in range(self.first, self.last):
            out_cell = self.add_data(f"dist_{iteration + 1}")
            ct = self.add_count(f"relaxed_{iteration}")
            if previous_count is not None:
                start = [PercentValve(previous_count, self.threshold, m,
                                      name=f"v_start_{iteration}")]
            else:
                # The first relax waits for the seeded distance vector;
                # without this it would race the seed task even at a
                # 100% threshold.
                start = [DataFinalValve(previous_cell,
                                        name="v_seeded")]
            is_leaf = iteration == self.last - 1
            end = []
            if is_leaf and previous_count is not None:
                end = [PercentValve(previous_count, 1.0, m,
                                    name="v_quality")]

            def relax(ctx, ct=ct, out_cell=out_cell):
                for chunk in range(0, m, CHUNK_EDGES):
                    hi = min(chunk + CHUNK_EDGES, m)
                    sources = graph.src[chunk:hi]
                    targets = graph.dst[chunk:hi]
                    relaxed = dist[sources] + graph.weight[chunk:hi]
                    np.minimum.at(dist, targets, relaxed)
                    out_cell.touch()
                    ct.add(hi - chunk)
                    yield RELAX_COST_PER_EDGE * (hi - chunk)

            self.add_task(f"relax_{iteration}", relax,
                          start_valves=start, end_valves=end,
                          inputs=[previous_cell], outputs=[out_cell])
            previous_cell = out_cell
            previous_count = ct

    def distances(self) -> np.ndarray:
        return self._dist


class BellmanFordApp(FluidApp):
    """Single-source shortest paths with a fixed relax-iteration budget."""

    name = "bellman_ford"

    def __init__(self, graph: GraphInput, iterations: int = 8,
                 source: int = 0, segments: int = 1):
        super().__init__()
        self.graph = graph
        self.iterations = iterations
        self.source = source
        #: >1 splits the iteration chain into that many chained regions
        #: (each needs >= 2 iterations to carry a quality valve); the
        #: computation is identical, but quality feedback arrives per
        #: segment instead of once at the end of the run.
        self.segments = segments
        self.reference = bellman_ford_reference(graph, source)
        self._dist_work = None  # rebuilt per run in build_regions

    def _segment_bounds(self):
        segments = max(1, min(self.segments, self.iterations // 2))
        base, extra = divmod(self.iterations, segments)
        bounds, start = [], 0
        for index in range(segments):
            size = base + (1 if index < extra else 0)
            bounds.append((start, start + size))
            start += size
        return bounds

    def build_regions(self, threshold: float, valve: str,
                      parallelism: int) -> SubmitPlan:
        dist = np.full(self.graph.num_vertices, np.inf)
        dist[self.source] = 0.0
        self._dist_work = dist
        plan = SubmitPlan()
        bounds = self._segment_bounds()
        for first, last in bounds:
            # Single-segment keeps the historical default region name
            # (golden traces pin it); segmented runs need unique names.
            name = (None if len(bounds) == 1
                    else f"bf_seg{first}_{id(dist) % 9973}")
            plan.add_region(BellmanFordRegion(self, threshold, first, last,
                                              name=name))
        plan.extras["dist"] = dist
        return plan

    def extract_output(self, plan: SubmitPlan) -> np.ndarray:
        return plan.extras["dist"].copy()

    def compute_error(self, output: np.ndarray, precise_output) -> float:
        # The paper normalizes against the *actual* shortest paths, not
        # the fixed-iteration baseline.
        return min(1.0, normalized_path_error(output, self.reference))

    def compute_metric(self, output: np.ndarray):
        return ("avg_path_error", normalized_path_error(output,
                                                        self.reference))
