"""Chrome trace-event (Perfetto-compatible) export of a telemetry run.

Subscribes to the bus and reconstructs, from ``transition`` events, one
timeline slice per state residence: every task is a track (``tid``)
inside its region's process row (``pid``), RUNNING stretches are named
``run #N`` so re-execution chains read exactly like the paper's Gantt
figures, and guard decisions / valve failures land as instant markers.
The output is the Chrome trace-event JSON array format and loads
directly in ``chrome://tracing`` or https://ui.perfetto.dev.

Timestamps: slices are stored in the executor's raw clock and scaled to
microseconds at export time using the bus's ``time_scale`` (1.0 for the
simulator's virtual cost units, 1e6 for wall-clock seconds), normalized
so the run starts at ts 0.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .bus import TelemetryBus, TelemetryEvent

#: States that render as timeline slices (terminal COMPLETE does not).
_SLICE_STATES = ("START_CHECK", "RUNNING", "END_CHECK", "WAITING",
                 "DEP_STALLED")


class ChromeTraceExporter:
    """Builds a ``chrome://tracing`` JSON document from bus events."""

    def __init__(self):
        # (region, task) -> (state name, run index, entry ts)
        self._open: Dict[Tuple[str, str], Tuple[str, int, float]] = {}
        # raw slices: (ts, dur, region, task, state, run)
        self._slices: List[Tuple[float, float, str, str, str, int]] = []
        # raw instants: (ts, region, task, label)
        self._instants: List[Tuple[float, str, str, str]] = []
        self._epoch: Optional[float] = None
        self.time_scale: float = 1e6

    def connect(self, bus: TelemetryBus) -> "ChromeTraceExporter":
        bus.subscribe(self.on_event)
        self._bus = bus
        return self

    # -- bus subscription --------------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        if self._epoch is None:
            self._epoch = event.ts
        if event.kind == "transition":
            self._on_transition(event)
        elif event.kind == "guard":
            detail = event.data.get("detail", "")
            label = f"guard:{event.name}" + (f" ({detail})" if detail else "")
            self._instants.append((event.ts, event.region, event.task, label))
        elif event.kind == "valve" and not event.data.get("result", True):
            self._instants.append(
                (event.ts, event.region, event.task,
                 f"valve:{event.name} failed"))

    def _on_transition(self, event: TelemetryEvent) -> None:
        key = (event.region, event.task)
        self._close(key, event.ts)
        if event.name != "COMPLETE":
            self._open[key] = (event.name, event.data.get("run", 0), event.ts)

    def _close(self, key: Tuple[str, str], now: float) -> None:
        open_state = self._open.pop(key, None)
        if open_state is None:
            return
        state, run, entered = open_state
        if state in _SLICE_STATES:
            self._slices.append(
                (entered, max(0.0, now - entered), key[0], key[1], state, run))

    # -- export ------------------------------------------------------------

    def finalize(self, now: float) -> None:
        """Close any still-open residences (e.g. after a timeout)."""
        for key in list(self._open):
            self._close(key, now)

    def to_dict(self) -> Dict[str, Any]:
        scale = getattr(getattr(self, "_bus", None), "time_scale",
                        self.time_scale)
        epoch = self._epoch or 0.0

        def us(ts: float) -> float:
            return (ts - epoch) * scale

        pids: Dict[str, int] = {}
        tids: Dict[Tuple[str, str], int] = {}
        events: List[Dict[str, Any]] = []
        for region, task in sorted(
                {(s[2], s[3]) for s in self._slices}
                | {(i[1], i[2]) for i in self._instants}):
            pid = pids.setdefault(region, len(pids) + 1)
            tid = tids.setdefault((region, task), len(tids) + 1)
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": f"region {region}"}})
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": f"task {task}"}})
        for entered, duration, region, task, state, run in sorted(
                self._slices):
            name = f"run #{run}" if state == "RUNNING" else state
            events.append({
                "ph": "X", "name": name, "cat": state.lower(),
                "ts": us(entered), "dur": duration * scale,
                "pid": pids[region], "tid": tids[(region, task)],
                "args": {"state": state, "run": run},
            })
        for ts, region, task, label in sorted(self._instants):
            pid = pids.setdefault(region, len(pids) + 1)
            tid = tids.setdefault((region, task), len(tids) + 1)
            events.append({"ph": "i", "name": label, "s": "t",
                           "ts": us(ts), "pid": pid, "tid": tid})
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")
