"""Metrics registry: counters, gauges and histograms over the event bus.

The registry subscribes to a :class:`~repro.telemetry.bus.TelemetryBus`
and folds the event stream into the counter catalogue below — the
decisions that define Fluid (valve verdicts, re-executions, early
terminations, quality failures, stall time) plus backend-specific
traffic (process payload bytes, worker occupancy).  Every standard
counter is pre-registered at zero so a dump always carries the full
catalogue: two dumps from different backends can be diffed key-by-key
and backend-parity tests can compare the key *sets* directly.

Counter catalogue
-----------------

========================================  =====================================
``valve.start.pass`` / ``.fail``          start-valve set evaluations by verdict
``valve.end.pass`` / ``.fail``            end-valve (quality) evaluations
``valve.checks.evaluated``                individual valve recomputations
``valve.checks.skipped``                  checks answered from the memo cache
``tasks.runs``                            bodies started (RUNNING entries)
``tasks.completed``                       tasks that reached COMPLETE
``tasks.reexecutions``                    guard-scheduled re-runs
``tasks.early_terminations``              runs cancelled/skipped by Section 6.1
``tasks.quality_failures``                end checks that rejected a run
``tasks.failed_runs``                     bodies that raised (remote backends)
``tasks.dep_stalls``                      transitions into DEP_STALLED
``tasks.spawned``                         dynamic tasks (Section 8)
``time.running``                          total residence in RUNNING
``time.start_check``                      total residence in START_CHECK
``time.waiting``                          total residence in WAITING
``time.dep_stalled``                      total dep-stall residence
``process.payload_bytes_to_workers``      snapshot bytes shipped at dispatch
``process.payload_bytes_from_workers``    snapshot bytes flushed back
``process.payload_messages``              payload-carrying IPC messages
``process.dispatches``                    bodies dispatched to worker slots
``process.payload_cells_skipped``         dispatch cells elided (delta export)
``process.payload_rebinds``               apply_payload container rebinds
``process.dispatch_batches``              batched worker round-trips sent
``process.worker_respawns``               pooled workers respawned after a crash
``trace.dropped_events``                  ring-buffer drops in the Trace
``sched.picks``                           scheduler pick-next decisions
``sched.steals``                          work-stealing queue raids
``sched.tasks_shed``                      bounded-queue rejections (dropped)
``sched.tasks_deferred``                  bounded-queue overflow parks
``tune.adjustments``                      autotuner threshold adjustments
``tune.tightenings``                      adjustments toward serialization
``tune.relaxations``                      adjustments toward the base/floor
``tune.windows``                          autotuner decision windows closed
``svc.requests``                          region-execution requests received
``svc.admitted``                          requests accepted into the queue
``svc.shed``                              sheddable requests rejected (backpressure)
``svc.dispatched``                        requests handed to the backend pool
``svc.batches``                           multi-request batch dispatches
``svc.batched_requests``                  requests coalesced into those batches
``svc.completed``                         requests finished successfully
``svc.failed``                            requests failed (body error/cancel)
``svc.slo_met`` / ``.slo_missed``         per-request latency-SLO outcomes
``stream.items_in``                       items delivered into stage queues
``stream.items_out``                      items first-served to stage consumers
``stream.stale_reads``                    first serves that overtook a gap
``stream.drops``                          sheddable items shed under backpressure
``stream.parks``                          must-deliver items accepted past capacity
========================================  =====================================

``time.*`` counters are in the executor's clock units (virtual cost
units under the simulator, seconds under the real backends).  Gauges
``run.makespan``, ``run.workers``, ``worker.busy_time`` and
``worker.utilization`` are set once at the end of the run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .bus import TelemetryEvent

#: Version tag written into every metrics dump.
METRICS_SCHEMA = "repro-telemetry-metrics/1"

#: Pre-registered counters (see module docstring for semantics).
COUNTER_CATALOGUE = (
    "valve.start.pass", "valve.start.fail",
    "valve.end.pass", "valve.end.fail",
    "valve.checks.evaluated", "valve.checks.skipped",
    "tasks.runs", "tasks.completed", "tasks.reexecutions",
    "tasks.early_terminations", "tasks.quality_failures",
    "tasks.failed_runs", "tasks.dep_stalls", "tasks.spawned",
    "time.running", "time.start_check", "time.waiting", "time.dep_stalled",
    "process.payload_bytes_to_workers", "process.payload_bytes_from_workers",
    "process.payload_messages", "process.dispatches",
    "process.payload_cells_skipped", "process.payload_rebinds",
    "process.dispatch_batches", "process.worker_respawns",
    "trace.dropped_events",
    "sched.picks", "sched.steals", "sched.tasks_shed",
    "sched.tasks_deferred",
    "tune.adjustments", "tune.tightenings", "tune.relaxations",
    "tune.windows",
    "svc.requests", "svc.admitted", "svc.shed", "svc.dispatched",
    "svc.batches", "svc.batched_requests", "svc.completed", "svc.failed",
    "svc.slo_met", "svc.slo_missed",
    "stream.items_in", "stream.items_out", "stream.stale_reads",
    "stream.drops", "stream.parks",
)

#: Bucket boundaries for the scheduler queue-residence histogram.  Wider
#: than the valve-latency decades: residence is measured in the host's
#: clock units (virtual cost units under the simulators, seconds under
#: the real backends), which span several orders of magnitude.
RESIDENCE_BOUNDS = (1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4)

#: Bucket boundaries for the stage-queue occupancy histogram: occupancy
#: is a small item count (bounded by the queue capacity), not a latency.
OCCUPANCY_BOUNDS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Bucket boundaries for the process backend's dispatch batch-size
#: histogram: a task count bounded by the executor's ``batch_size``.
BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Guard completion reasons that count as Section-6.1 early termination.
_EARLY_TERMINATION_REASONS = ("early-termination", "rerun-skipped")

#: Task states whose residence time is accumulated into ``time.*``.
_TIMED_STATES = {
    "RUNNING": "time.running",
    "START_CHECK": "time.start_check",
    "WAITING": "time.waiting",
    "DEP_STALLED": "time.dep_stalled",
}


class Histogram:
    """A fixed-boundary histogram (decade buckets, seconds-friendly).

    ``bounds`` overrides the default valve-latency decades — the
    scheduler queue-residence histogram uses :data:`RESIDENCE_BOUNDS`.
    """

    BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)

    def __init__(self, bounds: Optional[Tuple[float, ...]] = None):
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else self.BOUNDS)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def _labels(self) -> List[str]:
        return [f"le_{bound:g}" for bound in self.bounds] + ["le_inf"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
            "buckets": dict(zip(self._labels(), self.buckets)),
        }

    def merge(self, dump: Dict[str, Any]) -> None:
        """Fold a :meth:`to_dict`-shaped dump into this histogram.

        Buckets merge label-by-label when the boundary sets match;
        otherwise the merged observations land in the overflow bucket
        (count/sum/min/max stay exact either way).
        """
        count = int(dump.get("count") or 0)
        if count <= 0:
            return
        self.count += count
        self.total += float(dump.get("sum") or 0.0)
        for field, keep in (("min", min), ("max", max)):
            value = dump.get(field)
            if value is None:
                continue
            mine = getattr(self, field)
            setattr(self, field,
                    value if mine is None else keep(mine, value))
        buckets = dump.get("buckets") or {}
        labels = self._labels()
        if set(buckets) == set(labels):
            for index, label in enumerate(labels):
                self.buckets[index] += int(buckets[label])
        else:
            self.buckets[-1] += count


class MetricsRegistry:
    """Folds bus events into counters/gauges/histograms; JSON in and out."""

    def __init__(self):
        self.counters: Dict[str, float] = {
            name: 0 for name in COUNTER_CATALOGUE}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {
            "valve.latency": Histogram(),
            "sched.queue_residence": Histogram(RESIDENCE_BOUNDS)}
        # (region, task) -> (state name, entry timestamp)
        self._since: Dict[Tuple[str, str], Tuple[str, float]] = {}
        # worker slot -> dispatch timestamp
        self._busy_since: Dict[int, float] = {}
        self._busy_total = 0.0

    # -- primitive mutation ------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, Histogram()).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # -- bus subscription --------------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        kind = event.kind
        if kind == "transition":
            self._on_transition(event)
        elif kind == "valve":
            if event.name == "memo":
                # Per-region memoization summary emitted once at region
                # completion (memo-answered checks publish no per-call
                # event), not a verdict.
                self.inc("valve.checks.evaluated",
                         event.data.get("evaluated", 0))
                self.inc("valve.checks.skipped",
                         event.data.get("skipped", 0))
                return
            verdict = "pass" if event.data.get("result") else "fail"
            self.inc(f"valve.{event.name}.{verdict}")
            latency = event.data.get("latency")
            if latency is not None:
                self.observe("valve.latency", latency)
        elif kind == "guard":
            self._on_guard(event)
        elif kind == "sched":
            if event.name == "spawn":
                self.inc("tasks.spawned")
            elif event.name == "shed":
                self.inc("sched.tasks_shed")
            elif event.name == "defer":
                self.inc("sched.tasks_deferred")
            elif event.name == "steal":
                self.inc("sched.steals")
        elif kind == "payload":
            if event.name == "rebound":
                # apply_payload rebound an aliasable container instead of
                # copying in place (see core/data.py): a contract-hazard
                # diagnostic, not payload traffic.
                self.inc("process.payload_rebinds")
                return
            direction = ("to_workers" if event.name == "to-worker"
                         else "from_workers")
            self.inc(f"process.payload_bytes_{direction}",
                     event.data.get("bytes", 0))
            self.inc("process.payload_messages")
            self.inc("process.payload_cells_skipped",
                     event.data.get("skipped", 0))
        elif kind == "worker":
            self._on_worker(event)
        elif kind == "svc":
            self._on_service(event)
        elif kind == "stream":
            self._on_stream(event)
        elif kind == "tune":
            if event.name == "adjust":
                self.inc("tune.adjustments")
                after = event.data.get("after", 0.0)
                if after > event.data.get("before", 0.0):
                    self.inc("tune.tightenings")
                else:
                    self.inc("tune.relaxations")
                self.set_gauge("tune.position", after)

    def _on_transition(self, event: TelemetryEvent) -> None:
        key = (event.region, event.task)
        open_state = self._since.get(key)
        if open_state is not None:
            state, entered = open_state
            counter = _TIMED_STATES.get(state)
            if counter is not None:
                self.inc(counter, event.ts - entered)
        if event.name == "COMPLETE":
            self._since.pop(key, None)
            self.inc("tasks.completed")
        else:
            self._since[key] = (event.name, event.ts)
            if event.name == "RUNNING":
                self.inc("tasks.runs")
            elif event.name == "DEP_STALLED":
                self.inc("tasks.dep_stalls")

    def _on_guard(self, event: TelemetryEvent) -> None:
        detail = event.data.get("detail", "")
        if event.name == "rerun":
            self.inc("tasks.reexecutions")
        elif event.name == "wait" and detail == "quality-failed":
            self.inc("tasks.quality_failures")
        elif event.name == "complete" and detail in _EARLY_TERMINATION_REASONS:
            self.inc("tasks.early_terminations")
        elif event.name == "failed":
            self.inc("tasks.failed_runs")

    def _on_service(self, event: TelemetryEvent) -> None:
        """Fold ``svc``-kind events (repro.service request lifecycle).

        The ``svc.latency`` and ``svc.queue_wait`` histograms are
        created lazily on the first completed request, so non-service
        runs keep their historical histogram key set.
        """
        name = event.name
        if name == "request":
            self.inc("svc.requests")
        elif name == "admit":
            self.inc("svc.admitted")
        elif name == "shed":
            self.inc("svc.shed")
        elif name == "dispatch":
            requests = int(event.data.get("requests", 1))
            self.inc("svc.dispatched", requests)
            if requests > 1:
                self.inc("svc.batches")
                self.inc("svc.batched_requests", requests)
        elif name == "complete":
            self.inc("svc.completed")
            latency = event.data.get("latency")
            if latency is not None:
                self.observe("svc.latency", latency)
            wait = event.data.get("queue_wait")
            if wait is not None:
                self.observe("svc.queue_wait", wait)
            slo_met = event.data.get("slo_met")
            if slo_met is True:
                self.inc("svc.slo_met")
            elif slo_met is False:
                self.inc("svc.slo_missed")
        elif name == "fail":
            self.inc("svc.failed")

    def _on_stream(self, event: TelemetryEvent) -> None:
        """Fold ``stream``-kind events (repro.stream stage queues).

        The per-stage ``stream.occupancy`` histogram is created lazily
        on the first delivery, so non-streaming runs keep their
        historical histogram key set.  Re-serves from the rerun-based
        recompute model (``first`` false) and idempotent slot rewrites
        (``update``) are deliberately not re-counted.
        """
        name = event.name
        if name == "put":
            self.inc("stream.items_in")
            self._observe_occupancy(event)
        elif name == "serve":
            if event.data.get("first", True):
                self.inc("stream.items_out")
                if event.data.get("displacement", 0) > 0:
                    self.inc("stream.stale_reads")
        elif name == "drop":
            self.inc("stream.drops")
        elif name == "park":
            self.inc("stream.parks")
            self._observe_occupancy(event)

    def _observe_occupancy(self, event: TelemetryEvent) -> None:
        histogram = self.histograms.setdefault(
            "stream.occupancy", Histogram(OCCUPANCY_BOUNDS))
        histogram.observe(event.data.get("occupancy", 0))

    def _on_worker(self, event: TelemetryEvent) -> None:
        slot = event.data.get("slot")
        if event.name == "dispatch":
            self.inc("process.dispatches")
            # Batched dispatch emits one "dispatch" per task in the
            # batch; the overwrite coarsens per-slot busy accounting to
            # "since the last dispatch", which finalize() folds in.
            self._busy_since[slot] = event.ts
        elif event.name == "free":
            started = self._busy_since.pop(slot, None)
            if started is not None:
                self._busy_total += event.ts - started
        elif event.name == "batch":
            # Lazily created so non-batching runs keep their historical
            # histogram key set (same pattern as svc.latency).
            self.inc("process.dispatch_batches")
            self.histograms.setdefault(
                "process.batch_size",
                Histogram(BATCH_SIZE_BOUNDS)).observe(
                    event.data.get("size", 1))
        elif event.name == "respawn":
            self.inc("process.worker_respawns")

    def record_scheduler(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`repro.sched.Scheduler.snapshot` into the metrics.

        Pick decisions and queue residence are recorded here, directly,
        at end of run — not as per-pick bus events — so the default FCFS
        scheduler adds zero events to structural traces (the golden
        traces stay byte-identical).  Shed/steal/defer decisions *are*
        bus events and arrive through :meth:`on_event`; they are
        deliberately not re-counted from the snapshot.
        """
        self.inc("sched.picks", snapshot.get("picks", 0))
        residence = snapshot.get("residence")
        if residence:
            self.histograms["sched.queue_residence"].merge(residence)

    def record_autotuner(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`repro.tuning.ValveAutotuner.snapshot` in.

        Only the decision-window count and final position come from the
        snapshot; adjustments are live ``tune``-kind bus events and are
        deliberately not re-counted here (same split as
        :meth:`record_scheduler` vs the shed/steal events).
        """
        self.inc("tune.windows", snapshot.get("windows", 0))
        self.set_gauge("tune.position", snapshot.get("position", 0.0))

    # -- end of run --------------------------------------------------------

    def finalize(self, makespan: float, workers: int, now: float) -> None:
        """Close open intervals and derive the utilization gauges.

        ``workers`` is the parallelism denominator: virtual cores for
        the simulator, 1 for the GIL-bound thread backend, the pool size
        for the process backend.
        """
        for (_region, _task), (state, entered) in list(self._since.items()):
            counter = _TIMED_STATES.get(state)
            if counter is not None:
                self.inc(counter, now - entered)
        self._since.clear()
        for slot, started in list(self._busy_since.items()):
            self._busy_total += now - started
        self._busy_since.clear()
        self.set_gauge("run.makespan", makespan)
        self.set_gauge("run.workers", workers)
        busy = (self._busy_total if self.counters["process.dispatches"]
                else self.counters["time.running"])
        self.set_gauge("worker.busy_time", busy)
        if makespan > 0 and workers > 0:
            self.set_gauge("worker.utilization",
                           min(1.0, busy / (makespan * workers)))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: histogram.to_dict()
                           for name, histogram in self.histograms.items()},
        }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


# -------------------------------------------------------------- dump tools


def load_metrics(path: str) -> Dict[str, Any]:
    """Read one metrics dump, validating the schema tag."""
    with open(path, "r", encoding="utf-8") as handle:
        dump = json.load(handle)
    if not isinstance(dump, dict) or "counters" not in dump:
        raise ValueError(f"{path!r} is not a telemetry metrics dump")
    if dump.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"{path!r} has schema {dump.get('schema')!r}; "
            f"this tool reads {METRICS_SCHEMA!r}")
    return dump


def diff_metrics(a: Dict[str, Any], b: Dict[str, Any]) -> List[Tuple]:
    """Rows ``(key, a_value, b_value, delta)`` over both dumps' keys.

    Counters and gauges are compared numerically; a key missing on one
    side reads as 0.  Histograms are compared by count and sum.
    """
    rows: List[Tuple] = []
    for section in ("counters", "gauges"):
        keys = sorted(set(a.get(section, {})) | set(b.get(section, {})))
        for key in keys:
            left = a.get(section, {}).get(key, 0) or 0
            right = b.get(section, {}).get(key, 0) or 0
            rows.append((key, left, right, right - left))
    names = sorted(set(a.get("histograms", {})) | set(b.get("histograms", {})))
    for name in names:
        for field in ("count", "sum"):
            left = (a.get("histograms", {}).get(name, {}).get(field) or 0)
            right = (b.get("histograms", {}).get(name, {}).get(field) or 0)
            rows.append((f"{name}.{field}", left, right, right - left))
    return rows


def _format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


def render_summary(dump: Dict[str, Any], title: str = "metrics") -> str:
    """Human-readable one-dump summary."""
    lines = [f"=== {title} ==="]
    counters = dump.get("counters", {})
    width = max((len(key) for key in counters), default=8) + 2
    lines.append("counters:")
    for key in sorted(counters):
        lines.append(f"  {key:<{width}}{_format_value(counters[key])}")
    gauges = dump.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for key in sorted(gauges):
            lines.append(f"  {key:<{width}}{_format_value(gauges[key])}")
    for name, histogram in sorted(dump.get("histograms", {}).items()):
        lines.append(f"histogram {name}: count={histogram.get('count')} "
                     f"sum={_format_value(histogram.get('sum'))} "
                     f"min={_format_value(histogram.get('min'))} "
                     f"max={_format_value(histogram.get('max'))}")
    return "\n".join(lines)


def render_diff(a: Dict[str, Any], b: Dict[str, Any],
                a_name: str = "a", b_name: str = "b",
                changed_only: bool = False) -> str:
    """Human-readable two-dump comparison."""
    rows = diff_metrics(a, b)
    if changed_only:
        rows = [row for row in rows if row[3]]
    width = max((len(row[0]) for row in rows), default=8) + 2
    lines = [f"=== metrics diff: {a_name} vs {b_name} ===",
             f"  {'key':<{width}}{a_name:>14}{b_name:>14}{'delta':>14}"]
    for key, left, right, delta in rows:
        lines.append(f"  {key:<{width}}{_format_value(left):>14}"
                     f"{_format_value(right):>14}{_format_value(delta):>14}")
    if changed_only and len(lines) == 2:
        lines.append("  (no differences)")
    return "\n".join(lines)
