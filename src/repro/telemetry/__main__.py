"""CLI over telemetry metrics dumps: summarize one, or diff two.

Usage::

    python -m repro.telemetry summarize run.metrics.json
    python -m repro.telemetry diff baseline.json candidate.json
    python -m repro.telemetry diff a.json b.json --changed-only
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .metrics import load_metrics, render_diff, render_summary


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect telemetry metrics dumps "
                    "(written via --metrics-out or Telemetry.write).")
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="print the counters/gauges/histograms of a dump")
    summarize.add_argument("dump", help="metrics JSON produced by the runtime")

    diff = commands.add_parser(
        "diff", help="compare two dumps key-by-key")
    diff.add_argument("a", help="baseline metrics JSON")
    diff.add_argument("b", help="candidate metrics JSON")
    diff.add_argument("--changed-only", action="store_true",
                      help="only print keys whose values differ")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            dump = load_metrics(args.dump)
            print(render_summary(dump, title=os.path.basename(args.dump)))
        else:
            left = load_metrics(args.a)
            right = load_metrics(args.b)
            print(render_diff(left, right,
                              a_name=os.path.basename(args.a),
                              b_name=os.path.basename(args.b),
                              changed_only=args.changed_only))
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
