"""Unified telemetry: one event bus feeding traces, metrics and Perfetto.

:class:`Telemetry` is the user-facing bundle.  Construct one, pass it to
:meth:`~repro.apps.base.FluidApp.run_fluid` (or any executor) via
``telemetry=``, and after the run read:

``telemetry.trace``
    The familiar :class:`~repro.runtime.tracing.Trace` — now a bus
    subscriber, same public API as before.
``telemetry.metrics``
    A :class:`~repro.telemetry.metrics.MetricsRegistry` with the full
    counter catalogue (valve verdicts, re-executions, early
    terminations, stall time, payload bytes, worker utilization).
``telemetry.chrome_trace()`` / ``telemetry.write(...)``
    A Chrome trace-event document loadable in ``chrome://tracing`` or
    https://ui.perfetto.dev, plus JSON dumps of either artifact.

The executors own the lifecycle: they bind their clock to the bus at
run start and call :meth:`Telemetry.run_finished` when the run ends
(also on failure, so partial traces survive a crash).

See ``docs/telemetry.md`` for the event schema and counter catalogue,
and ``python -m repro.telemetry --help`` for the dump summarize/diff
CLI.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

from .bus import TelemetryBus, TelemetryEvent
from .metrics import (METRICS_SCHEMA, Histogram, MetricsRegistry,
                      diff_metrics, load_metrics, render_diff, render_summary)
from .trace_export import ChromeTraceExporter
from ..runtime.tracing import Trace

__all__ = [
    "Telemetry",
    "TelemetryBus",
    "TelemetryEvent",
    "MetricsRegistry",
    "Histogram",
    "ChromeTraceExporter",
    "METRICS_SCHEMA",
    "load_metrics",
    "diff_metrics",
    "render_summary",
    "render_diff",
]


class Telemetry:
    """A bus plus the standard subscribers, ready to hand to an executor.

    Parameters
    ----------
    metrics:
        Attach a :class:`MetricsRegistry` (default on).
    chrome:
        Attach a :class:`ChromeTraceExporter` (default on).
    trace_capacity:
        Ring-buffer capacity for the attached :class:`Trace`; ``None``
        (default) keeps it unbounded.
    """

    def __init__(self, metrics: bool = True, chrome: bool = True,
                 trace_capacity: Optional[int] = None):
        self.bus = TelemetryBus()
        self.trace = Trace(capacity=trace_capacity)
        self.trace.connect(self.bus)
        self.metrics: Optional[MetricsRegistry] = None
        if metrics:
            self.metrics = MetricsRegistry()
            self.bus.subscribe(self.metrics.on_event)
        self.chrome: Optional[ChromeTraceExporter] = None
        if chrome:
            self.chrome = ChromeTraceExporter().connect(self.bus)
        self.finished = False

    # -- executor-facing lifecycle ----------------------------------------

    def bind_clock(self, clock: Callable[[], float],
                   time_scale: float) -> None:
        self.bus.bind_clock(clock, time_scale)

    def emit(self, kind: str, region: str, task: str, name: str,
             ts: Optional[float] = None,
             data: Optional[Dict[str, Any]] = None) -> None:
        self.bus.emit(kind, region, task, name, ts=ts, data=data)

    def record_scheduler(self, scheduler: Optional[Any]) -> None:
        """Fold a scheduler's end-of-run snapshot into the metrics.

        Executors call this (before :meth:`run_finished`) with their
        bound :class:`repro.sched.Scheduler`; pick counts and the
        queue-residence histogram land in the ``sched.*`` metrics
        without publishing any bus events, so structural traces are
        unaffected.  No-op without a metrics registry or scheduler.
        """
        if self.metrics is None or scheduler is None:
            return
        self.metrics.record_scheduler(scheduler.snapshot())

    def record_autotuner(self, autotuner: Optional[Any]) -> None:
        """Fold a :class:`repro.tuning.ValveAutotuner` end-of-run
        snapshot into the metrics (window count, final position).

        Adjustments themselves arrive live as ``tune``-kind bus events;
        this fold only adds what has no per-event form.  No-op without
        a metrics registry or autotuner.
        """
        if self.metrics is None or autotuner is None:
            return
        self.metrics.record_autotuner(autotuner.snapshot())

    def run_finished(self, makespan: float, workers: int,
                     now: Optional[float] = None) -> None:
        """Close open intervals and freeze derived gauges (idempotent)."""
        if self.finished:
            return
        self.finished = True
        now = makespan if now is None else now
        if self.chrome is not None:
            self.chrome.finalize(now)
        if self.metrics is not None:
            self.metrics.inc("trace.dropped_events", self.trace.dropped)
            self.metrics.finalize(makespan, workers, now)

    # -- artifacts ---------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        if self.chrome is None:
            raise ValueError("this Telemetry was built with chrome=False")
        return self.chrome.to_dict()

    def metrics_dict(self) -> Dict[str, Any]:
        if self.metrics is None:
            raise ValueError("this Telemetry was built with metrics=False")
        return self.metrics.to_dict()

    def write(self, trace_out: Optional[str] = None,
              metrics_out: Optional[str] = None) -> None:
        """Dump the requested artifacts as JSON files."""
        if trace_out is not None:
            with open(trace_out, "w", encoding="utf-8") as handle:
                json.dump(self.chrome_trace(), handle, indent=1)
                handle.write("\n")
        if metrics_out is not None:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                json.dump(self.metrics_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
