"""The telemetry event bus: one structured stream for every backend.

All runtime instrumentation converges here.  Executors, the guard
:class:`~repro.core.guard.Coordinator` and :class:`~repro.core.task.FluidTask`
publish :class:`TelemetryEvent` records into a :class:`TelemetryBus`;
subscribers — the legacy :class:`~repro.runtime.tracing.Trace`, the
:class:`~repro.telemetry.metrics.MetricsRegistry`, the Chrome trace
exporter, a :class:`~repro.runtime.gantt.TimelineRecorder` — consume the
same stream, so the simulator, thread and process backends feed exactly
the same instrumentation pipeline.

Event kinds
-----------

``transition``
    A Figure-5 state-machine transition.  ``name`` is the destination
    state; ``data`` carries ``src`` (source state) and ``run`` (the
    task's run index at transition time).
``guard``
    A Coordinator decision: ``rerun``, ``wait``, ``complete``,
    ``dep-stalled``, ``failed``; ``data["detail"]`` carries the reason.
``sched``
    A backend scheduling event: ``launch``, ``run``, ``spawn``,
    ``region-done`` (``data["detail"]`` carries free-form detail), plus
    the :mod:`repro.sched` decision events ``steal`` (work-stealing
    migration, ``data`` has ``victim``/``thief``), ``shed`` (bounded
    admission rejected a sheddable task) and ``defer`` (bounded
    admission parked a must-run task).  None of the decision events can
    occur under the default FCFS discipline, which is what keeps the
    golden structural traces stable.
``valve``
    One evaluation of a task's start or end valve set.  ``name`` is
    ``start`` or ``end``; ``data`` carries ``result`` (bool),
    ``latency`` (wall seconds spent evaluating) and ``valves`` (set
    size).
``payload``
    Process-backend payload traffic.  ``name`` is ``to-worker`` or
    ``from-worker``; ``data`` carries ``bytes`` and ``cells``.
``worker``
    Process-backend pool occupancy: ``dispatch``/``free`` with
    ``data["slot"]``.
``svc``
    Service-frontend request lifecycle (:mod:`repro.service`):
    ``request``/``admit``/``shed``/``dispatch``/``complete``/``fail``;
    ``data`` carries per-request ``latency``, ``queue_wait``, ``slo``
    and ``slo_met`` on completion and the batch ``requests`` count on
    dispatch.  Published only from the service's event-loop thread.
``stream``
    Stage-queue activity (:mod:`repro.stream`): ``put``/``update``
    (delivery / idempotent rerun rewrite), ``drop`` (sheddable item
    shed), ``park`` (must-deliver item accepted past capacity),
    ``begin`` (a consumer drain started; ``data["missing"]`` counts
    unsettled seqs) and ``serve`` (``data`` carries ``displacement``
    and ``first``); all carry ``queue``, ``seq``, ``bound`` and
    ``occupancy``.  Published from task bodies, so on the process
    backend they land on the *worker's* forked bus, not the parent's.

Timestamps are in the publishing executor's clock: virtual cost units
under the simulator, seconds since the run epoch under the thread and
process backends.  :meth:`TelemetryBus.bind_clock` records which, so
exporters can scale uniformly.

Thread-safety: publishers must be serialized (the simulator is
single-threaded, the thread backend publishes under its executor lock,
the process backend publishes from the parent control loop only), so the
bus itself takes no locks.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, NamedTuple, Optional


class TelemetryEvent(NamedTuple):
    """One structured record on the bus."""

    ts: float
    kind: str
    region: str
    task: str
    name: str
    data: Dict[str, Any]


class TelemetryBus:
    """Synchronous publish/subscribe fan-out of telemetry events."""

    def __init__(self):
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []
        #: The publishing executor's clock (rebound via :meth:`bind_clock`).
        self.clock: Callable[[], float] = time.perf_counter
        #: Multiplier that converts bus timestamps to microseconds for
        #: the Chrome trace exporter: 1.0 for virtual time (one cost
        #: unit renders as one microsecond), 1e6 for wall-clock seconds.
        self.time_scale: float = 1e6
        #: Count of events published so far (cheap health indicator).
        self.published = 0

    # -- wiring ----------------------------------------------------------

    def subscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        """Register ``callback(event)`` for every published event."""
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def bind_clock(self, clock: Callable[[], float],
                   time_scale: float) -> None:
        """Adopt the executor's clock (called once, at run start)."""
        self.clock = clock
        self.time_scale = time_scale

    # -- publishing ------------------------------------------------------

    def publish(self, event: TelemetryEvent) -> None:
        self.published += 1
        for callback in self._subscribers:
            callback(event)

    def emit(self, kind: str, region: str, task: str, name: str,
             ts: Optional[float] = None,
             data: Optional[Dict[str, Any]] = None) -> None:
        """Convenience publisher; ``ts`` defaults to the bound clock."""
        self.publish(TelemetryEvent(
            self.clock() if ts is None else ts,
            kind, region, task, name, data if data is not None else {}))

    def __len__(self) -> int:
        return len(self._subscribers)
