"""Open-loop load generator for :class:`repro.service.FluidService`.

``python -m repro.service.loadgen`` drives a real service instance with
seeded Poisson arrivals of small synthetic Fluid regions, sweeping the
offered arrival rate, and reports per-rate throughput and request
latency percentiles.  Results are written in the
``repro-bench-baseline/1`` schema with ``<discipline>/cores<slots>/
rate<R>`` workload keys — the same cell format as
``python -m repro.sched.capacity`` — so a measured service sweep can be
fed back into :func:`repro.service.pick_concurrency` as the
``capacity_curves`` admission policy input.

``--check`` turns the run into a gate (used by the CI ``service-smoke``
job): every request must complete or be observably shed, no *must-run*
request may ever be shed, and completed throughput must grow with
offered load (within a generous tolerance, since wall-clock CI boxes
are noisy).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from .. import FluidRegion, PercentValve, PredicateValve
from ..sched.capacity import _percentile
from .admission import AdmissionError
from .service import FluidService


def make_request_region(index: int, rng: random.Random,
                        min_items: int = 8, max_items: int = 24):
    """One synthetic request: a producer->consumer pipeline region.

    Returns ``(region, expected, cost_estimate)``; sizes are drawn from
    ``rng`` so a seeded stream is identical across sweeps and backends.
    The end valve demands the exact answer, so a completed request is
    also a *correct* request.
    """
    n = rng.randint(min_items, max_items)

    class Request(FluidRegion):
        def build(self):
            src = self.input_data("src", list(range(n)))
            mid = self.add_array("mid", [0] * n)
            out = self.add_array("out", [0] * n)
            ct = self.add_count("ct")

            def produce(ctx):
                data = src.read()
                for i in range(n):
                    mid[i] = data[i] * 2
                    ct.add()
                    yield 1.0

            def consume(ctx):
                for i in range(n):
                    out[i] = mid[i] + 1
                    yield 1.0

            self.add_task("produce", produce, inputs=[src], outputs=[mid])
            self.add_task(
                "consume", consume,
                start_valves=[PercentValve(ct, 0.4, n)],
                end_valves=[PredicateValve(
                    lambda: all(out[i] == 2 * i + 1 for i in range(n)),
                    name="exact")],
                inputs=[mid], outputs=[out])

    expected = [2 * i + 1 for i in range(n)]
    return Request(f"req-{index}"), expected, float(n)


async def run_rate(rate: float, requests: int, *, slots: int,
                   queue_capacity: int, discipline: str,
                   sheddable_fraction: float, seed: int,
                   backend: str = "thread",
                   batch_max: int = 1,
                   batch_cost_threshold: Optional[float] = None,
                   latency_slo: Optional[float] = None) -> Dict[str, Any]:
    """Drive one service at one offered rate; return its workload record."""
    rng = random.Random(f"loadgen:{seed}:{rate!r}")
    service = FluidService(
        backend=backend, slots=slots, queue_capacity=queue_capacity,
        discipline=discipline, latency_slo=latency_slo,
        batch_max=batch_max, batch_cost_threshold=batch_cost_threshold,
        name=f"loadgen-r{rate:g}")
    latencies: List[float] = []
    queue_waits: List[float] = []
    shed = 0
    must_run_shed = 0
    failures = 0
    slo_met = 0
    wrong = 0

    async def one(index: int) -> None:
        nonlocal shed, must_run_shed, failures, slo_met, wrong
        region, expected, cost = make_request_region(index, rng)
        sheddable = rng.random() < sheddable_fraction
        try:
            result = await service.submit(
                region, sheddable=sheddable, cost_estimate=cost)
        except AdmissionError:
            shed += 1
            if not sheddable:
                must_run_shed += 1
            return
        except Exception:
            failures += 1
            return
        latencies.append(result.latency)
        queue_waits.append(result.queue_wait)
        if result.slo_met:
            slo_met += 1
        if list(region.output("out")) != expected:
            wrong += 1

    started = time.perf_counter()
    inflight = []
    for index in range(requests):
        inflight.append(asyncio.ensure_future(one(index)))
        await asyncio.sleep(rng.expovariate(rate))
    await asyncio.gather(*inflight)
    elapsed = time.perf_counter() - started
    await service.close()

    latencies.sort()
    queue_waits.sort()
    record = {
        "tasks_offered": requests,
        "tasks_completed": len(latencies),
        "tasks_shed": shed,
        "must_run_shed": must_run_shed,
        "failures": failures,
        "wrong_results": wrong,
        "makespan": elapsed,
        "offered_rate": rate,
        "throughput": (len(latencies) / elapsed) if elapsed > 0 else 0.0,
        "latency_p50": _percentile(latencies, 0.50),
        "latency_p95": _percentile(latencies, 0.95),
        "latency_p99": _percentile(latencies, 0.99),
        "queue_wait_p50": _percentile(queue_waits, 0.50),
        "queue_wait_p99": _percentile(queue_waits, 0.99),
        "slo_met": slo_met if latency_slo is not None else None,
        "admission": service.queue.counters(),
        "dispatched_contexts": service.stats()["dispatched_total"],
    }
    return record


def sweep_document(workloads: Dict[str, Dict[str, Any]], *,
                   requests: int, seed: int, slots: int,
                   discipline: str, rates: Sequence[float],
                   queue_capacity: int, backend: str) -> Dict[str, Any]:
    """Wrap a loadgen sweep in the ``repro-bench-baseline/1`` envelope."""
    from ..bench.baseline import SCHEMA, current_rev

    return {
        "schema": SCHEMA,
        "rev": current_rev(),
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "backend": f"service-{backend}",
            "quick": requests <= 1000,
            "app": None,
            "requests": requests,
            "seed": seed,
            "slots": slots,
            "discipline": discipline,
            "rates": list(rates),
            "queue_capacity": queue_capacity,
        },
        "workloads": workloads,
    }


def check_sweep(workloads: Dict[str, Dict[str, Any]],
                tolerance: float = 0.8) -> List[str]:
    """Gate properties for CI; returns violations (empty = pass).

    * No must-run request may ever be shed (bounded admission parks
      them; a shed one is a lost guarantee).
    * No request may vanish: offered == completed + shed + failures.
    * No completed request may carry a wrong result (end valves demand
      exact answers).
    * Completed throughput must not *collapse* as offered load grows:
      each higher-rate cell must deliver at least ``tolerance`` x the
      best lower-rate throughput.  The generous factor absorbs CI
      timing noise while still catching real regressions (a service
      that thrashes under load shows up far below 0.8x).
    """
    violations: List[str] = []
    by_rate = sorted(
        ((record["offered_rate"], key, record)
         for key, record in workloads.items()),
        key=lambda item: item[0])
    best_so_far = 0.0
    for rate, key, record in by_rate:
        if record["must_run_shed"]:
            violations.append(
                f"{key}: {record['must_run_shed']} must-run requests shed")
        accounted = (record["tasks_completed"] + record["tasks_shed"]
                     + record["failures"])
        if accounted != record["tasks_offered"]:
            violations.append(
                f"{key}: {record['tasks_offered']} offered but only "
                f"{accounted} accounted for")
        if record["wrong_results"]:
            violations.append(
                f"{key}: {record['wrong_results']} completed requests "
                "returned wrong results")
        throughput = record["throughput"]
        if best_so_far > 0 and throughput < tolerance * best_so_far:
            violations.append(
                f"{key}: throughput {throughput:.1f}/s collapsed below "
                f"{tolerance:.0%} of {best_so_far:.1f}/s at lower load")
        best_so_far = max(best_so_far, throughput)
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Sweep Poisson arrival rates over a FluidService and "
                    "report throughput + latency percentiles.")
    parser.add_argument("--requests", type=int, default=200,
                        help="requests per rate (default 200)")
    parser.add_argument("--rates", default="50,100",
                        help="offered arrival rates in requests/second, "
                        "comma-separated (default 50,100)")
    parser.add_argument("--slots", type=int, default=4,
                        help="backend run slots (default 4)")
    parser.add_argument("--queue-capacity", type=int, default=64,
                        help="admission queue capacity (default 64)")
    parser.add_argument("--discipline", default="fcfs",
                        help="admission dispatch discipline (default fcfs)")
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "sim", "process"),
                        help="service backend (default thread)")
    parser.add_argument("--sheddable-fraction", type=float, default=0.5,
                        help="fraction of requests submitted sheddable "
                        "(default 0.5)")
    parser.add_argument("--batch-max", type=int, default=1,
                        help="max requests coalesced per dispatch "
                        "(default 1 = no batching)")
    parser.add_argument("--batch-cost-threshold", type=float, default=None,
                        help="cost_estimate at or below which requests "
                        "may be batched")
    parser.add_argument("--slo", type=float, default=None,
                        help="per-request latency SLO in seconds")
    parser.add_argument("--seed", type=int, default=0,
                        help="arrival/workload seed (default 0)")
    parser.add_argument("--out", default=None,
                        help="write the sweep as a repro-bench-baseline/1 "
                        "JSON document")
    parser.add_argument("--check", action="store_true",
                        help="gate: no must-run sheds, full accounting, "
                        "no throughput collapse under load")
    args = parser.parse_args(argv)

    if args.requests < 1:
        parser.error("--requests must be >= 1")
    try:
        rates = [float(token) for token in args.rates.split(",")
                 if token.strip()]
    except ValueError:
        parser.error(f"bad --rates list {args.rates!r}")
    if not rates or any(rate <= 0 for rate in rates):
        parser.error("--rates entries must be > 0")
    if not 0.0 <= args.sheddable_fraction <= 1.0:
        parser.error("--sheddable-fraction must be in [0, 1]")

    print(f"service loadgen: {args.requests} requests x "
          f"{len(rates)} rates, backend={args.backend}, "
          f"slots={args.slots}, queue={args.queue_capacity} "
          f"(seed {args.seed})")
    workloads: Dict[str, Dict[str, Any]] = {}
    for rate in rates:
        record = asyncio.run(run_rate(
            rate, args.requests, slots=args.slots,
            queue_capacity=args.queue_capacity,
            discipline=args.discipline,
            sheddable_fraction=args.sheddable_fraction,
            seed=args.seed, backend=args.backend,
            batch_max=args.batch_max,
            batch_cost_threshold=args.batch_cost_threshold,
            latency_slo=args.slo))
        key = f"{args.discipline}/cores{args.slots}/rate{rate:g}"
        workloads[key] = record
        print(f"  {key}: completed={record['tasks_completed']} "
              f"shed={record['tasks_shed']} "
              f"throughput={record['throughput']:.1f}/s "
              f"p50={record['latency_p50'] * 1e3:.1f}ms "
              f"p99={record['latency_p99'] * 1e3:.1f}ms")

    if args.out is not None:
        document = sweep_document(
            workloads, requests=args.requests, seed=args.seed,
            slots=args.slots, discipline=args.discipline, rates=rates,
            queue_capacity=args.queue_capacity, backend=args.backend)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")

    if args.check:
        violations = check_sweep(workloads)
        if violations:
            for violation in violations:
                print(f"LOADGEN VIOLATION: {violation}", file=sys.stderr)
            return 1
        print("loadgen check: PASS (no must-run sheds, full accounting, "
              "no throughput collapse)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
