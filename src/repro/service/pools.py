"""Backend pools the service can multiplex request contexts over.

The thread backend has a genuinely shared pool
(:class:`repro.runtime.thread_pool.SharedThreadPool`): one lock, one
slot gate, one scheduler, many concurrent contexts.  The simulator and
process backends are single-shot by construction (virtual time only
advances inside ``run()``; a forked worker pool belongs to one parent
control loop), so :class:`OneShotPool` adapts them: each admitted
:class:`~repro.runtime.context.RunContext` is executed on a fresh
executor, dispatched onto a small pool of dispatcher threads that
bounds how many run at once.

Both pool shapes expose the same four calls the service uses —
``start(ctx)`` / ``stop_context(ctx)`` / ``shutdown()`` / ``now()`` —
with completion always delivered through ``ctx.on_finished``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..core.errors import SchedulerError
from ..runtime.context import RunContext
from ..runtime.executor import make_executor


class OneShotPool:
    """Runs each context on a fresh single-shot executor (sim/process).

    ``workers`` bounds concurrent executor runs; excess contexts queue
    inside the dispatcher pool.  Cancellation (``stop_context``) is
    cooperative and coarse: a context that has not started yet is
    skipped, a running one finishes its executor run (the simulator
    cannot be interrupted mid-virtual-time; the process backend has its
    own timeout).

    Process contexts whose regions all provide a picklable
    ``remote_factory`` share one lazily-forked
    :class:`~repro.runtime.worker_pool.PersistentProcessPool` instead
    of forking a fresh worker set per request; fork-only regions keep
    the historical per-request pool.
    """

    def __init__(self, backend: str, workers: int = 2,
                 executor_options: Optional[Dict[str, Any]] = None,
                 name: str = "oneshot"):
        from concurrent.futures import ThreadPoolExecutor

        if backend not in ("sim", "process"):
            raise SchedulerError(
                f"OneShotPool hosts 'sim' or 'process' backends, not "
                f"{backend!r}; the thread backend uses SharedThreadPool")
        if workers < 1:
            raise SchedulerError("OneShotPool needs at least one worker")
        self.backend = backend
        self.executor_options = dict(executor_options or {})
        self._dispatchers = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"fluid-{name}")
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._closed = False
        self.name = name
        #: Lazily-forked persistent worker pool for process contexts
        #: whose regions all carry a picklable ``remote_factory``; None
        #: until the first such context (or forever, for sim / legacy
        #: fork-only regions).
        self._process_pool = None

    def now(self) -> float:
        return time.perf_counter() - self._epoch

    def start(self, ctx: RunContext) -> None:
        with self._lock:
            if self._closed:
                raise SchedulerError(
                    f"one-shot {self.backend} pool is shut down")
        ctx.epoch = self.now()
        self._dispatchers.submit(self._run, ctx)

    def stop_context(self, ctx: RunContext) -> None:
        ctx.stopped = True

    def shutdown(self, join_timeout: float = 5.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._dispatchers.shutdown(wait=True)
        with self._lock:
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.close()

    # ------------------------------------------------------------ internal

    def _acquire_pool(self, ctx: RunContext):
        """Persistent worker pool for this context, or None for a fork.

        Only process contexts whose regions *all* carry a picklable
        ``remote_factory`` can ride the pool; anything else keeps the
        historical fork-per-request executor.  The pool's exclusive
        lease serializes concurrent process contexts — deliberate: the
        pool is sized to the physical cores, and two forked pools
        racing for them was oversubscription, not concurrency.
        """
        if self.backend != "process":
            return None
        from ..runtime.worker_pool import PersistentProcessPool, pool_blob

        if not ctx.runs:
            return None
        if any(pool_blob(run.region) is None for run in ctx.runs):
            return None
        with self._lock:
            if self._closed:
                return None
            if self._process_pool is None:
                self._process_pool = PersistentProcessPool(
                    workers=self.executor_options.get("workers"),
                    name=f"fluid-{self.name}")
            return self._process_pool

    def _run(self, ctx: RunContext) -> None:
        try:
            if ctx.stopped:
                raise SchedulerError(
                    f"context {ctx.label!r} cancelled before dispatch")
            options = dict(self.executor_options)
            if ctx.telemetry is not None:
                options.setdefault("telemetry", ctx.telemetry)
            if ctx.modulation is not None:
                options.setdefault("modulation", ctx.modulation)
            if ctx.cancel_first_runs:
                options.setdefault("cancel_first_runs", True)
            pool = self._acquire_pool(ctx)
            if pool is not None:
                options["pool"] = pool
            executor = make_executor(self.backend, **options)
            for run in ctx.runs:
                executor.submit(run.region, after=run.after)
            executor.run()
            for run in ctx.runs:
                run.launched = True
                run.done = run.region.complete
        except Exception as error:
            if ctx.body_error is None:
                ctx.body_error = error
        finally:
            ctx.finished.set()
            if ctx.on_finished is not None:
                ctx.on_finished(ctx)
