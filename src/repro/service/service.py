"""`FluidService`: the asyncio multi-region frontend.

One long-lived service object accepts a stream of region-execution
requests (``await service.submit(region)``) and multiplexes them over a
single shared backend pool:

* **thread** (default) — a
  :class:`~repro.runtime.thread_pool.SharedThreadPool`: every request's
  regions run concurrently over one lock/slot-gate/scheduler substrate
  with per-region count/valve isolation;
* **sim** / **process** — a :class:`~repro.service.pools.OneShotPool`
  of single-shot executors bounded by dispatcher workers.

Admission is a bounded relaxed queue (:class:`AdmissionQueue`):
sheddable requests are rejected with :class:`AdmissionError` when the
queue is full (backpressure the caller can see), must-run requests are
parked and never dropped.  Small requests (by ``cost_estimate``) can be
batched into one :class:`~repro.runtime.context.RunContext` so a burst
of tiny regions pays one launch instead of N.  Every request's
lifecycle lands on the TelemetryBus as ``svc.*`` events — latency and
queue-wait histograms, SLO met/missed counters — so an operator can
watch the service the same way they watch a single run.

Threading model: all service state (queue, in-flight accounting, bus)
is touched only from the event-loop thread.  Pool completion callbacks
hop back onto the loop via ``call_soon_threadsafe``; the pool itself
serializes guard work under its own lock.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from ..core.errors import SchedulerError
from ..core.region import FluidRegion
from ..runtime.context import RunContext
from ..runtime.thread_pool import SharedThreadPool
from .admission import (AdmissionError, AdmissionQueue,
                        load_capacity_document, pick_concurrency)
from .pools import OneShotPool

#: Backends a service can host.
SERVICE_BACKENDS = ("thread", "sim", "process")


class ServiceRequest:
    """One admitted region-execution request (internal bookkeeping).

    The ``priority`` / ``deadline`` / ``cost_estimate`` attributes are
    read by the admission queue's discipline, exactly like ``TaskSpec``
    hints on Fluid tasks.
    """

    __slots__ = ("region", "future", "sheddable", "latency_slo", "timeout",
                 "priority", "deadline", "cost_estimate", "enqueued",
                 "dispatched", "name")

    def __init__(self, region: FluidRegion, future: "asyncio.Future", *,
                 sheddable: bool, latency_slo: Optional[float],
                 timeout: Optional[float], priority: float,
                 deadline: Optional[float], cost_estimate: Optional[float]):
        self.region = region
        self.name = region.name
        self.future = future
        self.sheddable = sheddable
        self.latency_slo = latency_slo
        self.timeout = timeout
        self.priority = priority
        self.deadline = deadline
        self.cost_estimate = cost_estimate
        self.enqueued = 0.0
        self.dispatched: Optional[float] = None


class ServiceResult:
    """What ``await service.submit(...)`` resolves to."""

    __slots__ = ("region", "latency", "queue_wait", "slo_met", "batch_size")

    def __init__(self, region: FluidRegion, latency: float,
                 queue_wait: float, slo_met: Optional[bool],
                 batch_size: int):
        self.region = region
        #: Seconds from admission to completion (what the SLO is over).
        self.latency = latency
        #: Seconds spent parked in the admission queue.
        self.queue_wait = queue_wait
        #: True/False against the request's latency SLO; None if no SLO.
        self.slo_met = slo_met
        #: Number of requests coalesced into this request's context.
        self.batch_size = batch_size

    @property
    def makespan(self) -> float:
        """The region's own execution makespan (pool-clock seconds)."""
        return self.region.stats.makespan

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ServiceResult({self.region.name!r}, "
                f"latency={self.latency:.3f}, "
                f"queue_wait={self.queue_wait:.3f})")


class FluidService:
    """Async frontend multiplexing region requests over one backend pool.

    Parameters
    ----------
    backend:
        ``thread`` (shared pool, default), ``sim`` or ``process``
        (one-shot pools).
    slots / scheduler:
        Thread-pool run-slot gate: at most ``slots`` bodies run
        concurrently, granted in ``scheduler`` discipline order across
        *all* in-flight requests.  For one-shot backends ``slots``
        bounds concurrent executor runs instead.
    queue_capacity / discipline:
        The bounded admission queue and its dispatch order.
    max_concurrency:
        Cap on run contexts in flight (dispatched, not finished); a
        batch of requests occupies one context.  When
        omitted it is derived from ``capacity_curves`` (a capacity-sweep
        JSON path or document, see :func:`pick_concurrency`) or defaults
        to ``4 * slots``.
    latency_slo:
        Default per-request latency SLO in seconds; also the SLO handed
        to the capacity-curve concurrency policy.
    batch_max / batch_cost_threshold:
        Requests whose ``cost_estimate`` is at or below the threshold
        are coalesced (up to ``batch_max`` per dispatch) into one run
        context.  ``batch_max=1`` (default) disables batching.  Batched
        requests share fate: one body error fails the whole batch.
    request_timeout:
        Default per-request timeout; a timed-out request's context is
        cancelled and its future fails with :class:`SchedulerError`.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; receives ``svc.*``
        request-lifecycle events and the admission queue's shed/defer
        events (all published from the event-loop thread).
    """

    def __init__(self, *, backend: str = "thread",
                 slots: int = 4,
                 scheduler: Optional[object] = None,
                 queue_capacity: int = 64,
                 discipline: str = "fcfs",
                 max_concurrency: Optional[int] = None,
                 capacity_curves: Optional[object] = None,
                 latency_slo: Optional[float] = None,
                 batch_max: int = 1,
                 batch_cost_threshold: Optional[float] = None,
                 request_timeout: Optional[float] = None,
                 telemetry: Optional[object] = None,
                 backend_options: Optional[Dict[str, Any]] = None,
                 name: str = "fluid-service"):
        if backend not in SERVICE_BACKENDS:
            raise SchedulerError(
                f"unknown service backend {backend!r}; expected one of "
                f"{', '.join(SERVICE_BACKENDS)}")
        if batch_max < 1:
            raise SchedulerError("batch_max must be >= 1")
        self.name = name
        self.backend = backend
        self.telemetry = telemetry
        self._bus = telemetry.bus if telemetry is not None else None
        self.latency_slo = latency_slo
        self.request_timeout = request_timeout
        self.batch_max = batch_max
        self.batch_cost_threshold = batch_cost_threshold
        if max_concurrency is None and capacity_curves is not None:
            document = (load_capacity_document(capacity_curves)
                        if isinstance(capacity_curves, str)
                        else capacity_curves)
            max_concurrency = pick_concurrency(
                document, latency_slo=latency_slo, default=4 * slots)
        self.max_concurrency = max_concurrency or 4 * slots
        # The admission queue is driven only from the event-loop thread,
        # so it may share the service bus; the backend pool publishes
        # from guard threads and therefore gets no bus (per-request
        # telemetry would race the service's own publishes).
        self.queue = AdmissionQueue(capacity=queue_capacity,
                                    discipline=discipline, bus=self._bus)
        options = dict(backend_options or {})
        if backend == "thread":
            self.pool = SharedThreadPool(
                slots=slots, scheduler=scheduler, name=name, **options)
        else:
            self.pool = OneShotPool(backend, workers=slots,
                                    executor_options=options, name=name)
        if telemetry is not None:
            telemetry.bind_clock(self.pool.now, 1e6)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight = 0
        self._dispatched_total = 0
        self._closing = False
        self._closed = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._timers: Dict[int, object] = {}

    # ------------------------------------------------------------- public

    async def __aenter__(self) -> "FluidService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def submit(self, region: FluidRegion, *,
                     sheddable: bool = False,
                     latency_slo: Optional[float] = None,
                     timeout: Optional[float] = None,
                     priority: float = 0.0,
                     deadline: Optional[float] = None,
                     cost_estimate: Optional[float] = None) -> ServiceResult:
        """Execute one region; resolves when it completes.

        Raises :class:`AdmissionError` immediately if the request is
        sheddable and the bounded queue is full (backpressure), or if
        the service is closing.  Must-run requests are parked, never
        shed.
        """
        loop = asyncio.get_running_loop()
        self._adopt_loop(loop)
        name = region.name
        self._emit("request", name, {"sheddable": sheddable})
        if self._closing:
            self._emit("shed", name, {"reason": "closing"})
            raise AdmissionError(
                f"service {self.name!r} is closing; request {name!r} refused")
        request = ServiceRequest(
            region, loop.create_future(), sheddable=sheddable,
            latency_slo=(latency_slo if latency_slo is not None
                         else self.latency_slo),
            timeout=(timeout if timeout is not None
                     else self.request_timeout),
            priority=priority, deadline=deadline,
            cost_estimate=cost_estimate)
        request.enqueued = self.pool.now()
        if not self.queue.offer(request, now=request.enqueued,
                                sheddable=sheddable):
            self._emit("shed", name, {"reason": "queue-full"})
            raise AdmissionError(
                f"request {name!r} shed: admission queue full "
                f"({self.queue.capacity} waiting)")
        self._emit("admit", name, {"pending": self.queue.pending()})
        self._idle.clear()
        self._dispatch()
        return await request.future

    async def close(self, drain: bool = True,
                    timeout: Optional[float] = None) -> None:
        """Stop accepting requests; optionally drain, then shut the pool.

        With ``drain=True`` (default) every admitted request finishes
        first; with ``drain=False`` queued requests fail with
        :class:`AdmissionError` and in-flight contexts are cancelled.
        """
        if self._closed:
            return
        self._closing = True
        if not drain:
            now = self.pool.now()
            while True:
                request = self.queue.take(now=now)
                if request is None:
                    break
                self._fail_request(
                    request, AdmissionError(
                        f"service {self.name!r} closed before dispatch"))
            if hasattr(self.pool, "_contexts"):
                with self.pool._lock:
                    contexts = list(self.pool._contexts)
                for ctx in contexts:
                    self.pool.stop_context(ctx)
        if self._inflight or self.queue.pending():
            try:
                await asyncio.wait_for(self._idle.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        self._closed = True
        self.pool.shutdown()
        if self.telemetry is not None:
            now = self.pool.now()
            self.telemetry.record_scheduler(self.queue.scheduler)
            self.telemetry.run_finished(now, getattr(self.pool, "slots", 1),
                                        now=now)

    def stats(self) -> Dict[str, Any]:
        """Live service counters (event-loop thread only)."""
        return {
            "inflight": self._inflight,
            "queued": self.queue.pending(),
            "dispatched_total": self._dispatched_total,
            "max_concurrency": self.max_concurrency,
            "admission": self.queue.counters(),
        }

    # ----------------------------------------------------------- dispatch

    def _adopt_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise SchedulerError(
                f"service {self.name!r} is bound to a different event loop")

    def _emit(self, event: str, region: str,
              data: Optional[Dict[str, Any]] = None) -> None:
        if self._bus is not None:
            self._bus.emit("svc", region, "", event, data=data or {})

    def _batchable(self, request: ServiceRequest) -> bool:
        return (self.batch_max > 1
                and self.batch_cost_threshold is not None
                and request.cost_estimate is not None
                and request.cost_estimate <= self.batch_cost_threshold)

    def _dispatch(self) -> None:
        """Drain the admission queue into the pool up to the cap."""
        while self._inflight < self.max_concurrency:
            now = self.pool.now()
            request = self.queue.take(now=now)
            if request is None:
                break
            batch = [request]
            if self._batchable(request):
                # Coalesce a run of consecutive small requests into one
                # context.  A non-batchable pick ends the run and
                # dispatches solo — it was already dequeued, so it must
                # go now (may overshoot the context cap by one).
                solo: List[ServiceRequest] = []
                while len(batch) < self.batch_max:
                    peek = self.queue.take(now=now)
                    if peek is None:
                        break
                    if self._batchable(peek):
                        batch.append(peek)
                    else:
                        solo.append(peek)
                        break
                self._dispatch_batch(batch)
                for extra in solo:
                    self._dispatch_batch([extra])
            else:
                self._dispatch_batch(batch)

    def _dispatch_batch(self, batch: List[ServiceRequest]) -> None:
        now = self.pool.now()
        ctx = RunContext(label=f"{self.name}-{self._dispatched_total}")
        self._dispatched_total += 1
        for request in batch:
            request.dispatched = now
            ctx.submit(request.region)
        loop = self._loop
        ctx.on_finished = lambda done: loop.call_soon_threadsafe(
            self._ctx_done, done, batch)
        self._inflight += 1
        self._emit("dispatch", batch[0].name,
                   {"requests": len(batch),
                    "queue_wait": now - batch[0].enqueued,
                    "inflight": self._inflight})
        timeouts = [r.timeout for r in batch if r.timeout is not None]
        if timeouts:
            self._timers[id(ctx)] = loop.call_later(
                min(timeouts), self._timeout_ctx, ctx)
        try:
            self.pool.start(ctx)
        except Exception as error:
            self._cancel_timer(ctx)
            self._inflight -= 1
            for request in batch:
                self._fail_request(request, error)
            self._maybe_idle()

    def _timeout_ctx(self, ctx: RunContext) -> None:
        if not ctx.finished.is_set():
            self.pool.stop_context(ctx)

    def _cancel_timer(self, ctx: RunContext) -> None:
        timer = self._timers.pop(id(ctx), None)
        if timer is not None:
            timer.cancel()

    def _ctx_done(self, ctx: RunContext, batch: List[ServiceRequest]) -> None:
        """Pool completion landed back on the loop: resolve futures."""
        self._cancel_timer(ctx)
        self._inflight -= 1
        now = self.pool.now()
        error: Optional[Exception] = ctx.body_error
        if error is None and ctx.stopped and not ctx.all_done:
            error = SchedulerError(
                f"request context {ctx.label!r} was cancelled "
                "(timeout or service shutdown)")
        for request in batch:
            if error is not None:
                self._fail_request(request, error)
                continue
            latency = now - request.enqueued
            queue_wait = (request.dispatched or now) - request.enqueued
            slo = request.latency_slo
            slo_met = None if slo is None else latency <= slo
            self._emit("complete", request.name,
                       {"latency": latency, "queue_wait": queue_wait,
                        "slo": slo, "slo_met": slo_met,
                        "requests": len(batch)})
            if not request.future.done():
                request.future.set_result(ServiceResult(
                    request.region, latency, queue_wait, slo_met,
                    len(batch)))
        # Reap this context's guard threads (no-op on one-shot pools):
        # they are at/near exit once the context finished, and a
        # long-lived service must not accumulate one thread per task.
        ctx.join(1.0)
        self._dispatch()
        self._maybe_idle()

    def _fail_request(self, request: ServiceRequest,
                      error: Exception) -> None:
        self._emit("fail", request.name, {"error": repr(error)})
        if not request.future.done():
            request.future.set_exception(error)

    def _maybe_idle(self) -> None:
        if self._inflight == 0 and self.queue.pending() == 0:
            self._idle.set()
