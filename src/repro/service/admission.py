"""Admission control for the Fluid service frontend.

Two pieces:

* :class:`AdmissionQueue` — the bounded, relaxed request queue.  It is
  a thin veneer over :func:`repro.sched.make_scheduler` with a
  ``bounded:capacity=N,inner=DISCIPLINE`` spec, so the service reuses
  the exact shed-or-park semantics the executors already have: a
  *sheddable* request that arrives when the queue is full is rejected
  observably (a ``sched``/``shed`` bus event plus an
  :class:`AdmissionError` to the caller), while a *must-run* request is
  parked in FIFO overflow and never dropped.  The inner discipline
  (fcfs/priority/edf/sew) orders dispatch, keyed off the request's
  ``priority``/``deadline``/``cost_estimate`` hints — the same
  ``TaskSpec`` attributes the schedulers read on Fluid tasks.

* :func:`pick_concurrency` — the capacity-curve admission policy.  It
  consumes a ``python -m repro.sched.capacity`` sweep document
  (``repro-bench-baseline/1`` schema) and picks the smallest
  concurrency whose measured latency percentile meets a target SLO
  (or, with no SLO, the knee of the throughput curve), closing the
  ROADMAP follow-up "feed capacity curves into an admission autotuner".
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..core.errors import FluidError
from ..sched import make_scheduler


class AdmissionError(FluidError):
    """A request was refused at admission (queue full and sheddable)."""


class AdmissionQueue:
    """Bounded relaxed admission queue over a ``repro.sched`` discipline.

    Driven from one thread only (the service's event loop), matching
    the scheduler contract; the bound scheduler emits ``shed``/``defer``
    events on the service bus so backpressure is observable.
    """

    def __init__(self, capacity: int = 64, discipline: str = "fcfs",
                 bus: Optional[object] = None):
        if capacity < 1:
            raise AdmissionError("admission queue needs capacity >= 1")
        self.capacity = capacity
        self.discipline = discipline
        spec = f"bounded:capacity={capacity},inner={discipline}"
        self.scheduler = make_scheduler(spec).bind(
            bus=bus, point="admission", workers=1)

    def offer(self, request: object, *, now: float,
              sheddable: bool) -> bool:
        """Admit a request; False means it was shed (bounded overflow).

        Must-run requests (``sheddable=False``) are parked, never
        dropped — the same guarantee guard-requested runs get from
        :class:`repro.sched.BoundedScheduler`.
        """
        return self.scheduler.submit(request, now=now, sheddable=sheddable)

    def take(self, *, now: float) -> Optional[object]:
        """Next request in discipline order, or None when empty."""
        return self.scheduler.pick(now=now)

    def pending(self) -> int:
        return self.scheduler.pending()

    def counters(self) -> Dict[str, int]:
        return self.scheduler.counters()

    def snapshot(self) -> Dict[str, Any]:
        return self.scheduler.snapshot()


def _capacity_cells(document: Dict[str, Any],
                    scheduler: str) -> Dict[int, Dict[float, Dict[str, Any]]]:
    """Parse ``<sched>/cores<N>/rate<R>`` workload keys into a grid."""
    workloads = document.get("workloads", document)
    grid: Dict[int, Dict[float, Dict[str, Any]]] = {}
    for key, record in workloads.items():
        parts = str(key).split("/")
        if len(parts) != 3 or parts[0] != scheduler:
            continue
        if not parts[1].startswith("cores") or not parts[2].startswith("rate"):
            continue
        try:
            cores = int(parts[1][len("cores"):])
            rate = float(parts[2][len("rate"):])
        except ValueError:
            continue
        grid.setdefault(cores, {})[rate] = record
    return grid


def pick_concurrency(document: Dict[str, Any], *,
                     latency_slo: Optional[float] = None,
                     rate: Optional[float] = None,
                     scheduler: str = "fcfs",
                     percentile: str = "latency_p99",
                     default: int = 4) -> int:
    """Pick a concurrency cap from a capacity-sweep document.

    ``document`` is a ``repro-bench-baseline/1`` capacity sweep (the
    dict, or anything with a ``workloads`` mapping).  The policy reads
    the ``scheduler`` curves at the requested per-core arrival ``rate``
    (nearest swept rate; highest swept rate when omitted — the most
    pessimistic load) and returns:

    * with a ``latency_slo`` — the smallest cores value whose
      ``percentile`` sojourn latency meets the SLO, falling back to the
      cores with the lowest such latency when none meets it;
    * without one — the throughput knee: the smallest cores value
      within 5% of the best measured throughput.

    Returns ``default`` when the document has no usable cells.
    """
    grid = _capacity_cells(document, scheduler)
    if not grid:
        return default
    swept_rates = sorted({r for by_rate in grid.values() for r in by_rate})
    target_rate = (swept_rates[-1] if rate is None else
                   min(swept_rates, key=lambda r: abs(r - rate)))
    candidates = []
    for cores in sorted(grid):
        record = grid[cores].get(target_rate)
        if record is not None:
            candidates.append((cores, record))
    if not candidates:
        return default
    if latency_slo is not None:
        for cores, record in candidates:
            if record.get(percentile, float("inf")) <= latency_slo:
                return cores
        return min(candidates,
                   key=lambda item: item[1].get(percentile,
                                                float("inf")))[0]
    best = max(record.get("throughput", 0.0) for _cores, record in candidates)
    for cores, record in candidates:
        if record.get("throughput", 0.0) >= 0.95 * best:
            return cores
    return candidates[-1][0]  # pragma: no cover - defensive


def load_capacity_document(path: str) -> Dict[str, Any]:
    """Read a capacity-sweep JSON file (baseline-schema envelope)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "workloads" not in document:
        raise AdmissionError(
            f"{path!r} is not a capacity sweep document "
            "(expected a 'workloads' mapping)")
    return document
