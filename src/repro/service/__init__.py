"""Fluid-as-a-service: the async multi-region frontend.

``FluidService`` turns the single-shot executors into a long-lived
service: an asyncio frontend accepts a stream of region-execution
requests, admits them through a bounded relaxed queue (shed-or-park,
reusing :mod:`repro.sched`), optionally batches small regions, and
multiplexes the admitted run contexts over one shared backend pool.
See ``docs/service.md`` for the architecture and
``python -m repro.service.loadgen`` for the load generator.
"""

from .admission import (AdmissionError, AdmissionQueue,
                        load_capacity_document, pick_concurrency)
from .pools import OneShotPool
from .service import (SERVICE_BACKENDS, FluidService, ServiceRequest,
                      ServiceResult)

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "FluidService",
    "OneShotPool",
    "SERVICE_BACKENDS",
    "ServiceRequest",
    "ServiceResult",
    "load_capacity_document",
    "pick_concurrency",
]
