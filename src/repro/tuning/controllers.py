"""Control laws for the online valve autotuner.

A :class:`Controller` turns an SLO *error* into a step of the tuner's
normalized *position*.  The contract (see ``docs/autotuning.md``):

* The tuner's position lives in ``[-1, 1]``: ``0`` is the user-declared
  base threshold, ``1`` is full serialization (every tunable valve at
  its ``max_threshold``-style ceiling), and negative positions relax
  *below* the base — reachable only when the autotuner was built with
  an explicit ``relax_floor`` (the paper treats the user threshold as a
  minimum, so relaxation past it is opt-in).
* The error is signed so that **positive means "tighten"**: the run is
  missing its quality floor (or has latency slack to spend on
  accuracy), so thresholds should move toward serialization.  Negative
  error asks for relaxation.
* :meth:`Controller.step` returns a signed position delta.  Errors
  inside the controller's ``deadband`` must map to a zero step — that
  is what the conformance suite's no-oscillation property pins.

Controllers are cheap, single-run state machines: a tuner drives one
instance for the whole run (hysteresis direction memory spans epoch
regions by design); :meth:`Controller.clone` stamps out a fresh,
identically-configured instance so harnesses can reuse one prototype
across many runs without leaking state.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.errors import TuningError


class Controller:
    """Base control law: error -> position delta."""

    name = "controller"

    def __init__(self, deadband: float = 0.02):
        if deadband < 0:
            raise TuningError(f"{self.name}: deadband must be >= 0")
        self.deadband = float(deadband)

    def step(self, error: float, position: float) -> float:
        """Signed position delta for this error at this position.

        Must return 0 whenever ``abs(error) <= deadband``.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop per-region state (direction memory etc.)."""

    def clone(self) -> "Controller":
        """A fresh controller with the same configuration."""
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        return {"controller": self.name, "deadband": self.deadband}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.describe()})"


class AimdController(Controller):
    """Additive-increase / multiplicative-decrease, TCP style.

    The *rate* being controlled is relaxation (``1 - position``): while
    the SLO is met with margin the controller relaxes additively
    (``relax_step`` toward the floor, probing for concurrency); on an
    SLO violation it backs off multiplicatively, jumping ``backoff`` of
    the remaining distance toward full serialization.  The asymmetry
    makes violations recover in O(log) steps while the relaxation probe
    stays gentle — the classic AIMD stability argument.
    """

    name = "aimd"

    def __init__(self, relax_step: float = 0.05, backoff: float = 0.5,
                 deadband: float = 0.02):
        super().__init__(deadband)
        if not 0.0 < backoff <= 1.0:
            raise TuningError("aimd: backoff must be in (0, 1]")
        if relax_step <= 0:
            raise TuningError("aimd: relax_step must be positive")
        self.relax_step = float(relax_step)
        self.backoff = float(backoff)

    def step(self, error: float, position: float) -> float:
        if error > self.deadband:
            # Violation: multiplicative backoff of the relaxation.
            return self.backoff * (1.0 - position)
        if error < -self.deadband:
            # Met with margin: additive relaxation probe.
            return -self.relax_step
        return 0.0

    def clone(self) -> "AimdController":
        return AimdController(self.relax_step, self.backoff, self.deadband)

    def describe(self) -> Dict[str, Any]:
        return {"controller": self.name, "deadband": self.deadband,
                "relax_step": self.relax_step, "backoff": self.backoff}


class HysteresisController(Controller):
    """Proportional control with a deadband and direction hysteresis.

    The step is ``gain * error`` clamped to ``max_step``.  Reversing
    direction (tighten after relax or vice versa) additionally requires
    the error to exceed ``reversal * deadband``, so measurement noise
    bouncing around the target cannot make the thresholds oscillate —
    the conformance suite drives this with adversarial error streams.
    """

    name = "hysteresis"

    def __init__(self, gain: float = 0.5, deadband: float = 0.03,
                 max_step: float = 0.25, reversal: float = 2.0):
        super().__init__(deadband)
        if gain <= 0:
            raise TuningError("hysteresis: gain must be positive")
        if max_step <= 0:
            raise TuningError("hysteresis: max_step must be positive")
        if reversal < 1.0:
            raise TuningError("hysteresis: reversal must be >= 1")
        self.gain = float(gain)
        self.max_step = float(max_step)
        self.reversal = float(reversal)
        self._direction = 0

    def step(self, error: float, position: float) -> float:
        if abs(error) <= self.deadband:
            return 0.0
        direction = 1 if error > 0 else -1
        if self._direction and direction != self._direction and \
                abs(error) <= self.reversal * self.deadband:
            # Inside the hysteresis band: hold course rather than flap.
            return 0.0
        self._direction = direction
        delta = self.gain * error
        return max(-self.max_step, min(self.max_step, delta))

    def reset(self) -> None:
        self._direction = 0

    def clone(self) -> "HysteresisController":
        return HysteresisController(self.gain, self.deadband,
                                    self.max_step, self.reversal)

    def describe(self) -> Dict[str, Any]:
        return {"controller": self.name, "deadband": self.deadband,
                "gain": self.gain, "max_step": self.max_step,
                "reversal": self.reversal}


#: name -> constructor accepting keyword options (all-float).
CONTROLLERS = {
    "aimd": AimdController,
    "hysteresis": HysteresisController,
}

CONTROLLER_NAMES = ", ".join(sorted(CONTROLLERS))


def make_controller(spec: Any = None, **overrides: float) -> Controller:
    """Build a controller from a spec.

    ``None`` gives a fresh :class:`AimdController` (the default law); a
    :class:`Controller` instance passes through; a string names a law,
    with options as keywords (forwarded by the autotuner spec parser)::

        make_controller("aimd")
        make_controller("hysteresis", gain=0.8, deadband=0.05)
    """
    if spec is None:
        return AimdController(**overrides) if overrides else AimdController()
    if isinstance(spec, Controller):
        if overrides:
            raise TuningError(
                "controller options cannot be combined with a "
                "Controller instance")
        return spec
    name = str(spec).strip().lower()
    if name not in CONTROLLERS:
        raise TuningError(
            f"unknown controller {name!r}; expected one of "
            + CONTROLLER_NAMES)
    try:
        return CONTROLLERS[name](**overrides)
    except TypeError as error:
        raise TuningError(
            f"bad option for controller {name!r}: {error}") from None


def parse_float(name: str, value: str) -> float:
    """Shared option coercion with a uniform error."""
    try:
        return float(value)
    except ValueError:
        raise TuningError(
            f"option {name!r} needs a number, got {value!r}") from None


def controller_option_names(name: Optional[str]) -> "tuple[str, ...]":
    """The keyword options a named controller accepts (spec parsing)."""
    if name == "hysteresis":
        return ("gain", "deadband", "max_step", "reversal")
    return ("relax_step", "backoff", "deadband")
