"""Closed-loop valve autotuning against latency/accuracy SLOs.

The paper's threshold modulation (Sections 4.4 and 6.1) tightens valves
after quality failures; :class:`ValveAutotuner` generalizes it into an
online feedback controller in the spirit of significance-aware runtimes
(Vassiliadis et al.): subscribe to the telemetry bus, fold the run's
own quality/latency signals into an SLO error, and steer start-valve
thresholds at runtime through a pluggable control law
(:mod:`repro.tuning.controllers`).

Two SLOs are supported:

``accuracy_floor`` (minimize makespan s.t. quality >= floor)
    Feedback is the *end-valve verdict stream* — each evaluated quality
    check in any attached region contributes one pass/fail sample, and
    every ``window`` samples the controller compares the window pass
    rate against the floor.  The cadence is event-count-based, not
    clock-based, and the pass rate is order-invariant within a window,
    so on a deterministic schedule all three backends take *identical*
    tuning decisions (the parity suite pins this).  The window is
    run-global rather than per-region because the SLO is a run
    property and per-region feedback is sparse: an epoch-structured
    app like K-means emits only one quality verdict per epoch region.

``latency_ceiling`` (maximize accuracy s.t. makespan <= ceiling)
    Feedback is projected run makespan (elapsed time since the first
    region attach, scaled by the completed-task fraction) against the
    ceiling, sampled every ``window`` task completions.  Projections
    read the executor clock, so decisions are deterministic only under
    the simulator.

Positions and bounds
--------------------

The tuner state is one scalar *position* in ``[-1, 1]``: ``0`` is every
valve at its declared base threshold, ``1`` is full serialization, and
negative values relax below base — reachable only when the tuner was
built with ``relax_floor=`` (the paper treats user thresholds as
minimums, so under-relaxation is opt-in).  A decision moves the
position and actuates the tunable start valves of *every* attached
region; regions attached later inherit the current position on
attach — the carry-over that lets epoch-structured apps (K-means)
start later regions at the operating point earlier epochs learned,
exactly like ``ModulationPolicy``'s failure pressure.

Only valves with tightening headroom are actuated: ``CountValve`` /
``PercentValve`` move ``threshold`` within ``[base, max_threshold]``
(this includes :class:`~repro.core.valves.StalenessValve`, whose
threshold *is* ``expected - k`` — tightening steers the staleness
bound of an attached :class:`~repro.stream.StageQueue` toward FIFO),
``ConvergenceValve`` moves ``window``, ``StabilityValve`` moves
``rounds``.  Valves whose ceiling equals their base (plain counts,
handshake valves) and opaque :class:`~repro.core.valves.PredicateValve`
conditions are left alone.  Every actuation calls
``invalidate_memo()``, so memoized verdicts can never survive a
threshold change.

Every adjustment is published as a ``tune``-kind bus event (observable
in SchedLab replays and the Perfetto export) and counted in the
``tune.*`` metrics; structural traces only record ``sched``/``guard``
events, so ``autotune=None`` (and even an idle tuner) leaves golden
traces bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.errors import TuningError
from ..core.valves import ConvergenceValve, CountValve, StabilityValve, Valve
from .controllers import controller_option_names, make_controller, parse_float

SLO_KINDS = ("accuracy_floor", "latency_ceiling")


@dataclass(frozen=True)
class SLO:
    """A declared service-level objective for one fluid run."""

    kind: str
    target: float

    def __post_init__(self):
        if self.kind not in SLO_KINDS:
            raise TuningError(
                f"unknown SLO kind {self.kind!r}; expected one of "
                + ", ".join(SLO_KINDS))
        if self.kind == "accuracy_floor" and not 0.0 < self.target <= 1.0:
            raise TuningError(
                f"accuracy_floor target {self.target} outside (0, 1]")
        if self.kind == "latency_ceiling" and self.target <= 0:
            raise TuningError(
                f"latency_ceiling target {self.target} must be positive")

    @classmethod
    def accuracy_floor(cls, target: float = 0.9) -> "SLO":
        """Quality floor: window end-valve pass rate must stay >= target."""
        return cls("accuracy_floor", float(target))

    @classmethod
    def latency_ceiling(cls, target: float) -> "SLO":
        """Latency ceiling: projected makespan must stay <= target."""
        return cls("latency_ceiling", float(target))

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "target": self.target}


@dataclass(frozen=True)
class TuneDecision:
    """One applied adjustment (the unit the parity suite compares)."""

    index: int
    region: str
    metric: float   # window pass rate / projected makespan
    error: float    # signed; positive = tighten
    before: float   # position before
    after: float    # position after


class _TunedValve:
    """One actuatable valve: bounds plus the attribute the tuner moves."""

    __slots__ = ("valve", "attr", "lo", "base", "hi", "integral")

    def __init__(self, valve: Valve, attr: str, lo: float, base: float,
                 hi: float, integral: bool):
        self.valve = valve
        self.attr = attr
        self.lo = lo
        self.base = base
        self.hi = hi
        self.integral = integral

    def apply(self, position: float) -> None:
        if position >= 0:
            value = self.base + position * (self.hi - self.base)
        else:
            value = self.base + position * (self.base - self.lo)
        if self.integral:
            value = max(1, int(round(value)))
        setattr(self.valve, self.attr, value)
        # Memo tokens include the threshold, but never trust that
        # indirection: a moved valve must re-evaluate.
        self.valve.invalidate_memo()


def _tuned_valve(valve: Valve,
                 relax_floor: Optional[float]) -> Optional[_TunedValve]:
    """Bounds for one valve, or None when it has no tuning headroom.

    A valve whose ceiling equals its base declared no fluidization
    range — a plain handshake ``CountValve``, say — and is left alone
    entirely: ``relax_floor`` must not push such a valve below the only
    threshold its author ever asked for.
    """
    if isinstance(valve, CountValve):      # PercentValve included
        base, hi = valve.base_threshold, valve.max_threshold
        if hi <= base:
            return None
        lo = base if relax_floor is None else min(base, relax_floor * hi)
        return _TunedValve(valve, "threshold", lo, base, hi, integral=False)
    if isinstance(valve, ConvergenceValve):
        base, hi = valve.base_window, valve.max_window
        if hi <= base:
            return None
        lo = base if relax_floor is None else min(
            base, max(1, int(round(relax_floor * hi))))
        return _TunedValve(valve, "window", lo, base, hi, integral=True)
    if isinstance(valve, StabilityValve):
        base, hi = valve.base_rounds, valve.max_rounds
        if hi <= base:
            return None
        lo = base if relax_floor is None else min(
            base, max(1, int(round(relax_floor * hi))))
        return _TunedValve(valve, "rounds", lo, base, hi, integral=True)
    return None   # Always/Never/Predicate/DataFinal: not actuatable


class _RegionState:
    """One attached region: its tunable valves and task count."""

    __slots__ = ("name", "entries", "total_tasks")

    def __init__(self, name: str, entries: List[_TunedValve],
                 total_tasks: int):
        self.name = name
        self.entries = entries
        self.total_tasks = total_tasks


class ValveAutotuner:
    """Online per-region valve-threshold controller (see module doc).

    Like :class:`repro.sched.Scheduler`, a tuner instance is a
    *single-run* object: executors bind it to their telemetry bus and
    it accumulates that run's decisions.  Pass a spec *string* through
    harnesses that execute many runs — each run then builds its own
    tuner via :func:`make_autotuner`.
    """

    def __init__(self, slo: Any, controller: Any = None, window: int = 8,
                 relax_floor: Optional[float] = None):
        if isinstance(slo, str):
            slo = SLO(slo.strip().lower(), 0.9)
        if not isinstance(slo, SLO):
            raise TuningError(
                f"slo must be an SLO or kind name, got {slo!r}")
        self.slo = slo
        self.controller = make_controller(controller)
        self.window = int(window)
        if self.window < 1:
            raise TuningError("autotuner window must be >= 1")
        if relax_floor is not None and not 0.0 <= relax_floor < 1.0:
            raise TuningError(
                f"relax_floor {relax_floor} outside [0, 1)")
        self.relax_floor = relax_floor
        #: current operating point; regions attached later inherit it.
        self.position = 0.0
        self.decisions: List[TuneDecision] = []
        self.windows = 0
        self.adjustments = 0
        self.tightenings = 0
        self.relaxations = 0
        self._regions: Dict[str, _RegionState] = {}
        # Run-global feedback accumulators (see module doc for why the
        # window is not per-region).
        self._samples = 0
        self._passes = 0
        self._completed = 0
        self._first_attach_ts: Optional[float] = None
        self._bus: Optional[Any] = None
        self._bound = False

    # ------------------------------------------------------ executor API

    @property
    def floor_position(self) -> float:
        return -1.0 if self.relax_floor is not None else 0.0

    def bind(self, bus: Optional[Any]) -> "ValveAutotuner":
        """Subscribe to an executor's bus.  Single-run: rebinding raises."""
        if self._bound:
            raise TuningError(
                "autotuners are single-run objects; build a fresh one per "
                "executor (spec strings re-build automatically)")
        self._bound = True
        self._bus = bus
        if bus is not None:
            bus.subscribe(self.on_event)
        return self

    def attach_region(self, region: Any) -> None:
        """Adopt a launched (finalized) region: collect its tunable
        start valves and apply the inherited position."""
        entries: List[_TunedValve] = []
        seen: set = set()
        for task in region.tasks:
            for valve in task.spec.start_valves:
                if id(valve) in seen:
                    continue
                seen.add(id(valve))
                tuned = _tuned_valve(valve, self.relax_floor)
                if tuned is not None:
                    entries.append(tuned)
        state = _RegionState(region.name, entries,
                             total_tasks=len(region.tasks))
        self._regions[region.name] = state
        if self._first_attach_ts is None:
            self._first_attach_ts = (
                self._bus.clock() if self._bus is not None else 0.0)
        if self.position != 0.0:
            # Inherit the operating point earlier regions reached.
            for entry in entries:
                entry.apply(self.position)
        if self._bus is not None:
            self._bus.emit("tune", region.name, "", "attach", data={
                "slo": self.slo.kind, "target": self.slo.target,
                "position": self.position, "valves": len(entries)})

    def on_event(self, event: Any) -> None:
        """Bus subscriber: fold feedback events into window samples."""
        if event.region not in self._regions:
            return
        if self.slo.kind == "accuracy_floor":
            if event.kind != "valve" or event.name != "end":
                return
            self._samples += 1
            if event.data.get("result"):
                self._passes += 1
            if self._samples >= self.window:
                metric = self._passes / self._samples
                self._passes = self._samples = 0
                self._decide(event.region, metric,
                             self.slo.target - metric, event.ts)
        else:  # latency_ceiling
            if event.kind != "transition" or event.name != "COMPLETE":
                return
            self._completed += 1
            self._samples += 1
            if self._samples >= self.window:
                self._samples = 0
                elapsed = event.ts - (self._first_attach_ts or 0.0)
                total = sum(state.total_tasks
                            for state in self._regions.values())
                if elapsed <= 0 or not total:
                    return
                projected = elapsed * total / self._completed
                error = (self.slo.target - projected) / self.slo.target
                error = max(-1.0, min(1.0, error))
                self._decide(event.region, projected, error, event.ts)

    # --------------------------------------------------------- decisions

    def _decide(self, region: str, metric: float, error: float,
                ts: float) -> None:
        self.windows += 1
        delta = self.controller.step(error, self.position)
        before = self.position
        after = max(self.floor_position, min(1.0, before + delta))
        if after == before:
            return
        self.position = after
        changed = 0
        for state in self._regions.values():
            for entry in state.entries:
                entry.apply(after)
                changed += 1
        self.adjustments += 1
        if after > before:
            self.tightenings += 1
        else:
            self.relaxations += 1
        self.decisions.append(TuneDecision(
            len(self.decisions), region, metric, error, before, after))
        if self._bus is not None:
            self._bus.emit("tune", region, "", "adjust", ts=ts, data={
                "slo": self.slo.kind, "target": self.slo.target,
                "metric": metric, "error": error,
                "before": before, "after": after, "valves": changed})

    # --------------------------------------------------------- reporting

    def describe(self) -> Dict[str, Any]:
        """Compact spec-shaped record for artifacts and CLIs."""
        return {"slo": self.slo.kind, "target": self.slo.target,
                "controller": self.controller.name, "window": self.window,
                "relax_floor": self.relax_floor}

    def snapshot(self) -> Dict[str, Any]:
        """End-of-run summary folded into the metrics
        (:meth:`repro.telemetry.Telemetry.record_autotuner`)."""
        return {"slo": self.slo.describe(),
                "controller": self.controller.describe(),
                "window": self.window, "relax_floor": self.relax_floor,
                "position": self.position, "windows": self.windows,
                "adjustments": self.adjustments,
                "tightenings": self.tightenings,
                "relaxations": self.relaxations}


# ------------------------------------------------------------ spec parsing


def _parse_options(text: str) -> Dict[str, str]:
    options: Dict[str, str] = {}
    for item in (token.strip() for token in text.split(",")):
        if not item:
            continue
        key, separator, value = item.partition("=")
        if not separator or not key.strip():
            raise TuningError(
                f"autotuner option {item!r} is not key=value")
        options[key.strip()] = value.strip()
    return options


def make_autotuner(spec: Any = None) -> Optional[ValveAutotuner]:
    """Build an autotuner from a spec.

    ``None`` passes through (autotuning off); a :class:`ValveAutotuner`
    instance passes through; a string declares the SLO with
    ``kind:key=value,...`` options::

        make_autotuner("accuracy_floor:target=0.9")
        make_autotuner("accuracy_floor:target=0.85,controller=hysteresis,"
                       "gain=0.8,window=4")
        make_autotuner("latency_ceiling:target=50000,relax_floor=0.1")

    Options ``target``, ``controller``, ``window`` and ``relax_floor``
    configure the tuner; any remaining options are forwarded to the
    named controller (``relax_step``/``backoff``/``deadband`` for aimd,
    ``gain``/``deadband``/``max_step``/``reversal`` for hysteresis).
    """
    if spec is None:
        return None
    if isinstance(spec, ValveAutotuner):
        return spec
    text = str(spec).strip()
    kind, _, option_text = text.partition(":")
    kind = kind.strip().lower()
    if kind not in SLO_KINDS:
        raise TuningError(
            f"unknown SLO kind {kind!r}; expected one of "
            + ", ".join(SLO_KINDS))
    options = _parse_options(option_text)
    target = (parse_float("target", options.pop("target"))
              if "target" in options else None)
    controller_name = options.pop("controller", None)
    window = (int(parse_float("window", options.pop("window")))
              if "window" in options else 8)
    relax_floor = (parse_float("relax_floor", options.pop("relax_floor"))
                   if "relax_floor" in options else None)
    controller_options = {}
    for key in controller_option_names(controller_name):
        if key in options:
            controller_options[key] = parse_float(key, options.pop(key))
    if options:
        raise TuningError(
            f"unknown autotuner option(s) {sorted(options)} in {text!r}")
    if kind == "accuracy_floor":
        slo = SLO.accuracy_floor(0.9 if target is None else target)
    else:
        if target is None:
            raise TuningError(
                "latency_ceiling needs an explicit target= makespan")
        slo = SLO.latency_ceiling(target)
    controller = make_controller(controller_name, **controller_options)
    return ValveAutotuner(slo, controller=controller, window=window,
                          relax_floor=relax_floor)
