"""Deprecated import path for the offline tuning helpers.

``repro.tuning`` used to be a single module holding the offline
bisection tuner; it is now a package (offline search, control laws,
and the online :class:`~repro.tuning.autotune.ValveAutotuner`).  Code
that imported ``repro.tuning.legacy`` keeps working through this shim,
but should move to ``repro.tuning`` (same names, no warning).
"""

from __future__ import annotations

import warnings

from .offline import ThresholdTuner  # noqa: F401
from .offline import TuningProbe  # noqa: F401
from .offline import TuningResult  # noqa: F401
from .offline import ValveSelector  # noqa: F401

warnings.warn(
    "repro.tuning.legacy is deprecated; import ThresholdTuner and "
    "friends from repro.tuning instead",
    DeprecationWarning, stacklevel=2)
