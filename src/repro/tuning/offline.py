"""Offline valve-threshold tuning (the paper's Section 4.4).

The paper leaves two auto-tuning mechanisms to future work:

1. *runtime modulation* — tighten thresholds toward full serialization
   after quality failures.  That part ships in the core as
   :class:`repro.core.guard.ModulationPolicy`, and the *closed-loop*
   generalization — an online controller steering thresholds against a
   declared SLO — lives next door in :mod:`repro.tuning.autotune`.
2. *offline auto-tuning* — "ML-based policies could be deployed to
   auto-tune both the types of valves and the thresholds ... safe to
   automate for task chains that end in user-specified quality
   functions".  This module implements that search.

:class:`ThresholdTuner` finds the smallest start-valve threshold whose
measured error stays within a budget.  Because a task's output quality
is monotone in how much of its input had been produced (a higher
threshold can only yield more precise input — the same argument as the
paper's "any effective threshold value between the specified value and
full serialization is valid"), the error-vs-threshold curve is
*approximately* monotone and a bisection converges quickly; the tuner
still verifies the returned operating point by direct measurement, so a
non-monotone pocket can cost extra probes but never an invalid result.

:class:`ValveSelector` additionally compares valve *types* (the paper's
Figure 8 axis) and returns the best latency among configurations that
meet the error budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..apps.base import FluidApp


@dataclass
class TuningProbe:
    """One measured operating point."""
    threshold: float
    valve: str
    normalized_latency: float
    error: float

    @property
    def feasible(self) -> bool:
        return self.error <= self._budget

    _budget: float = field(default=0.0, repr=False)


@dataclass
class TuningResult:
    """Outcome of a tuning run."""
    threshold: float
    valve: str
    normalized_latency: float
    error: float
    probes: List[TuningProbe]

    @property
    def num_probes(self) -> int:
        return len(self.probes)


class ThresholdTuner:
    """Bisection search for the cheapest threshold within an error budget.

    Parameters
    ----------
    error_budget:
        Maximum tolerated app error (0 = exact, 1 = worthless).
    resolution:
        Stop once the bracket is narrower than this.
    """

    def __init__(self, error_budget: float = 0.02,
                 resolution: float = 0.05,
                 low: float = 0.0, high: float = 1.0):
        if not 0.0 <= error_budget <= 1.0:
            raise ValueError("error budget must be within [0, 1]")
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.error_budget = error_budget
        self.resolution = resolution
        self.low = low
        self.high = high

    def probe(self, app: FluidApp, threshold: float,
              valve: str = "percent", **fluid_kwargs) -> TuningProbe:
        precise = app.run_precise()
        fluid = app.run_fluid(threshold=threshold, valve=valve,
                              **fluid_kwargs)
        return TuningProbe(threshold, valve,
                           fluid.makespan / precise.makespan,
                           fluid.error, _budget=self.error_budget)

    def tune(self, app: FluidApp, valve: str = "percent",
             **fluid_kwargs) -> TuningResult:
        """Return the lowest feasible threshold (and its latency)."""
        probes: List[TuningProbe] = []

        def measure(threshold: float) -> TuningProbe:
            probe = self.probe(app, threshold, valve, **fluid_kwargs)
            probes.append(probe)
            return probe

        high_probe = measure(self.high)
        if not high_probe.feasible:
            # Full serialization itself violates the budget only if the
            # budget is stricter than the app's intrinsic noise; report
            # the serialized point rather than failing.
            return TuningResult(self.high, valve,
                                high_probe.normalized_latency,
                                high_probe.error, probes)
        low_probe = measure(self.low)
        if low_probe.feasible:
            return TuningResult(self.low, valve,
                                low_probe.normalized_latency,
                                low_probe.error, probes)

        low, high = self.low, self.high
        best = high_probe
        best_threshold = self.high
        while high - low > self.resolution:
            mid = (low + high) / 2.0
            probe = measure(mid)
            if probe.feasible:
                high = mid
                if probe.normalized_latency <= best.normalized_latency:
                    best, best_threshold = probe, mid
            else:
                low = mid
        if not best.feasible:  # pragma: no cover - defensive
            best, best_threshold = high_probe, self.high
        return TuningResult(best_threshold, valve,
                            best.normalized_latency, best.error, probes)


class ValveSelector:
    """Pick the best (valve type, threshold) pair for an app.

    The paper's Figure 8 shows that the right valve type is
    application-specific; this selector tunes each candidate type and
    returns the fastest feasible configuration.
    """

    def __init__(self, tuner: Optional[ThresholdTuner] = None,
                 candidates: Sequence[str] = ("percent",)):
        self.tuner = tuner or ThresholdTuner()
        self.candidates = tuple(candidates)

    def select(self, app: FluidApp, **fluid_kwargs) -> TuningResult:
        results: List[TuningResult] = []
        for valve in self.candidates:
            results.append(self.tuner.tune(app, valve=valve,
                                           **fluid_kwargs))
        feasible = [r for r in results if r.error <= self.tuner.error_budget]
        pool = feasible or results
        return min(pool, key=lambda r: r.normalized_latency)
