"""Valve tuning: offline threshold search and online SLO autotuning.

Two generations of the paper's "future work" auto-tuning live here:

* :mod:`repro.tuning.offline` — the original bisection search for the
  cheapest feasible static threshold (:class:`ThresholdTuner`,
  :class:`ValveSelector`).  Re-exported at the package root so historic
  ``from repro.tuning import ThresholdTuner`` imports keep working.
* :mod:`repro.tuning.autotune` + :mod:`repro.tuning.controllers` — the
  closed-loop :class:`ValveAutotuner`, which steers start-valve
  thresholds at runtime against a declared :class:`SLO` using a
  pluggable control law (:func:`make_controller`).

Executors accept ``autotune=`` specs via :func:`make_autotuner`;
misconfiguration raises :class:`~repro.core.errors.TuningError`.
"""

from ..core.errors import TuningError
from .autotune import (SLO, SLO_KINDS, TuneDecision, ValveAutotuner,
                       make_autotuner)
from .controllers import (CONTROLLER_NAMES, CONTROLLERS, AimdController,
                          Controller, HysteresisController, make_controller)
from .offline import ThresholdTuner, TuningProbe, TuningResult, ValveSelector

__all__ = [
    "SLO",
    "SLO_KINDS",
    "TuneDecision",
    "ValveAutotuner",
    "make_autotuner",
    "Controller",
    "AimdController",
    "HysteresisController",
    "CONTROLLERS",
    "CONTROLLER_NAMES",
    "make_controller",
    "ThresholdTuner",
    "TuningProbe",
    "TuningResult",
    "ValveSelector",
    "TuningError",
]
