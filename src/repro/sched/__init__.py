"""Pluggable task scheduling for the Fluid runtime.

``repro.sched`` generalizes the paper's fixed FCFS region/task ordering
(Section 6.2) into a policy seam shared by all three backends and the
SchedLab exploration harness, plus a cluster-scale capacity simulator:

:mod:`repro.sched.schedulers`
    The :class:`Scheduler` interface and the concrete disciplines
    (FCFS, priority, EDF, shortest-expected-work, work-stealing,
    bounded queues with load shedding).
:mod:`repro.sched.capacity`
    ``python -m repro.sched.capacity`` — sweeps cores x arrival rate x
    scheduler over large synthetic open-arrival workloads and emits
    throughput and p50/p95/p99 latency curves in the bench-baseline
    schema.

See ``docs/schedulers.md`` for the interface contract, the policy
catalogue and how to read capacity curves.
"""

from .schedulers import (BoundedScheduler, EdfScheduler, FcfsScheduler,
                         PriorityScheduler, Scheduler, SCHEDULER_NAMES,
                         SCHEDULERS, ShortestWorkScheduler,
                         WorkStealingScheduler, make_scheduler)

__all__ = [
    "Scheduler",
    "FcfsScheduler",
    "PriorityScheduler",
    "EdfScheduler",
    "ShortestWorkScheduler",
    "WorkStealingScheduler",
    "BoundedScheduler",
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "make_scheduler",
]
