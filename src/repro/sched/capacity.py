"""Cluster-scale capacity simulation for the scheduler catalogue.

``python -m repro.sched.capacity`` sweeps cores x arrival rate x
scheduler over large synthetic open-arrival regions (10^5-10^6 tasks)
and reports throughput and sojourn-latency percentiles per
configuration — the "how far does each discipline scale" companion to
the per-app benchmarks in :mod:`repro.bench`.

The model is a discrete-event M/G/c queue driven through the *real*
:class:`repro.sched.Scheduler` objects: tasks arrive on a Poisson
process (rate ``--rates`` x cores, i.e. offered load per core), carry
exponential service demands plus the scheduling hints the keyed
disciplines read (priority, absolute deadline, cost estimate), and are
submitted ``sheddable=True`` so bounded queues genuinely reject under
overload instead of parking (see
:class:`repro.sched.BoundedScheduler`).  Every dispatch goes through
``submit``/``pick``, so pick counts, steal counts, shed counts and the
queue-residence histogram are the same instrumentation the runtime
backends publish.

Results are written in the ``repro-bench-baseline/1`` schema
(:mod:`repro.bench.baseline`), one workload per
``<scheduler>/cores<C>/rate<R>`` cell, so the existing baseline tooling
can load and diff capacity curves.  Same seed, same curve: the task
stream for a given (cores, rate, seed) cell is identical across
schedulers, and the whole sweep is deterministic.

See ``docs/schedulers.md`` ("Reading capacity curves") for how to
interpret the output.
"""

from __future__ import annotations

import argparse
import heapq
import json
import random
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from ..core.errors import SchedulerError
from .schedulers import SCHEDULER_NAMES, make_scheduler

#: Mean service demand in virtual seconds; rates are offered load per
#: core relative to this (rate 1.0 = saturation).
MEAN_SERVICE = 1.0


class SynthTask:
    """One synthetic task: its own spec (duck-typed for repro.sched).

    Carries the hint attributes the keyed disciplines read directly —
    there is no ``.spec`` indirection, which
    :func:`repro.sched.schedulers._spec` handles by treating the task as
    its own attribute carrier.
    """

    __slots__ = ("name", "arrival", "service", "priority", "deadline",
                 "cost_estimate", "started", "finished")

    def __init__(self, name: str, arrival: float, service: float,
                 priority: float, deadline: float, cost_estimate: float):
        self.name = name
        self.arrival = arrival
        self.service = service
        self.priority = priority
        self.deadline = deadline
        self.cost_estimate = cost_estimate
        self.started: Optional[float] = None
        self.finished: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SynthTask({self.name}, arrival={self.arrival:.3f})"


def synthesize(tasks: int, cores: int, rate: float,
               seed: int) -> List[SynthTask]:
    """Generate one deterministic open-arrival task stream.

    The stream depends on (tasks, cores, rate, seed) only — notably
    *not* on the scheduler — so every discipline in a sweep faces the
    identical workload and the curves are directly comparable.
    """
    rng = random.Random(f"capacity:{seed}:{tasks}:{cores}:{rate!r}")
    arrival_rate = rate * cores / MEAN_SERVICE
    stream: List[SynthTask] = []
    now = 0.0
    for index in range(tasks):
        now += rng.expovariate(arrival_rate)
        service = rng.expovariate(1.0 / MEAN_SERVICE)
        stream.append(SynthTask(
            name=f"t{index}",
            arrival=now,
            service=service,
            priority=rng.random(),
            deadline=now + service * rng.uniform(2.0, 10.0),
            cost_estimate=service))
    return stream


def simulate(stream: Sequence[SynthTask], scheduler: Any,
             cores: int) -> Dict[str, Any]:
    """Run one configuration cell and return its workload record."""
    heap: List[tuple] = []
    for sequence, task in enumerate(stream):
        heap.append((task.arrival, sequence, "arrive", task, -1))
    heapq.heapify(heap)
    sequence = len(stream)
    free: List[int] = list(range(cores))
    completed: List[SynthTask] = []
    shed = 0
    now = 0.0
    while heap:
        now, _, kind, task, core = heapq.heappop(heap)
        if kind == "arrive":
            if not scheduler.submit(task, now=now, sheddable=True):
                shed += 1
        else:
            task.finished = now
            completed.append(task)
            free.append(core)
        while free and scheduler.pending():
            picked = scheduler.pick(now=now, worker=free[-1])
            if picked is None:
                break
            slot = free.pop()
            picked.started = now
            heapq.heappush(
                heap, (now + picked.service, sequence, "finish", picked, slot))
            sequence += 1
    makespan = now
    sojourns = sorted(task.finished - task.arrival for task in completed)
    counters = scheduler.counters()
    record = {
        "tasks_offered": len(stream),
        "tasks_completed": len(completed),
        "tasks_shed": shed,
        "makespan": makespan,
        "throughput": (len(completed) / makespan) if makespan > 0 else 0.0,
        "latency_p50": _percentile(sojourns, 0.50),
        "latency_p95": _percentile(sojourns, 0.95),
        "latency_p99": _percentile(sojourns, 0.99),
        "deadline_misses": sum(
            1 for task in completed if task.finished > task.deadline),
        "picks": counters["picks"],
        "steals": counters["steals"],
    }
    assert len(completed) + shed == len(stream), \
        "capacity accounting: every offered task completes or is shed"
    assert counters["sheds"] == shed, \
        "scheduler shed counter disagrees with the driver's count"
    return record


def _percentile(sorted_values: List[float], quantile: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(quantile * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_sweep(tasks: int, schedulers: Sequence[str], cores: Sequence[int],
              rates: Sequence[float], seed: int,
              queue_capacity: Optional[int] = None,
              telemetry: Optional[Any] = None,
              progress=None) -> Dict[str, Dict[str, Any]]:
    """The full sweep: one workload record per scheduler/cores/rate cell."""
    workloads: Dict[str, Dict[str, Any]] = {}
    for spec in schedulers:
        for core_count in cores:
            for rate in rates:
                effective = spec
                if queue_capacity is not None and \
                        not str(spec).startswith("bounded"):
                    effective = f"bounded:capacity={queue_capacity},inner={spec}"
                scheduler = make_scheduler(effective).bind(
                    bus=telemetry.bus if telemetry is not None else None,
                    point="core", workers=core_count)
                stream = synthesize(tasks, core_count, rate, seed)
                record = simulate(stream, scheduler, core_count)
                record["scheduler"] = scheduler.describe()
                if telemetry is not None:
                    telemetry.record_scheduler(scheduler)
                key = f"{spec}/cores{core_count}/rate{rate:g}"
                workloads[key] = record
                if progress is not None:
                    progress(key, record)
    return workloads


def check_monotone(workloads: Dict[str, Dict[str, Any]],
                   schedulers: Sequence[str], cores: Sequence[int],
                   rates: Sequence[float],
                   tolerance: float = 0.02) -> List[str]:
    """Sanity property: FCFS throughput must not shrink as cores grow.

    Offered load scales with cores (rates are per-core), so for the
    work-conserving FCFS discipline each added core must carry its
    share; a drop beyond ``tolerance`` signals a scheduler or driver
    bug.  Returns human-readable violation strings (empty = pass).
    """
    violations: List[str] = []
    if "fcfs" not in schedulers:
        return violations
    ordered_cores = sorted(cores)
    for rate in rates:
        previous = None
        for core_count in ordered_cores:
            record = workloads.get(f"fcfs/cores{core_count}/rate{rate:g}")
            if record is None:
                continue
            current = record["throughput"]
            if previous is not None and current < previous * (1 - tolerance):
                violations.append(
                    f"fcfs rate={rate:g}: throughput fell from "
                    f"{previous:.3f} ({previous_cores} cores) to "
                    f"{current:.3f} ({core_count} cores)")
            previous, previous_cores = current, core_count
    return violations


def capacity_document(workloads: Dict[str, Dict[str, Any]], *,
                      tasks: int, seed: int, schedulers: Sequence[str],
                      cores: Sequence[int], rates: Sequence[float],
                      queue_capacity: Optional[int]) -> Dict[str, Any]:
    """Wrap a sweep in the ``repro-bench-baseline/1`` envelope."""
    from ..bench.baseline import SCHEMA, current_rev

    return {
        "schema": SCHEMA,
        "rev": current_rev(),
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "backend": "capacity",
            "quick": tasks <= 10_000,
            "app": None,
            "tasks": tasks,
            "seed": seed,
            "schedulers": list(schedulers),
            "cores": list(cores),
            "rates": list(rates),
            "queue_capacity": queue_capacity,
        },
        "workloads": workloads,
    }


def _parse_list(text: str, kind, what: str) -> list:
    try:
        values = [kind(token) for token in text.split(",") if token.strip()]
    except ValueError:
        raise SystemExit(f"capacity: bad {what} list {text!r}")
    if not values:
        raise SystemExit(f"capacity: empty {what} list")
    return values


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sched.capacity",
        description="Sweep schedulers x cores x arrival rate over large "
                    "synthetic open-arrival regions.")
    parser.add_argument("--tasks", type=int, default=100_000,
                        help="tasks per sweep cell (default 100000)")
    parser.add_argument("--schedulers", default="fcfs,edf",
                        help="comma-separated scheduler specs "
                        f"(catalogue: {', '.join(SCHEDULER_NAMES)})")
    parser.add_argument("--cores", default="1,4,16",
                        help="comma-separated core counts (default 1,4,16)")
    parser.add_argument("--rates", default="0.8,1.2",
                        help="offered load per core, comma-separated "
                        "(1.0 = saturation; default 0.8,1.2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--queue-capacity", type=int, default=None,
                        help="wrap each scheduler in bounded admission "
                        "with this capacity (tasks beyond it are shed)")
    parser.add_argument("--out", default=None,
                        help="write the sweep as a repro-bench-baseline/1 "
                        "JSON document")
    parser.add_argument("--metrics-out", default=None,
                        help="also dump aggregated sched.* metrics "
                        "(repro.telemetry metrics schema)")
    parser.add_argument("--assert-monotone", action="store_true",
                        help="fail unless FCFS throughput is non-decreasing "
                        "in cores at every rate (2%% tolerance)")
    args = parser.parse_args(argv)

    if args.tasks < 1:
        parser.error("--tasks must be >= 1")
    schedulers = _parse_list(args.schedulers, str, "scheduler")
    cores = _parse_list(args.cores, int, "cores")
    rates = _parse_list(args.rates, float, "rate")
    for spec in schedulers:
        try:
            make_scheduler(spec)  # validate specs before the expensive sweep
        except SchedulerError as error:
            parser.error(str(error))
    if any(count < 1 for count in cores):
        parser.error("--cores entries must be >= 1")
    if any(rate <= 0 for rate in rates):
        parser.error("--rates entries must be > 0")

    telemetry = None
    if args.metrics_out is not None:
        from ..telemetry import Telemetry

        telemetry = Telemetry(chrome=False)

    def progress(key: str, record: Dict[str, Any]) -> None:
        print(f"  {key}: throughput={record['throughput']:.3f} "
              f"p50={record['latency_p50']:.3f} "
              f"p95={record['latency_p95']:.3f} "
              f"p99={record['latency_p99']:.3f} "
              f"shed={record['tasks_shed']}")

    cells = len(schedulers) * len(cores) * len(rates)
    print(f"capacity sweep: {args.tasks} tasks x {cells} cells "
          f"(seed {args.seed})")
    workloads = run_sweep(
        args.tasks, schedulers, cores, rates, args.seed,
        queue_capacity=args.queue_capacity, telemetry=telemetry,
        progress=progress)

    if args.out is not None:
        document = capacity_document(
            workloads, tasks=args.tasks, seed=args.seed,
            schedulers=schedulers, cores=cores, rates=rates,
            queue_capacity=args.queue_capacity)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if telemetry is not None:
        telemetry.run_finished(0.0, max(cores))
        telemetry.write(metrics_out=args.metrics_out)
        print(f"wrote {args.metrics_out}")

    if args.assert_monotone:
        violations = check_monotone(workloads, schedulers, cores, rates)
        if violations:
            for violation in violations:
                print(f"MONOTONICITY VIOLATION: {violation}",
                      file=sys.stderr)
            return 1
        print("monotonicity check: PASS "
              "(fcfs throughput non-decreasing in cores)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
