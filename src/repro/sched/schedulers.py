"""Pluggable ready-queue schedulers for the Fluid runtime.

The paper runs regions and ready tasks first-come-first-serve
(Section 6.2).  This module generalizes that fixed discipline into a
:class:`Scheduler` seam — ready-queue admission (:meth:`Scheduler.submit`),
pick-next (:meth:`Scheduler.pick`) and shed/reject hooks — threaded
through all three backends (simulator core allocation, thread-backend
body slots, process-backend worker dispatch) and the capacity simulator
(:mod:`repro.sched.capacity`).

Policy catalogue
----------------

``fcfs``
    First-come-first-serve, the paper-faithful default.  Bit-for-bit
    identical to the pre-scheduler runtime, including how a SchedLab
    :class:`~repro.schedlab.policy.SchedulePolicy` tie-breaks the queue.
``priority``
    Highest ``TaskSpec.priority`` first, FIFO among equals.
``edf``
    Earliest ``TaskSpec.deadline`` first; tasks without deadlines run
    after every deadlined task.
``sew`` (alias ``shortest-work``)
    Smallest ``TaskSpec.cost_estimate`` first — shortest-expected-work,
    a quality/latency knob in the spirit of significance-aware runtimes.
``work-stealing``
    Per-worker deques with round-robin admission; an idle worker steals
    from the longest victim queue (steals are counted and published).
``bounded``
    Admission control around an inner scheduler: at most ``capacity``
    tasks queue; overflow is *shed* (rejected, counted, published as a
    ``sched``/``shed`` telemetry event) for sheddable submissions and
    *parked* for must-run ones — the runtime's guard protocol cannot
    lose a run request without deadlocking its region, so executor
    submissions are never dropped, only deferred.

Composition with SchedLab
-------------------------

A bound :class:`~repro.schedlab.policy.SchedulePolicy` resolves exactly
the nondeterminism each discipline leaves open: FCFS consults
``policy.choose(point, names)`` over the whole queue (the historical
executor behaviour, which is what keeps the golden structural traces
stable), while the keyed disciplines consult it only among equal-key
candidates.  Exploration therefore perturbs scheduling freedom, never
the discipline itself.

Schedulers are single-run objects, like executors: counters and queue
state accumulate until the run ends and
:meth:`repro.telemetry.Telemetry.record_scheduler` folds them into the
``sched.*`` metrics.  Pass scheduler *names* (not instances) to
harnesses that execute many runs.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..core.errors import SchedulerError
from ..telemetry.metrics import Histogram, RESIDENCE_BOUNDS

__all__ = [
    "Scheduler",
    "FcfsScheduler",
    "PriorityScheduler",
    "EdfScheduler",
    "ShortestWorkScheduler",
    "WorkStealingScheduler",
    "BoundedScheduler",
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "make_scheduler",
]


def _spec(task: Any) -> Any:
    """The attribute carrier: ``task.spec`` for FluidTask, else the task
    itself (the capacity simulator's synthetic tasks are their own spec)."""
    spec = getattr(task, "spec", None)
    return spec if spec is not None else task


def task_priority(task: Any) -> float:
    value = getattr(_spec(task), "priority", 0.0)
    return 0.0 if value is None else float(value)


def task_deadline(task: Any) -> float:
    """Absolute deadline; tasks without one sort after all deadlines."""
    value = getattr(_spec(task), "deadline", None)
    return math.inf if value is None else float(value)


def task_cost_estimate(task: Any) -> float:
    """Expected work; tasks without an estimate sort last."""
    value = getattr(_spec(task), "cost_estimate", None)
    return math.inf if value is None else float(value)


def _label(task: Any) -> str:
    name = getattr(task, "name", None)
    return name if name else str(task)


class Scheduler:
    """Ready-queue admission and pick-next for one executor run.

    Lifecycle: the host calls :meth:`bind` once at run start (wiring the
    SchedLab policy, the telemetry bus, the policy *point* name used for
    choose calls, and the worker count), then :meth:`submit` whenever a
    task becomes runnable and :meth:`pick` whenever a core / body slot /
    worker frees up.  ``worker`` hints identify which worker is asking
    (the simulator passes core ids, the process backend slot ids); only
    worker-aware disciplines use them.

    Subclasses implement ``_admit`` / ``_select`` / ``pending``; the
    base class owns the decision counters and the queue-residence
    histogram that :meth:`snapshot` exposes to telemetry.
    """

    name = "scheduler"

    def __init__(self):
        self.picks = 0
        self.steals = 0
        self.sheds = 0
        self.deferrals = 0
        self.residence = Histogram(RESIDENCE_BOUNDS)
        self._policy: Optional[Any] = None
        self._bus: Optional[Any] = None
        self._point = "core"
        self._workers = 1
        self._enqueued_at: Dict[int, float] = {}

    # -- host wiring -------------------------------------------------------

    def bind(self, *, policy: Optional[Any] = None, bus: Optional[Any] = None,
             point: str = "core", workers: Optional[int] = None) -> "Scheduler":
        """Wire the scheduler to its host executor (idempotent)."""
        self._policy = policy
        self._bus = bus
        self._point = point
        if workers:
            self._workers = int(workers)
        return self

    # -- queue discipline (subclasses override) ----------------------------

    def _admit(self, task: Any, *, now: float, sheddable: bool) -> bool:
        raise NotImplementedError

    def _select(self, *, now: float, worker: Optional[int]) -> Optional[Any]:
        raise NotImplementedError

    def pending(self) -> int:
        """Tasks currently queued (including any parked overflow)."""
        raise NotImplementedError

    # -- host-facing protocol ----------------------------------------------

    def submit(self, task: Any, *, now: float = 0.0,
               sheddable: bool = False) -> bool:
        """Admit a runnable task; False means it was shed (dropped).

        ``sheddable=False`` (what the region executors pass) guarantees
        acceptance — a guard-requested run must eventually happen or its
        region deadlocks; ``sheddable=True`` (open-arrival capacity
        experiments) lets bounded queues reject under load.
        """
        if self._admit(task, now=now, sheddable=sheddable):
            self._enqueued_at[id(task)] = now
            return True
        return False

    def pick(self, *, now: float = 0.0,
             worker: Optional[int] = None) -> Optional[Any]:
        """Next task for a freed worker, or None if nothing is queued."""
        task = self._select(now=now, worker=worker)
        if task is None:
            return None
        self.picks += 1
        entered = self._enqueued_at.pop(id(task), None)
        if entered is not None:
            self.residence.observe(max(0.0, now - entered))
        return task

    # -- introspection -----------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {"picks": self.picks, "steals": self.steals,
                "sheds": self.sheds, "deferrals": self.deferrals}

    def snapshot(self) -> Dict[str, Any]:
        """End-of-run record for ``Telemetry.record_scheduler``."""
        record = {"scheduler": self.name,
                  "residence": self.residence.to_dict()}
        record.update(self.counters())
        return record

    def describe(self) -> Dict[str, Any]:
        return {"scheduler": self.name}

    # -- helpers for subclasses --------------------------------------------

    def _break_tie(self, queue: List[Any], ties: List[int]) -> int:
        """Queue index to pick among equal-key candidates: FIFO, or the
        SchedLab policy's choice when more than one candidate ties."""
        if self._policy is not None and len(ties) > 1:
            chosen = self._policy.choose(
                self._point, [_label(queue[i]) for i in ties])
            return ties[chosen]
        return ties[0]

    def _emit(self, name: str, task: Any, data: Dict[str, Any],
              ts: Optional[float] = None) -> None:
        if self._bus is None:
            return
        region = getattr(getattr(task, "region", None), "name", "") or ""
        self._bus.emit("sched", region, _label(task), name, ts=ts, data=data)


class FcfsScheduler(Scheduler):
    """First-come-first-serve — the paper-faithful default (Section 6.2).

    With a SchedLab policy bound, the pick consults
    ``policy.choose(point, [task names...])`` over the *whole* queue —
    exactly what the executors did before this subsystem existed, so the
    golden structural traces are reproduced bit-for-bit.
    """

    name = "fcfs"

    def __init__(self):
        super().__init__()
        self._queue: Deque[Any] = deque()

    def _admit(self, task, *, now, sheddable):
        self._queue.append(task)
        return True

    def _select(self, *, now, worker):
        if not self._queue:
            return None
        if self._policy is not None and len(self._queue) > 1:
            index = self._policy.choose(
                self._point, [_label(task) for task in self._queue])
            task = self._queue[index]
            del self._queue[index]
            return task
        return self._queue.popleft()

    def pending(self):
        return len(self._queue)


class _KeyedScheduler(Scheduler):
    """Minimum-key discipline, FIFO among ties.

    Keys (priority / deadline / cost estimate) are static task
    attributes, so they are evaluated once at admission and the queue is
    a binary heap — O(log n) per operation, which is what lets the
    capacity simulator push 10^5-10^6 tasks through an overloaded queue.
    With a SchedLab policy bound (runs are small there), a linear scan
    is used instead so the policy can choose among equal-key candidates.
    """

    def __init__(self):
        super().__init__()
        self._queue: List[Any] = []        # policy-bound mode (linear)
        self._heap: List[tuple] = []       # default mode (heap)
        self._admitted = 0                 # FIFO tie-break sequence

    def _key(self, task: Any, now: float) -> float:
        raise NotImplementedError

    def _admit(self, task, *, now, sheddable):
        if self._policy is not None:
            self._queue.append(task)
        else:
            heapq.heappush(
                self._heap, (self._key(task, now), self._admitted, task))
            self._admitted += 1
        return True

    def _select(self, *, now, worker):
        if self._policy is not None:
            if not self._queue:
                return None
            keys = [self._key(task, now) for task in self._queue]
            best = min(keys)
            ties = [i for i, key in enumerate(keys) if key == best]
            return self._queue.pop(self._break_tie(self._queue, ties))
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def pending(self):
        return len(self._queue) + len(self._heap)


class PriorityScheduler(_KeyedScheduler):
    """Highest ``TaskSpec.priority`` first (default priority 0.0)."""

    name = "priority"

    def _key(self, task, now):
        return -task_priority(task)


class EdfScheduler(_KeyedScheduler):
    """Earliest-deadline-first over ``TaskSpec.deadline``."""

    name = "edf"

    def _key(self, task, now):
        return task_deadline(task)


class ShortestWorkScheduler(_KeyedScheduler):
    """Shortest-expected-work first over ``TaskSpec.cost_estimate``."""

    name = "sew"

    def _key(self, task, now):
        return task_cost_estimate(task)


class WorkStealingScheduler(Scheduler):
    """Per-worker deques with round-robin admission and idle stealing.

    A worker with an empty home deque steals from the longest victim
    (lowest index among equals); each steal increments
    :attr:`Scheduler.steals` and publishes a ``sched``/``steal`` event.
    Hosts without worker identity (the thread backend's body slots)
    drain the deques in index order without counting steals.
    """

    name = "work-stealing"

    def __init__(self, workers: Optional[int] = None):
        super().__init__()
        if workers is not None and workers < 1:
            raise SchedulerError("work-stealing needs at least one worker")
        self._configured = workers
        self._queues: List[Deque[Any]] = [deque()]
        self._next = 0

    def bind(self, **kwargs):
        super().bind(**kwargs)
        count = int(self._configured or self._workers or 1)
        self._queues = [deque() for _ in range(max(1, count))]
        self._next = 0
        return self

    def _admit(self, task, *, now, sheddable):
        self._queues[self._next % len(self._queues)].append(task)
        self._next += 1
        return True

    def _select(self, *, now, worker):
        queues = self._queues
        if isinstance(worker, int) and 0 <= worker < len(queues):
            if queues[worker]:
                return queues[worker].popleft()
            victim = max(range(len(queues)), key=lambda i: len(queues[i]))
            if not queues[victim]:
                return None
            task = queues[victim].popleft()
            self.steals += 1
            self._emit("steal", task, {"victim": victim, "thief": worker},
                       ts=now)
            return task
        for queue in queues:
            if queue:
                return queue.popleft()
        return None

    def pending(self):
        return sum(len(queue) for queue in self._queues)

    def describe(self):
        return {"scheduler": self.name, "queues": len(self._queues)}


class BoundedScheduler(Scheduler):
    """Admission control around an inner scheduler.

    At most ``capacity`` tasks queue in ``inner``.  An overflowing
    submit is **shed** — rejected with a ``sched``/``shed`` telemetry
    event and a ``sheds`` counter bump, never silently dropped — when
    the caller marked the task sheddable, and **parked** in a FIFO
    overflow buffer otherwise: region executors may not lose a
    guard-requested run (the region would deadlock), so their overflow
    is deferred (counted, published as ``sched``/``defer``) and promoted
    into the inner queue as soon as it drains below capacity.
    """

    name = "bounded"

    def __init__(self, inner: Optional[Scheduler] = None, capacity: int = 64):
        super().__init__()
        if capacity < 1:
            raise SchedulerError(
                f"bounded scheduler needs capacity >= 1, got {capacity}")
        self.inner = inner if inner is not None else FcfsScheduler()
        self.capacity = int(capacity)
        self._overflow: Deque[Any] = deque()
        self._parked_at: Dict[int, float] = {}

    def bind(self, **kwargs):
        super().bind(**kwargs)
        self.inner.bind(**kwargs)
        return self

    def submit(self, task, *, now=0.0, sheddable=False):
        if self.inner.pending() >= self.capacity:
            if sheddable:
                self.sheds += 1
                self._emit("shed", task,
                           {"capacity": self.capacity,
                            "queued": self.inner.pending()}, ts=now)
                return False
            self.deferrals += 1
            self._parked_at[id(task)] = now
            self._overflow.append(task)
            self._emit("defer", task, {"capacity": self.capacity}, ts=now)
            return True
        return self.inner.submit(task, now=now, sheddable=sheddable)

    def pick(self, *, now=0.0, worker=None):
        # Promote parked tasks first so a drained inner queue can never
        # starve the overflow; residence is measured from park time.
        while self._overflow and self.inner.pending() < self.capacity:
            parked = self._overflow.popleft()
            self.inner.submit(parked,
                              now=self._parked_at.pop(id(parked), now))
        return self.inner.pick(now=now, worker=worker)

    def pending(self):
        return self.inner.pending() + len(self._overflow)

    def counters(self):
        inner = self.inner.counters()
        return {"picks": inner["picks"], "steals": inner["steals"],
                "sheds": self.sheds + inner["sheds"],
                "deferrals": self.deferrals + inner["deferrals"]}

    def snapshot(self):
        record = {"scheduler": self.name, "capacity": self.capacity,
                  "inner": self.inner.name,
                  "residence": self.inner.residence.to_dict()}
        record.update(self.counters())
        return record

    def describe(self):
        return {"scheduler": self.name, "capacity": self.capacity,
                "inner": self.inner.describe()}


#: Name -> class, for :func:`make_scheduler` and the CLI surfaces.
SCHEDULERS = {
    "fcfs": FcfsScheduler,
    "priority": PriorityScheduler,
    "edf": EdfScheduler,
    "sew": ShortestWorkScheduler,
    "shortest-work": ShortestWorkScheduler,
    "work-stealing": WorkStealingScheduler,
    "bounded": BoundedScheduler,
}

#: Canonical names (aliases folded), for help strings.
SCHEDULER_NAMES = ("fcfs", "priority", "edf", "sew", "work-stealing",
                   "bounded")


def _parse_options(text: str) -> Dict[str, str]:
    options: Dict[str, str] = {}
    for item in (token.strip() for token in text.split(",")):
        if not item:
            continue
        key, separator, value = item.partition("=")
        if not separator or not key.strip():
            raise SchedulerError(
                f"scheduler option {item!r} is not key=value")
        options[key.strip()] = value.strip()
    return options


def make_scheduler(spec: Any = None) -> Scheduler:
    """Build a scheduler from a spec.

    ``None`` gives a fresh FCFS (the default discipline); a
    :class:`Scheduler` instance passes through; a string names a
    discipline with optional ``name:key=value,...`` options::

        make_scheduler("edf")
        make_scheduler("work-stealing:workers=4")
        make_scheduler("bounded:capacity=8,inner=edf")
    """
    if spec is None:
        return FcfsScheduler()
    if isinstance(spec, Scheduler):
        return spec
    text = str(spec).strip()
    name, _, option_text = text.partition(":")
    name = name.strip().lower()
    if name not in SCHEDULERS:
        raise SchedulerError(
            f"unknown scheduler {name!r}; expected one of "
            + ", ".join(SCHEDULER_NAMES))
    options = _parse_options(option_text)
    try:
        if name == "bounded":
            inner = make_scheduler(options.pop("inner", "fcfs"))
            capacity = int(options.pop("capacity", 64))
            if options:
                raise SchedulerError(
                    f"bounded scheduler got unknown options "
                    f"{sorted(options)}")
            return BoundedScheduler(inner, capacity)
        if name == "work-stealing":
            workers = options.pop("workers", None)
            if options:
                raise SchedulerError(
                    f"work-stealing scheduler got unknown options "
                    f"{sorted(options)}")
            return WorkStealingScheduler(
                int(workers) if workers is not None else None)
    except ValueError as error:
        raise SchedulerError(
            f"bad option value in scheduler spec {text!r}: {error}") from None
    if options:
        raise SchedulerError(
            f"scheduler {name!r} takes no options (got {sorted(options)})")
    return SCHEDULERS[name]()
