"""Streaming pipelines: chained Fluid regions over staleness-relaxed queues.

A :class:`Pipeline` turns an unbounded item stream into a sequence of
*windows*; each window becomes one Fluid region in which a paced source
task feeds stage tasks linked by :class:`~repro.stream.queue.StageQueue`
edges.  The relaxation contract per edge is "consume input no staler
than k":

* a stage's **start valves** are a
  :class:`~repro.core.valves.StalenessValve` on the input queue's
  settled count — the stage may begin once at most ``k`` of the
  window's items are outstanding (``k = 0`` degrades to stage-serial
  precise execution) — plus a must-deliver predicate, so no stage ever
  consumes before every must item is in (sheddable stragglers beyond
  the bound are the accuracy currency);
* the **leaf stage** re-checks the same contract as its end valves
  (the region shape rules reserve quality functions for leaves), so a
  leaf whose body finished while a must item was still in flight parks
  in ``WAITING`` and the guard machinery re-runs it when the
  producer's next slot write lands — the paper's quality-failure/rerun
  loop driving a recompute-on-fresher-input streaming model that works
  identically on all three backends (crucially, without mid-run update
  streaming, which the process backend does not have).

Stage state (for stateful fold stages like EMA aggregation) chains
*between* windows through region outputs, and is cloned from the
window-initial value on every (re)run so re-execution stays idempotent.

Backends: ``sim`` builds one deterministic
:class:`~repro.runtime.SimExecutor` per window (virtual arrival pacing,
per-item latency curves); ``thread`` reuses one
:class:`~repro.runtime.thread_pool.SharedThreadPool` across windows
with a fresh :class:`~repro.runtime.context.RunContext` each — the
PR-7 sustained-load path; ``process`` builds a
:class:`~repro.runtime.ProcessExecutor` per window.  A window can also
be submitted through :class:`repro.service.FluidService`
(:meth:`Pipeline.run_service`) for admission-controlled streaming.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterable, List, NamedTuple, Optional

from ..core.errors import FluidError
from ..core.region import FluidRegion
from ..core.valves import PredicateValve, StalenessValve
from .queue import StageQueue

StageFn = Callable[[Any, int, Any], "tuple[Any, Any]"]


class Stage(NamedTuple):
    """One pipeline stage: ``fn(state, seq, value) -> (state, out)``.

    ``fn`` must be a pure fold step over items in seq order: it is
    re-invoked from the window-initial ``state`` on every re-execution,
    and on the process backend it runs in a forked worker, so it must
    be a module-level (fork-safe) callable that does not mutate
    ``value`` in place.  ``cost`` is the per-item virtual cost yielded
    on the sim backend (ignored by the wall-clock backends, where
    yields are only preemption points).
    """

    name: str
    fn: StageFn
    cost: float = 1.0
    state0: Any = None


class WindowReport(NamedTuple):
    """Per-window outcome folded into a :class:`PipelineResult`."""

    index: int
    makespan: float
    drops: int
    parks: int
    stale_reads: int
    max_displacement: int
    end_verdicts: Dict[str, bool]


class PipelineResult:
    """Everything one :meth:`Pipeline.run` produced.

    ``outputs`` maps *global* seq -> final-stage output for every item
    that survived to the last queue; at ``k = 0`` it is total and equal
    to :meth:`Pipeline.run_serial`'s.  ``latencies`` maps global seq ->
    source-to-final-queue latency (virtual time on sim, wall seconds on
    the thread backend; unavailable on process, where stage bodies run
    in workers whose telemetry bus is a fork).
    """

    def __init__(self, total_items: int):
        self.total_items = total_items
        self.outputs: Dict[int, Any] = {}
        self.latencies: Dict[int, float] = {}
        self.windows: List[WindowReport] = []
        self.states: List[Any] = []
        # Runtime-efficiency counters summed over the window regions
        # (same trio the bench baselines guard across revisions).
        self.valve_checks = 0
        self.valve_checks_skipped = 0
        self.reexecutions = 0

    @property
    def delivered(self) -> int:
        return len(self.outputs)

    @property
    def drops(self) -> int:
        return sum(w.drops for w in self.windows)

    @property
    def parks(self) -> int:
        return sum(w.parks for w in self.windows)

    @property
    def stale_reads(self) -> int:
        return sum(w.stale_reads for w in self.windows)

    @property
    def max_displacement(self) -> int:
        return max((w.max_displacement for w in self.windows), default=0)

    @property
    def makespan(self) -> float:
        return sum(w.makespan for w in self.windows)

    @property
    def end_verdicts(self) -> Dict[str, bool]:
        """Final end-valve verdicts, keyed ``w<i>/<task>/<valve>``."""
        verdicts: Dict[str, bool] = {}
        for window in self.windows:
            for key, value in window.end_verdicts.items():
                verdicts[f"w{window.index}/{key}"] = value
        return verdicts

    def percentile_latency(self, q: float) -> Optional[float]:
        if not self.latencies:
            return None
        values = sorted(self.latencies.values())
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PipelineResult({self.delivered}/{self.total_items} "
                f"delivered, drops={self.drops}, "
                f"makespan={self.makespan:.3f})")


class _WindowBuild(NamedTuple):
    region: FluidRegion
    queues: List[StageQueue]
    state_outs: List[Any]
    count: int


class Pipeline:
    """A chain of :class:`Stage` folds with one staleness bound ``k``.

    Parameters
    ----------
    stages:
        The stage chain, applied in order to every item.
    k:
        Staleness bound on every inter-stage queue.  ``0`` is lossless
        FIFO (exact parity with :meth:`run_serial`).
    capacity:
        Optional per-queue occupancy bound; overflow sheds sheddable
        items (up to ``k``) and parks must-deliver ones.
    must:
        ``must(global_seq) -> bool`` marking must-deliver items;
        ``None`` means every item is must-deliver (lossless).
    interarrival:
        Virtual cost between item arrivals at the source (sim pacing).
    window:
        Items per window / region.
    autotune:
        Optional :class:`repro.tuning.ValveAutotuner`; since
        :class:`~repro.core.valves.StalenessValve` is a
        :class:`~repro.core.valves.CountValve`, the tuner's threshold
        actuation steers the *effective* k of every start valve (and,
        through :meth:`StageQueue.attach_valve`, the drain bound).
    """

    def __init__(self, stages: Iterable[Stage], *, k: float = 0,
                 capacity: Optional[int] = None,
                 must: Optional[Callable[[int], bool]] = None,
                 interarrival: float = 1.0,
                 window: int = 32,
                 name: str = "stream",
                 telemetry: Optional[Any] = None,
                 autotune: Optional[Any] = None):
        self.stages = list(stages)
        if not self.stages:
            raise FluidError("a pipeline needs at least one stage")
        self.k = float(k)
        self.capacity = capacity
        self.must = must
        self.interarrival = float(interarrival)
        self.window = int(window)
        if self.window < 1:
            raise FluidError("window must hold at least one item")
        self.name = name
        self.telemetry = telemetry
        self.autotune = autotune

    # -- window construction -----------------------------------------------

    def _must_seqs(self, base: int, count: int):
        if self.must is None:
            return None
        return frozenset(i for i in range(count) if self.must(base + i))

    def build_window(self, index: int, items: List[Any],
                     states: List[Any]) -> _WindowBuild:
        """Build one window's Fluid region: source + stages + queues."""
        count = len(items)
        k = min(self.k, count)
        region = FluidRegion(f"{self.name}_w{index}")
        base = index * self.window
        must_seqs = self._must_seqs(base, count)
        queues = [
            StageQueue(f"q{i}", count, bound=k, capacity=self.capacity,
                       must_seqs=must_seqs, region=region)
            for i in range(len(self.stages) + 1)
        ]
        items_cell = region.input_data("items", list(items))
        interarrival = self.interarrival
        source_queue = queues[0]

        def source(ctx):
            payload = items_cell.read()
            for seq, value in enumerate(payload):
                yield interarrival
                source_queue.put(seq, value, task="source")

        region.add_task("source", source, inputs=[items_cell],
                        outputs=[source_queue.slots],
                        cost_estimate=interarrival * count)

        state_outs = []
        last = len(self.stages) - 1
        for position, stage in enumerate(self.stages):
            qin, qout = queues[position], queues[position + 1]
            state_in = region.input_data(f"state_in_{position}",
                                         states[position])
            state_out = region.add_data(f"state_out_{position}")
            state_outs.append(state_out)
            # Start gate: input no staler than k AND every must-deliver
            # item already in.  Requiring must-completion *at start*
            # (rather than as an intermediate end valve, which the
            # region shape rules reserve for leaves) guarantees a
            # single drain serves every must item: total missing <= k
            # at start, so the gap walk never breaks early.
            start_valve = StalenessValve(qin.settled_count, count, k,
                                         name=f"stale_{stage.name}")
            qin.attach_valve(start_valve)
            start_valves = [
                start_valve,
                PredicateValve(qin.must_complete,
                               watches=[qin.settled_count],
                               name=f"must_{stage.name}"),
            ]
            # Only the leaf may carry quality functions (Section 3.3):
            # the final stage re-checks the same contract at exit, and a
            # failure (a must item still in flight when the body ends)
            # parks it WAITING for the rerun loop.
            end_valves = []
            if position == last:
                end_valves = [
                    StalenessValve(qin.settled_count, count, k,
                                   name=f"end_stale_{stage.name}"),
                    PredicateValve(qin.must_complete,
                                   watches=[qin.settled_count],
                                   name=f"end_must_{stage.name}"),
                ]
            body = _stage_body(stage, qin, qout, state_in, state_out, base)
            region.add_task(stage.name, body,
                            start_valves=start_valves,
                            end_valves=end_valves,
                            inputs=[qin.slots, state_in],
                            outputs=[qout.slots, state_out],
                            cost_estimate=stage.cost * count)
        return _WindowBuild(region, queues, state_outs, count)

    def _initial_states(self) -> List[Any]:
        return [copy.deepcopy(stage.state0) for stage in self.stages]

    def _windows(self, items: List[Any]):
        for start in range(0, len(items), self.window):
            yield items[start:start + self.window]

    # -- result harvesting ---------------------------------------------------

    def _harvest(self, result: PipelineResult, index: int,
                 build: _WindowBuild, makespan: float,
                 latencies: Dict[int, float],
                 states: List[Any]) -> List[Any]:
        base = index * self.window
        final_queue = build.queues[-1]
        for seq, value in final_queue.items():
            result.outputs[base + seq] = value
        for seq, latency in latencies.items():
            result.latencies[base + seq] = latency
        # Sheds propagate downstream as tombstones, so the final queue's
        # tombstone count is exactly the distinct items lost end-to-end
        # (summing across queues would re-count inherited sheds).
        drops = build.queues[-1].drops()
        parks = sum(q.parks for q in build.queues)
        stale = sum(q.stale_reads for q in build.queues)
        displacement = max(q.max_displacement for q in build.queues)
        verdicts: Dict[str, bool] = {}
        for task in build.region.tasks:
            for valve in task.spec.end_valves:
                verdicts[f"{task.name}/{valve.name}"] = valve.check()
        for valve in build.region.valves:
            result.valve_checks += valve.checks
            result.valve_checks_skipped += valve.checks_skipped
        for task in build.region.tasks:
            result.reexecutions += max(0, task.stats.runs - 1)
        result.windows.append(WindowReport(index, makespan, drops, parks,
                                           stale, displacement, verdicts))
        next_states = [cell.read() for cell in build.state_outs]
        result.states = next_states
        return next_states

    def _latency_collector(self, bus, final_queue_name: str,
                           to_seconds: float):
        """Subscribe a final-queue put listener; returns (dict, detach)."""
        latencies: Dict[int, float] = {}

        def on_event(event):
            if event.kind != "stream":
                return
            if event.data.get("queue") != final_queue_name:
                return
            if event.name not in ("put", "update", "park"):
                return
            seq = event.data.get("seq")
            if seq is not None and seq not in latencies:
                latencies[seq] = event.ts * to_seconds

        if bus is not None:
            bus.subscribe(on_event)

        def detach():
            if bus is not None:
                bus.unsubscribe(on_event)

        return latencies, detach

    def _item_latencies(self, raw: Dict[int, float], epoch: float,
                        paced: bool) -> Dict[int, float]:
        """Turn final-queue put timestamps into per-item latencies.

        On the paced (sim) backend arrival i happens at virtual time
        ``(i + 1) * interarrival``; on wall-clock backends yields carry
        no delay, so arrivals are effectively at window start.
        """
        out: Dict[int, float] = {}
        for seq, ts in raw.items():
            arrival = (seq + 1) * self.interarrival if paced else 0.0
            out[seq] = max(0.0, ts - epoch - arrival)
        return out

    # -- drivers -------------------------------------------------------------

    def run(self, items: Iterable[Any], *, backend: str = "sim",
            cores: int = 4, workers: int = 2, slots: int = 4,
            timeout: float = 60.0) -> PipelineResult:
        """Run the whole stream through the pipeline on one backend."""
        items = list(items)
        result = PipelineResult(len(items))
        result.states = self._initial_states()
        if backend == "sim":
            self._run_sim(items, result, cores)
        elif backend == "thread":
            self._run_thread(items, result, slots, timeout)
        elif backend == "process":
            self._run_process(items, result, workers, timeout)
        else:
            raise FluidError(f"unknown pipeline backend {backend!r}")
        return result

    def _ensure_telemetry(self):
        if self.telemetry is None:
            from ..telemetry import Telemetry
            self.telemetry = Telemetry(metrics=True, chrome=False)
        return self.telemetry

    def _run_sim(self, items: List[Any], result: PipelineResult,
                 cores: int) -> None:
        from ..runtime import SimExecutor

        telemetry = self._ensure_telemetry()
        states = result.states
        final_name = f"q{len(self.stages)}"
        for index, window_items in enumerate(self._windows(items)):
            build = self.build_window(index, window_items, states)
            raw, detach = self._latency_collector(telemetry.bus,
                                                 final_name, 1.0)
            executor = SimExecutor(cores=cores, telemetry=telemetry,
                                   autotune=self.autotune)
            try:
                executor.submit(build.region)
                run = executor.run()
            finally:
                detach()
            latencies = self._item_latencies(raw, 0.0, paced=True)
            states = self._harvest(result, index, build, run.makespan,
                                   latencies, states)

    def _run_thread(self, items: List[Any], result: PipelineResult,
                    slots: int, timeout: float) -> None:
        from ..runtime.context import RunContext
        from ..runtime.thread_pool import SharedThreadPool

        telemetry = self._ensure_telemetry()
        states = result.states
        final_name = f"q{len(self.stages)}"
        pool = SharedThreadPool(slots=slots, bus=telemetry.bus)
        try:
            for index, window_items in enumerate(self._windows(items)):
                build = self.build_window(index, window_items, states)
                # One fresh RunContext per window over the shared pool:
                # the PR-7 sustained-load path (the pool clock keeps
                # running across windows, so timestamps are epoch-based).
                ctx = RunContext(label=f"{self.name}-w{index}",
                                 telemetry=telemetry,
                                 autotuner=self.autotune)
                raw, detach = self._latency_collector(telemetry.bus,
                                                      final_name, 1.0)
                epoch_before = pool.now()
                try:
                    ctx.submit(build.region)
                    pool.start(ctx)
                    pool.wait(ctx, timeout)
                finally:
                    detach()
                makespan = pool.now() - epoch_before
                latencies = self._item_latencies(raw, epoch_before,
                                                 paced=False)
                states = self._harvest(result, index, build, makespan,
                                       latencies, states)
        finally:
            pool.shutdown()
            telemetry.run_finished(pool.now(), slots)

    def _pool_config(self) -> Dict[str, Any]:
        """Picklable constructor kwargs for :func:`_rebuild_window_region`.

        Telemetry/autotune are deliberately excluded: a pool worker only
        runs stage bodies; guard decisions (and their instrumentation)
        stay in the parent.
        """
        return {"stages": self.stages, "k": self.k,
                "capacity": self.capacity, "must": self.must,
                "interarrival": self.interarrival,
                "window": self.window, "name": self.name}

    def _run_process(self, items: List[Any], result: PipelineResult,
                     workers: int, timeout: float) -> None:
        from ..runtime import ProcessExecutor
        from ..runtime.worker_pool import PersistentProcessPool, pool_blob

        states = result.states
        config = self._pool_config()
        pool = None
        pool_viable = True
        try:
            for index, window_items in enumerate(self._windows(items)):
                build = self.build_window(index, window_items, states)
                options: Dict[str, Any] = {}
                if pool_viable:
                    # Windows are rebuilt inside pool workers from this
                    # module-level factory; stage fns are documented as
                    # fork-safe module-level callables, but a lambda
                    # ``must`` or unpicklable stage state falls back to
                    # the historical fork-per-window executor.
                    build.region.remote_factory = (
                        _rebuild_window_region,
                        (config, index, list(window_items), list(states)),
                        {})
                    if pool_blob(build.region) is None:
                        build.region.remote_factory = None
                        pool_viable = False
                    else:
                        if pool is None:
                            pool = PersistentProcessPool(
                                workers=workers,
                                name=f"{self.name}-pool")
                        options["pool"] = pool
                executor = ProcessExecutor(workers=workers, timeout=timeout,
                                           **options)
                executor.submit(build.region)
                run = executor.run()
                # Stage bodies ran in (pooled or forked) workers whose
                # telemetry bus is not ours: per-item latencies are not
                # observable here.
                states = self._harvest(result, index, build, run.makespan,
                                       {}, states)
        finally:
            if pool is not None:
                pool.close()

    async def run_service(self, items: Iterable[Any], service, *,
                          sheddable: bool = False,
                          latency_slo: Optional[float] = None) -> PipelineResult:
        """Stream windows through a :class:`repro.service.FluidService`.

        Windows are submitted sequentially (state chains between them)
        but share the service's pool, admission control and SLO
        accounting with whatever other load the service carries.
        """
        items = list(items)
        result = PipelineResult(len(items))
        states = self._initial_states()
        result.states = states
        for index, window_items in enumerate(self._windows(items)):
            build = self.build_window(index, window_items, states)
            outcome = await service.submit(build.region,
                                           sheddable=sheddable,
                                           latency_slo=latency_slo)
            states = self._harvest(result, index, build, outcome.latency,
                                   {}, states)
        return result

    # -- the precise reference ------------------------------------------------

    def run_serial(self, items: Iterable[Any]) -> Dict[int, Any]:
        """Fold every item through every stage in seq order: the exact
        reference a ``k = 0`` run must match item-for-item."""
        states = self._initial_states()
        outputs: Dict[int, Any] = {}
        for seq, value in enumerate(items):
            for position, stage in enumerate(self.stages):
                states[position], value = stage.fn(states[position], seq,
                                                   value)
            outputs[seq] = value
        return outputs


def _rebuild_window_region(config: Dict[str, Any], index: int,
                           items: List[Any], states: List[Any]) -> FluidRegion:
    """Rebuild one window's region inside a pool worker.

    ``build_window`` is deterministic given (index, items, entry
    states), so the rebuilt region is structurally identical to the
    parent's — same task/cell names and indices — which is all the
    pooled wire protocol needs (the parent ships authoritative cell
    snapshots at dispatch anyway).
    """
    pipeline = Pipeline(config["stages"], k=config["k"],
                        capacity=config["capacity"], must=config["must"],
                        interarrival=config["interarrival"],
                        window=config["window"], name=config["name"])
    return pipeline.build_window(index, list(items), list(states)).region


def _stage_body(stage: Stage, qin: StageQueue, qout: StageQueue,
                state_in, state_out, base: int):
    """Build the recompute-model task body for one stage.

    Every (re)execution starts from the window-initial state, drains
    whatever the input queue can serve under the staleness bound, folds
    in seq order, and (re)puts the outputs — puts are idempotent slot
    rewrites, so a rerun triggered by a late must-deliver item simply
    recomputes a more complete window.
    """

    def body(ctx):
        qin.begin_consume(task=stage.name)
        state = copy.deepcopy(state_in.read())
        for seq, value in qin.drain(task=stage.name):
            state, out = stage.fn(state, base + seq, value)
            qout.put(seq, out, task=stage.name)
            if stage.cost:
                yield stage.cost
        for seq in range(qin.expected):
            if qin.is_dropped(seq):
                qout.shed(seq, task=stage.name)
        state_out.write(state)

    return body
