"""Streaming-pipeline layer: continuous operation for Fluid regions.

Stages are Fluid tasks linked by staleness-relaxed bounded queues
(:class:`StageQueue`); the valve condition is "consume input no staler
than k" (:class:`~repro.core.valves.StalenessValve`).  See
``docs/streaming.md`` for the queue semantics and the valve contract.
"""

from .apps import APPS, StreamApp
from .pipeline import (Pipeline, PipelineResult, Stage, WindowReport)
from .queue import (DROPPED, QueueEvent, StageQueue, add_stream_observer,
                    remove_stream_observer)

__all__ = [
    "APPS", "StreamApp",
    "Pipeline", "PipelineResult", "Stage", "WindowReport",
    "DROPPED", "QueueEvent", "StageQueue", "add_stream_observer",
    "remove_stream_observer",
]
