"""Three continuous applications for the streaming-pipeline layer.

Each app is a 3-stage :class:`~repro.stream.pipeline.Pipeline` over a
deterministic synthetic item stream, chosen so that dropping or missing
an item produces a *measurable* accuracy loss against the serial
reference (the fig6-style quality axis):

``logagg``
    Incremental log/metrics aggregation: parse structured log records,
    fold them into per-service EMA latency estimates (order-sensitive,
    so out-of-order staleness shows up in the numbers), and emit a
    rolling summary per record.  Every fourth record is must-deliver,
    so at ``k > 0`` up to ``k`` fill-in records per edge may be
    skipped — measurably perturbing the EMAs.

``topk``
    Top-k re-ranking over drifting document scores: score updates feed
    an exponentially decayed score table and each item emits the
    current top-3 ranking.  Sheddable except every 5th item, so
    backpressure shedding is part of the measured behaviour.

``frames``
    Video-frame edge detection reusing
    :mod:`repro.workloads.images`: per-seq synthetic frames are
    box-blurred and reduced to an edge-pixel count.  Keyframes (every
    4th) are must-deliver; a small queue capacity makes shedding the
    norm under k > 0.

All stage functions are module-level and pure in their ``value``
argument (fork-safe for the process backend) and every app supplies a
``metric(outputs, reference) -> error in [0, 1]`` where a missing item
counts as fully wrong — so ``accuracy = 1 - error`` is comparable
across k and backends.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, NamedTuple, Optional

from .pipeline import Pipeline, Stage

_SERVICES = ("auth", "cart", "search", "billing")


class StreamApp(NamedTuple):
    """One streaming benchmark app: a pipeline factory plus its meter."""

    name: str
    stages: "tuple[Stage, ...]"
    make_items: Callable[[int], list]
    metric: Callable[[Dict[int, Any], Dict[int, Any]], float]
    must: Optional[Callable[[int], bool]]
    capacity: Optional[int]
    interarrival: float

    def pipeline(self, *, k: float = 0, window: int = 32,
                 capacity: Optional[int] = None, **kwargs) -> Pipeline:
        return Pipeline(self.stages, k=k, window=window,
                        capacity=self.capacity if capacity is None
                        else capacity,
                        must=self.must, interarrival=self.interarrival,
                        name=self.name, **kwargs)

    def error(self, outputs: Dict[int, Any], n_items: int) -> float:
        """Error in [0, 1] against the serial reference on ``n_items``."""
        reference = self.pipeline().run_serial(self.make_items(n_items))
        return self.metric(outputs, reference)


def _coverage_error(outputs: Dict[int, Any], reference: Dict[int, Any],
                    item_error: Callable[[Any, Any], float]) -> float:
    """Mean per-item error; an item missing from ``outputs`` scores 1."""
    if not reference:
        return 0.0
    total = 0.0
    for seq, expected in reference.items():
        if seq not in outputs:
            total += 1.0
        else:
            total += min(1.0, item_error(outputs[seq], expected))
    return total / len(reference)


# -- logagg: incremental log/metrics aggregation ---------------------------

def make_log_items(n: int) -> list:
    """Deterministic structured log records as raw text lines."""
    items = []
    for i in range(n):
        service = _SERVICES[(i * 7) % len(_SERVICES)]
        latency = 20 + ((i * 37) % 113)
        status = 500 if (i % 11) == 0 else 200
        items.append(f"ts={i} svc={service} lat_ms={latency} st={status}")
    return items


def logagg_parse(state: Any, seq: int, value: str):
    fields = dict(part.split("=", 1) for part in value.split())
    record = {"svc": fields["svc"], "lat": float(fields["lat_ms"]),
              "err": fields["st"] != "200"}
    return state, record


def logagg_aggregate(state: Any, seq: int, record: dict):
    # EMA per service: deliberately order-sensitive, so serving items
    # out of order (staleness) perturbs the estimates measurably.
    state = dict(state or {})
    svc = record["svc"]
    ema, errors, count = state.get(svc, (record["lat"], 0, 0))
    ema = 0.8 * ema + 0.2 * record["lat"]
    state[svc] = (ema, errors + (1 if record["err"] else 0), count + 1)
    return state, (svc, state[svc])


def logagg_summarize(state: Any, seq: int, update):
    svc, (ema, errors, count) = update
    return state, (svc, round(ema, 4), errors, count)


def logagg_item_error(got, expected) -> float:
    if got[0] != expected[0] or got[2:] != expected[2:]:
        return 1.0
    scale = max(1.0, abs(expected[1]))
    return abs(got[1] - expected[1]) / scale


# -- topk: re-ranking over drifting document scores ------------------------

def make_topk_items(n: int) -> list:
    """(doc, score) updates with slow per-doc drift."""
    docs = [f"doc{d}" for d in range(8)]
    items = []
    for i in range(n):
        doc = docs[(i * 5) % len(docs)]
        score = 100.0 + ((i * 13) % 97) - 0.3 * (i % 29)
        items.append((doc, round(score, 2)))
    return items


def topk_score(state: Any, seq: int, item):
    doc, score = item
    return state, (doc, score)


def topk_rank(state: Any, seq: int, update):
    # Decayed score table: every update decays all scores slightly, so
    # ranking depends on arrival order and staleness is measurable.
    state = dict(state or {})
    doc, score = update
    for key in state:
        state[key] *= 0.995
    state[doc] = 0.5 * state.get(doc, score) + 0.5 * score
    top = sorted(state.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
    return state, tuple(doc for doc, _ in top)


def topk_emit(state: Any, seq: int, top):
    return state, top


def topk_item_error(got, expected) -> float:
    if not expected:
        return 0.0
    hits = sum(1 for doc in got if doc in expected)
    return 1.0 - hits / len(expected)


# -- frames: video-frame edge detection ------------------------------------

_FRAME_SIZE = 16


def make_frame_items(n: int) -> list:
    """Seeded 16x16 grayscale frames as nested lists (picklable)."""
    from ..workloads.images import synthetic_image

    return [synthetic_image(_FRAME_SIZE, _FRAME_SIZE, diversity=3,
                            noise=6.0, seed=seq).tolist()
            for seq in range(n)]


def frames_blur(state: Any, seq: int, frame):
    h, w = len(frame), len(frame[0])
    out = [[0.0] * w for _ in range(h)]
    for y in range(h):
        for x in range(w):
            total = count = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    yy, xx = y + dy, x + dx
                    if 0 <= yy < h and 0 <= xx < w:
                        total += frame[yy][xx]
                        count += 1
            out[y][x] = total / count
    return state, out


def frames_gradient(state: Any, seq: int, frame):
    h, w = len(frame), len(frame[0])
    edges = 0
    for y in range(h - 1):
        for x in range(w - 1):
            gx = frame[y][x + 1] - frame[y][x]
            gy = frame[y + 1][x] - frame[y][x]
            if abs(gx) + abs(gy) > 12.0:
                edges += 1
    return state, edges


def frames_track(state: Any, seq: int, edges):
    # Rolling mean of edge density across frames (stateful, so skipped
    # frames shift the trajectory, not just the skipped output).
    state = state or (0.0, 0)
    mean, count = state
    mean = (mean * count + edges) / (count + 1)
    return (mean, count + 1), (edges, round(mean, 4))


def frames_item_error(got, expected) -> float:
    if got[0] != expected[0]:
        return 1.0
    scale = max(1.0, abs(expected[1]))
    return min(1.0, abs(got[1] - expected[1]) / scale)


# -- registry ---------------------------------------------------------------

APPS: Dict[str, StreamApp] = {
    "logagg": StreamApp(
        name="logagg",
        stages=(Stage("parse", logagg_parse, cost=1.0),
                Stage("aggregate", logagg_aggregate, cost=2.0,
                      state0={}),
                Stage("summarize", logagg_summarize, cost=0.5)),
        make_items=make_log_items,
        metric=lambda got, ref: _coverage_error(got, ref,
                                                logagg_item_error),
        must=lambda seq: seq % 4 == 0,
        capacity=None,
        interarrival=1.0,
    ),
    "topk": StreamApp(
        name="topk",
        stages=(Stage("score", topk_score, cost=1.0),
                Stage("rank", topk_rank, cost=3.0, state0={}),
                Stage("emit", topk_emit, cost=0.5)),
        make_items=make_topk_items,
        metric=lambda got, ref: _coverage_error(got, ref,
                                                topk_item_error),
        must=lambda seq: seq % 5 == 0,
        capacity=None,
        interarrival=1.0,
    ),
    "frames": StreamApp(
        name="frames",
        stages=(Stage("blur", frames_blur, cost=4.0),
                Stage("gradient", frames_gradient, cost=2.0),
                Stage("track", frames_track, cost=0.5,
                      state0=(0.0, 0))),
        make_items=make_frame_items,
        metric=lambda got, ref: _coverage_error(got, ref,
                                                frames_item_error),
        must=lambda seq: seq % 4 == 0,
        capacity=8,
        interarrival=2.0,
    ),
}
