"""Relaxed bounded stage queues: the k-out-of-order edges of a pipeline.

A :class:`StageQueue` carries one window of a stream between two
pipeline stages.  It is *relaxed* in the elastic-relaxation sense: a
consumer may drain it while up to ``k`` items are still outstanding
(the staleness bound), and a bounded-capacity queue may *shed* up to
``k`` sheddable items under backpressure instead of blocking the
producer.  Both freedoms are observable and checkable:

* every state change publishes a :class:`QueueEvent` to the module's
  stream-observer registry (:func:`add_stream_observer`), which the
  SchedLab :class:`~repro.schedlab.invariants.InvariantChecker`
  subscribes to — a serve more than ``k`` positions out of order, a
  drain that begins with more than ``k`` items missing, or a dropped
  must-deliver item is an invariant violation;
* the same changes are emitted as ``stream``-kind telemetry events on
  the owning region's bus (counted into the ``stream.*`` metrics
  catalogue).

Storage lives in a :class:`~repro.core.data.FluidArray` of per-seq
slots when the queue is region-bound (so slot writes are versioned,
wake waiting guards, and ship across the process backend's boundary),
or a plain list for standalone use (property tests).  All derived
state — arrivals, drops, settledness — is recomputed from the slot
array, never cached in side sets, so a forked worker that receives a
payload snapshot sees a consistent queue.

Terminology: a seq is *settled* once it is either delivered (its slot
holds the item) or deliberately shed (its slot holds the drop
tombstone).  The :class:`~repro.core.valves.StalenessValve` attached to
a queue watches the ``settled`` count: "at most k of the expected items
are unsettled".
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, NamedTuple, Optional, Tuple

from ..core.count import Count
from ..core.errors import FluidError

#: Tombstone stored in a slot when a sheddable item is dropped under
#: backpressure.  A 1-tuple so it survives pickling across the process
#: boundary and can never collide with a real ``(seq, value)`` cell.
DROPPED = ("__dropped__",)


class QueueEvent(NamedTuple):
    """One observable stage-queue state change.

    ``action`` is one of ``put`` (item delivered), ``update`` (a rerun
    refreshed an already-delivered slot), ``drop`` (sheddable item shed
    under backpressure), ``park`` (a must-deliver item accepted despite
    a full queue — the backpressure signal), ``begin`` (a consumer
    started a drain; ``missing`` counts unsettled seqs) and ``serve``
    (one item handed to a consumer; ``displacement`` counts the
    missing earlier seqs it overtook).
    """

    action: str
    queue: str
    seq: int
    bound: float
    must: bool = False
    displacement: int = 0
    missing: int = 0
    occupancy: int = 0
    first: bool = True


#: Module-level observer registry; see :func:`add_stream_observer`.
_OBSERVERS: List[Callable[[QueueEvent], None]] = []


def add_stream_observer(observer: Callable[[QueueEvent], None]) -> None:
    """Register ``observer(event)`` for every stage-queue state change.

    The hook the SchedLab invariant checker uses; observers must not
    mutate queues.
    """
    _OBSERVERS.append(observer)


def remove_stream_observer(observer: Callable[[QueueEvent], None]) -> None:
    """Remove an observer registered with :func:`add_stream_observer`."""
    try:
        _OBSERVERS.remove(observer)
    except ValueError:
        pass


def _notify(event: QueueEvent) -> None:
    for observer in list(_OBSERVERS):
        observer(event)


class StageQueue:
    """A bounded, staleness-relaxed seq-indexed queue for one window.

    Parameters
    ----------
    name:
        Identifier used in events, valves and diagnostics.
    expected:
        Number of seqs (0..expected-1) this window carries.
    bound:
        The staleness bound ``k``: a drain tolerates up to ``bound``
        missing items, and up to ``bound`` sheddable items may be
        dropped under backpressure.  ``0`` degrades to lossless FIFO.
    capacity:
        Maximum in-flight occupancy (delivered but unserved items)
        before backpressure kicks in; ``None`` = unbounded.
    must_seqs:
        Seqs that must be delivered, never shed.  ``None`` means *all*
        seqs are must-deliver.
    region:
        When given, the slot array is a region
        :class:`~repro.core.data.FluidArray` named ``<name>_slots`` and
        settledness is published through a region
        :class:`~repro.core.count.Count` named ``<name>_settled`` (what
        staleness valves watch).  Standalone queues use plain storage.
    """

    def __init__(self, name: str, expected: int, *, bound: float = 0,
                 capacity: Optional[int] = None, must_seqs=None,
                 region=None):
        if expected < 0:
            raise FluidError(f"queue {name!r}: expected must be >= 0")
        if not 0 <= bound <= expected:
            raise FluidError(
                f"queue {name!r}: staleness bound {bound} outside "
                f"[0, {expected}]")
        if capacity is not None and capacity < 1:
            raise FluidError(f"queue {name!r}: capacity must be >= 1")
        self.name = name
        self.expected = int(expected)
        self.bound = float(bound)
        self.capacity = capacity
        self.must_seqs = (None if must_seqs is None
                          else frozenset(int(s) for s in must_seqs))
        self.region = region
        #: optional StalenessValve whose (possibly autotuned) effective
        #: ``k`` overrides ``bound`` for drains; see :meth:`attach_valve`.
        self.valve = None
        if region is not None:
            self.slots = region.add_array(f"{name}_slots",
                                          [None] * self.expected)
            self.settled_count: Optional[Count] = region.add_count(
                f"{name}_settled")
        else:
            self.slots = [None] * self.expected
            self.settled_count = None
        # Consumer-side bookkeeping (telemetry only; correctness is
        # derived from the slots so process workers stay consistent).
        self._served = set()
        self.stale_reads = 0
        self.parks = 0
        self.max_displacement = 0

    # -- derived state (always recomputed from the slots) -----------------

    def _cell(self, seq: int):
        return self.slots[seq]

    def arrived(self, seq: int) -> bool:
        cell = self._cell(seq)
        return cell is not None and cell != DROPPED

    def is_dropped(self, seq: int) -> bool:
        return self._cell(seq) == DROPPED

    def settled(self, seq: int) -> bool:
        return self._cell(seq) is not None

    def arrived_total(self) -> int:
        return sum(1 for seq in range(self.expected) if self.arrived(seq))

    def drops(self) -> int:
        return sum(1 for seq in range(self.expected) if self.is_dropped(seq))

    def settled_total(self) -> int:
        return sum(1 for seq in range(self.expected) if self.settled(seq))

    def missing_total(self) -> int:
        return self.expected - self.settled_total()

    def occupancy(self) -> int:
        """Delivered-but-unserved items (the backpressure signal)."""
        return sum(1 for seq in range(self.expected)
                   if self.arrived(seq) and seq not in self._served)

    def must(self, seq: int) -> bool:
        return self.must_seqs is None or seq in self.must_seqs

    def must_complete(self) -> bool:
        """Every must-deliver seq has arrived (the end-valve predicate)."""
        return all(self.arrived(seq) for seq in range(self.expected)
                   if self.must(seq))

    def effective_bound(self) -> float:
        """Current drain tolerance: the attached valve's (possibly
        modulated/autotuned) ``k`` when present, else the static bound."""
        if self.valve is not None:
            return min(self.bound, self.valve.k)
        return self.bound

    # -- wiring ------------------------------------------------------------

    def attach_valve(self, valve) -> "StageQueue":
        """Bind the StalenessValve that gates this queue's consumer, so
        drains honour the valve's *effective* k as modulation and the
        autotuner move it (tightening toward 0 = toward FIFO)."""
        self.valve = valve
        return self

    def _emit(self, event: QueueEvent, task: str = "") -> None:
        _notify(event)
        region = self.region
        telemetry = getattr(region, "telemetry", None)
        if telemetry is not None:
            telemetry.emit(
                "stream", getattr(region, "name", ""), task, event.action,
                data={"queue": event.queue, "seq": event.seq,
                      "bound": event.bound, "must": event.must,
                      "displacement": event.displacement,
                      "missing": event.missing,
                      "occupancy": event.occupancy, "first": event.first})

    # -- producer side -----------------------------------------------------

    def put(self, seq: int, value: Any, *, task: str = "") -> str:
        """Deliver (or shed) item ``seq``; returns the action taken.

        Idempotent across re-executions: a rerun that puts an
        already-delivered seq refreshes the value in place (an
        ``update``, not a recount), and a previously shed seq stays
        shed so drop decisions are monotone.  Must-deliver items are
        *never* refused — at capacity they are accepted anyway and the
        overflow is recorded as a ``park`` (the backpressure signal a
        paced source can react to).
        """
        if not 0 <= seq < self.expected:
            raise FluidError(
                f"queue {self.name!r}: seq {seq} outside "
                f"[0, {self.expected})")
        if self.is_dropped(seq):
            return "drop"
        must = self.must(seq)
        if self.arrived(seq):
            self.slots[seq] = (seq, value)
            self._emit(QueueEvent("update", self.name, seq,
                                  self.effective_bound(), must=must,
                                  occupancy=self.occupancy()), task)
            return "update"
        action = "put"
        if self.capacity is not None and self.occupancy() >= self.capacity:
            if not must and self.bound > 0 and self.drops() < self.bound:
                self.slots[seq] = DROPPED
                if self.settled_count is not None:
                    self.settled_count.set(self.settled_total())
                self._emit(QueueEvent("drop", self.name, seq,
                                      self.effective_bound(), must=must,
                                      occupancy=self.occupancy()), task)
                return "drop"
            self.parks += 1
            action = "park"
        self.slots[seq] = (seq, value)
        if self.settled_count is not None:
            self.settled_count.set(self.settled_total())
        self._emit(QueueEvent(action, self.name, seq,
                              self.effective_bound(), must=must,
                              occupancy=self.occupancy()), task)
        return action

    def shed(self, seq: int, *, task: str = "") -> None:
        """Propagate an upstream drop: tombstone ``seq`` so downstream
        settledness still converges (a permanently missing seq would
        otherwise hold every later staleness valve below threshold).
        Idempotent; must-deliver seqs can never be shed.
        """
        if not 0 <= seq < self.expected:
            raise FluidError(
                f"queue {self.name!r}: seq {seq} outside "
                f"[0, {self.expected})")
        if self.must(seq):
            raise FluidError(
                f"queue {self.name!r}: must-deliver seq {seq} cannot "
                "be shed")
        if self.settled(seq):
            return
        self.slots[seq] = DROPPED
        if self.settled_count is not None:
            self.settled_count.set(self.settled_total())
        self._emit(QueueEvent("drop", self.name, seq,
                              self.effective_bound(),
                              occupancy=self.occupancy()), task)

    # -- consumer side -----------------------------------------------------

    def begin_consume(self, *, task: str = "") -> int:
        """Record the start of a drain; returns the unsettled count.

        The observable half of the staleness contract: when the start
        valve was honest, ``missing <= k`` here.  The invariant checker
        flags a ``begin`` with ``missing > bound`` as a
        staleness-bound violation (e.g. a forced-true valve fault).
        """
        missing = self.missing_total()
        self._emit(QueueEvent("begin", self.name, -1,
                              self.effective_bound(), missing=missing,
                              occupancy=self.occupancy()), task)
        return missing

    def drain(self, *, task: str = "") -> List[Tuple[int, Any]]:
        """Serve available items in seq order, tolerating ``k`` gaps.

        Walks seqs in order; a shed seq is skipped (its absence was
        already accounted for), a missing seq counts as a gap, and the
        walk stops before serving past gap ``k + 1`` — so no served
        item is ever more than ``k`` positions out of order, and at
        ``k = 0`` the result is exactly the contiguous FIFO prefix.
        Re-serving on a re-execution is expected (the recompute model);
        only first serves count toward ``stream.stale_reads``.
        """
        bound = self.effective_bound()
        served: List[Tuple[int, Any]] = []
        gaps = 0
        for seq in range(self.expected):
            if self.is_dropped(seq):
                continue
            cell = self._cell(seq)
            if cell is None:
                gaps += 1
                if gaps > bound:
                    break
                continue
            displacement = gaps
            first = seq not in self._served
            self._served.add(seq)
            if first:
                self.max_displacement = max(self.max_displacement,
                                            displacement)
                if displacement > 0:
                    self.stale_reads += 1
            self._emit(QueueEvent("serve", self.name, seq, bound,
                                  must=self.must(seq),
                                  displacement=displacement,
                                  occupancy=self.occupancy(),
                                  first=first), task)
            served.append(cell)
        return served

    # -- results -----------------------------------------------------------

    def items(self) -> Iterable[Tuple[int, Any]]:
        """The delivered ``(seq, value)`` cells, in seq order."""
        for seq in range(self.expected):
            if self.arrived(seq):
                yield self._cell(seq)

    def stats(self) -> dict:
        return {"expected": self.expected,
                "arrived": self.arrived_total(),
                "drops": self.drops(),
                "parks": self.parks,
                "stale_reads": self.stale_reads,
                "max_displacement": self.max_displacement}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StageQueue({self.name}, {self.settled_total()}"
                f"/{self.expected} settled, k={self.bound:g})")
