"""SchedLab scenarios: small programs with interesting schedule spaces.

Each :class:`Scenario` builds a *fresh* set of regions per run (schedule
exploration mutates task state destructively), knows which backends it
supports, and can produce the serial precise output for serial-elision
equivalence checks.

Synthetic scenarios (pipeline / overtake / diamond) exercise the
re-execution machinery — quality failures, W/D residence, update
signals — with analytically-known answers.  App scenarios (K-means,
Bellman-Ford) run shrunken versions of the paper's applications.  The
``racy`` scenario contains a deliberate order-dependent bug (a task that
crashes when it observes too much of a sibling's progress) used to test
that sweeps find ordering bugs and that the shrinker converges; it is
excluded from default sweeps.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.errors import FluidError
from ..core.region import FluidRegion
from ..core.valves import DataFinalValve, PercentValve, PredicateValve
from ..runtime.executor import run_serial


class RacyOrderingBug(FluidError):
    """The deliberate bug planted in the ``racy`` scenario."""


class ScenarioRun:
    """One fresh, runnable instance of a scenario."""

    def __init__(self, regions: Sequence[FluidRegion],
                 submit: Callable, extract: Callable):
        self.regions = list(regions)
        #: submit(executor) — registers every region (with topology).
        self.submit = submit
        #: extract() — the scenario-level output after the run.
        self.extract = extract


class Scenario:
    """Base: named builder of fresh runs plus its precise reference."""

    name = ""
    backends = ("sim", "thread", "process")
    #: Included when a sweep does not name scenarios explicitly.
    in_default_sweep = True
    #: Whether a strict (always-strict valves) build exists whose output
    #: must bit-match the serial run under any schedule.
    supports_strict = True

    def fresh(self, strict: bool = False) -> ScenarioRun:
        raise NotImplementedError

    def precise_output(self):
        """Serial precise run of a strict build (the elision baseline)."""
        run = self.fresh(strict=True)
        run_serial(*run.regions)
        return run.extract()


def _single_region(region: FluidRegion, extract: Callable) -> ScenarioRun:
    def submit(executor):
        executor.submit(region)
    return ScenarioRun([region], submit, extract)


class PipelineScenario(Scenario):
    """Slow producer, fast consumer, exact quality: the consumer starts
    on a partial input, fails quality, and is woken by the producer's
    completion signal — the canonical re-execution chain."""

    name = "pipeline"

    def __init__(self, n: int = 24):
        self.n = n

    def fresh(self, strict: bool = False) -> ScenarioRun:
        n = self.n
        start_fraction = 1.0 if strict else 0.3

        class Pipeline(FluidRegion):
            def build(self):
                src = self.input_data("src", list(range(n)))
                mid = self.add_array("mid", [0] * n)
                out = self.add_array("out", [0] * n)
                ct = self.add_count("ct")

                def produce(ctx):
                    data = src.read()
                    for i in range(n):
                        mid[i] = data[i] * 2
                        ct.add()
                        yield 2.0

                def consume(ctx):
                    for i in range(n):
                        out[i] = mid[i] + 1
                        yield 1.0

                self.add_task("produce", produce, inputs=[src],
                              outputs=[mid])
                self.add_task(
                    "consume", consume,
                    start_valves=[PercentValve(ct, start_fraction, n)],
                    end_valves=[PredicateValve(
                        lambda: all(out[i] == 2 * i + 1 for i in range(n)),
                        name="exact")],
                    inputs=[mid], outputs=[out])

        region = Pipeline("pipeline")
        return _single_region(
            region, lambda: list(region.datas["out"].read()))


class OvertakeScenario(Scenario):
    """A consumer that sprints past the producer early and then crawls:
    the producer finishes *during* the consumer's run, so the pending
    input-update signal is consumed by the W-entry poke — removing that
    wake-up (the ``drop-wait-poke`` mutation) deadlocks this scenario."""

    name = "overtake"

    def __init__(self, n: int = 24):
        self.n = n

    def fresh(self, strict: bool = False) -> ScenarioRun:
        n = self.n
        start_fraction = 1.0 if strict else 0.25

        class Overtake(FluidRegion):
            def build(self):
                src = self.input_data("src", list(range(n)))
                mid = self.add_array("mid", [0] * n)
                out = self.add_array("out", [0] * n)
                ct = self.add_count("ct")

                def produce(ctx):
                    data = src.read()
                    for i in range(n):
                        mid[i] = data[i] + 10
                        ct.add()
                        yield 1.0

                def consume(ctx):
                    for i in range(n):
                        out[i] = mid[i] * 3
                        yield 0.3 if i < n // 2 else 3.0

                self.add_task("produce", produce, inputs=[src],
                              outputs=[mid])
                self.add_task(
                    "consume", consume,
                    start_valves=[PercentValve(ct, start_fraction, n)],
                    end_valves=[PredicateValve(
                        lambda: all(out[i] == (i + 10) * 3
                                    for i in range(n)),
                        name="exact")],
                    inputs=[mid], outputs=[out])

        region = Overtake("overtake")
        return _single_region(
            region, lambda: list(region.datas["out"].read()))


class DiamondScenario(Scenario):
    """root -> (left, right) -> join with an exact-quality leaf: two
    producers racing into one consumer, re-executions on both edges."""

    name = "diamond"

    def __init__(self, n: int = 20):
        self.n = n

    def fresh(self, strict: bool = False) -> ScenarioRun:
        n = self.n
        fraction = 1.0 if strict else 0.4

        class Diamond(FluidRegion):
            def build(self):
                src = self.input_data("src", list(range(n)))
                base = self.add_array("base", [0] * n)
                left = self.add_array("left", [0] * n)
                right = self.add_array("right", [0] * n)
                out = self.add_array("out", [0] * n)
                ct0 = self.add_count("ct0")
                ctl = self.add_count("ctl")
                ctr = self.add_count("ctr")

                def root(ctx):
                    data = src.read()
                    for i in range(n):
                        base[i] = data[i]
                        ct0.add()
                        yield 1.0

                def go_left(ctx):
                    for i in range(n):
                        left[i] = base[i] + 1
                        ctl.add()
                        yield 1.0

                def go_right(ctx):
                    for i in range(n):
                        right[i] = base[i] * 2
                        ctr.add()
                        yield 1.5

                def join(ctx):
                    for i in range(n):
                        out[i] = left[i] + right[i]
                        yield 1.0

                self.add_task("root", root, inputs=[src], outputs=[base])
                self.add_task("left", go_left, inputs=[base],
                              outputs=[left],
                              start_valves=[PercentValve(ct0, fraction, n)])
                self.add_task("right", go_right, inputs=[base],
                              outputs=[right],
                              start_valves=[PercentValve(ct0, fraction, n)])
                self.add_task(
                    "join", join, inputs=[left, right], outputs=[out],
                    start_valves=[PercentValve(ctl, fraction, n),
                                  PercentValve(ctr, fraction, n)],
                    end_valves=[PredicateValve(
                        lambda: all(out[i] == 3 * i + 1 for i in range(n)),
                        name="exact")])

        region = Diamond("diamond")
        return _single_region(
            region, lambda: list(region.datas["out"].read()))


class RacyScenario(Scenario):
    """Deliberate ordering bug for harness self-tests.

    ``probe`` crashes iff two or more of ``burst``'s count publications
    land before probe's second chunk runs.  All events tie at the same
    virtual time (zero-cost chunks), so the outcome is decided purely by
    the event tie-break policy: FIFO order is safe, many random orders
    are not.  The minimal failing schedule is two event-tie decisions.
    """

    name = "racy"
    backends = ("sim",)
    in_default_sweep = False
    supports_strict = False

    def fresh(self, strict: bool = False) -> ScenarioRun:
        published: List[int] = []

        class Racy(FluidRegion):
            def build(self):
                src = self.input_data("src", 1)
                ready = self.add_data("ready")
                burst_out = self.add_data("burst_out")
                probe_out = self.add_data("probe_out")
                ct = self.add_count("ct")
                ct.subscribe(lambda _count, value: published.append(value))

                def header(ctx):
                    ready.write(True)
                    yield 1.0

                def burst(ctx):
                    for step in range(4):
                        ct.add()
                        yield 0.0
                    burst_out.write(4)
                    yield 0.0

                def probe(ctx):
                    yield 0.0
                    if len(published) >= 2:
                        raise RacyOrderingBug(
                            f"probe observed {len(published)} burst "
                            "publications before its second chunk")
                    probe_out.write(len(published))
                    yield 0.0

                self.add_task("header", header, inputs=[src],
                              outputs=[ready])
                self.add_task("burst", burst,
                              start_valves=[DataFinalValve(ready)],
                              inputs=[ready], outputs=[burst_out])
                self.add_task("probe", probe,
                              start_valves=[DataFinalValve(ready)],
                              inputs=[ready], outputs=[probe_out])

        region = Racy("racy")
        return _single_region(
            region, lambda: region.datas["probe_out"].read())


class KMeansScenario(Scenario):
    """Two epochs of shrunken K-means (2 assign bands per epoch)."""

    name = "kmeans"
    #: the epoch regions share one assignments buffer across bands,
    #: which violates the process-backend payload-aliasing contract.
    backends = ("sim", "thread")

    def make_app(self):
        from ..apps.kmeans import KMeansApp

        rng = np.random.default_rng(7)
        image = rng.integers(0, 255, size=(8, 8)).astype(float)
        return KMeansApp(image, num_clusters=3, epochs=2, seed=1)

    def fresh(self, strict: bool = False) -> ScenarioRun:
        app = self.make_app()
        plan = app.build_regions(threshold=1.0 if strict else 0.4,
                                 valve="percent", parallelism=2)
        return ScenarioRun(plan.ordered_regions(), plan.submit_to,
                           lambda: app.extract_output(plan))


class BellmanFordScenario(Scenario):
    """Four pipelined relax iterations on a small random digraph."""

    name = "bellman_ford"
    #: the iteration chain relaxes one shared distance vector in place,
    #: which the process backend's forked workers would not observe.
    backends = ("sim", "thread")

    def make_app(self):
        from ..apps.bellman_ford import BellmanFordApp
        from ..workloads.graphs import random_graph

        graph = random_graph(24, 96, seed=3)
        return BellmanFordApp(graph, iterations=4)

    def fresh(self, strict: bool = False) -> ScenarioRun:
        app = self.make_app()
        plan = app.build_regions(threshold=1.0 if strict else 0.4,
                                 valve="percent", parallelism=1)
        return ScenarioRun(plan.ordered_regions(), plan.submit_to,
                           lambda: app.extract_output(plan))


class StreamScenario(Scenario):
    """One window of the streaming log-aggregation pipeline.

    A paced source feeds three stages over staleness-relaxed
    :class:`~repro.stream.StageQueue` edges (bound ``k``).  The
    invariant checker audits the queue-observer event stream: a
    ``valve_true`` fault on a stage's start valves makes it consume
    while more than ``k`` items are unsettled, which surfaces as a
    ``staleness`` violation — the streaming analogue of the
    drop-update-signals mutation.  Strict builds use ``k = 0``
    (lossless FIFO) and must bit-match the serial fold.
    """

    name = "stream"
    #: the per-window latency collector and drain bookkeeping live on
    #: the coordinator side; worker-forked queue state would make the
    #: process backend's observer stream vacuous, so it is not swept.
    backends = ("sim", "thread")

    def __init__(self, n: int = 20, k: int = 3):
        self.n = n
        self.k = k

    def _pipeline(self, k: float):
        from ..stream.apps import APPS

        return APPS["logagg"].pipeline(k=k, window=self.n)

    def fresh(self, strict: bool = False) -> ScenarioRun:
        from ..stream.apps import make_log_items

        pipeline = self._pipeline(0 if strict else self.k)
        items = make_log_items(self.n)
        build = pipeline.build_window(0, items,
                                      pipeline._initial_states())
        final_queue = build.queues[-1]
        return _single_region(
            build.region, lambda: sorted(final_queue.items()))


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (PipelineScenario(), OvertakeScenario(),
                     DiamondScenario(), RacyScenario(),
                     KMeansScenario(), BellmanFordScenario(),
                     StreamScenario())
}


def default_scenarios(backend: str) -> List[str]:
    """Scenario names swept when the user does not pick any."""
    return [name for name, scenario in SCENARIOS.items()
            if scenario.in_default_sweep and backend in scenario.backends]
