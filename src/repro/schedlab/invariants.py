"""Invariant checking over observed executions.

The :class:`InvariantChecker` installs a transition observer (see
:mod:`repro.core.states`) for the duration of a run and audits:

* **Legality** — every observed transition is an arc of
  ``LEGAL_TRANSITIONS`` (the runtime itself enforces this with
  :class:`~repro.core.errors.StateError`, so a violation recorded here
  means the enforcement seam was bypassed);
* **Exactly-once completion** — every task that was observed enters
  ``COMPLETE`` exactly once by the end of the run;
* **Serial elision** — under always-strict valves (thresholds at 1.0)
  any schedule's final outputs must bit-match the serial precise run;
  the scenario harness feeds both sides to :func:`check_equivalence`.

It also subscribes to the :mod:`repro.stream` stage-queue observer
registry for its scope and audits the streaming relaxation contract:

* **Staleness bound** — no drain begins with more unsettled items than
  the queue's bound, and no serve overtakes more than ``bound`` missing
  seqs (a forced-true staleness valve breaks exactly this);
* **Must-delivery** — no must-deliver item is ever shed.

Violations are collected, not raised, so a sweep can report all of them
and still shrink the schedule afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.states import (LEGAL_TRANSITIONS, TaskState,
                           add_transition_observer,
                           remove_transition_observer)


class InvariantViolation:
    """One detected invariant breach."""

    def __init__(self, kind: str, task: str, detail: str):
        self.kind = kind
        self.task = task
        self.detail = detail

    def __repr__(self) -> str:
        return f"InvariantViolation({self.kind}, {self.task}: {self.detail})"

    def __str__(self) -> str:
        return f"[{self.kind}] {self.task}: {self.detail}"


class InvariantChecker:
    """Context manager that audits every task transition in its scope."""

    def __init__(self):
        #: (task name, src, dst) in observation order.
        self.transitions: List[Tuple[str, TaskState, TaskState]] = []
        self.violations: List[InvariantViolation] = []
        self._complete_counts: Dict[int, int] = {}
        self._task_names: Dict[int, str] = {}
        self._states: Dict[int, TaskState] = {}

    # -------------------------------------------------------- observer

    def __enter__(self) -> "InvariantChecker":
        add_transition_observer(self._observe)
        from ..stream.queue import add_stream_observer
        add_stream_observer(self._observe_stream)
        return self

    def __exit__(self, *exc_info) -> None:
        remove_transition_observer(self._observe)
        from ..stream.queue import remove_stream_observer
        remove_stream_observer(self._observe_stream)

    def _observe(self, task, src: TaskState, dst: TaskState) -> None:
        self.transitions.append((task.name, src, dst))
        self._task_names[id(task)] = task.name
        self._states[id(task)] = dst
        if dst not in LEGAL_TRANSITIONS[src]:
            self.violations.append(InvariantViolation(
                "illegal-transition", task.name, f"{src} -> {dst}"))
        if dst is TaskState.COMPLETE:
            count = self._complete_counts.get(id(task), 0) + 1
            self._complete_counts[id(task)] = count
            if count > 1:
                self.violations.append(InvariantViolation(
                    "multiple-completion", task.name,
                    f"entered COMPLETE {count} times"))

    def _observe_stream(self, event) -> None:
        """Audit one stage-queue event against the relaxation contract.

        ``begin`` with more unsettled items than the bound means a
        consumer ran before its staleness valve was honestly satisfied;
        ``serve`` past the bound means the k-out-of-order limit was
        broken; a ``drop`` of a must item is never legal.  The bound is
        the queue's *effective* (possibly autotuned) k at event time.
        """
        if event.action == "begin" and event.missing > event.bound:
            self.violations.append(InvariantViolation(
                "staleness", event.queue,
                f"drain began with {event.missing} items unsettled "
                f"(bound {event.bound:g})"))
        elif event.action == "serve" and event.displacement > event.bound:
            self.violations.append(InvariantViolation(
                "staleness", event.queue,
                f"seq {event.seq} served {event.displacement} positions "
                f"out of order (bound {event.bound:g})"))
        elif event.action == "drop" and event.must:
            self.violations.append(InvariantViolation(
                "must-deliver-drop", event.queue,
                f"must-deliver seq {event.seq} was shed"))

    # ------------------------------------------------------ final audit

    def check_completion(self) -> List[InvariantViolation]:
        """After a successful run: every observed task completed once."""
        for task_id, name in self._task_names.items():
            completions = self._complete_counts.get(task_id, 0)
            if completions != 1:
                self.violations.append(InvariantViolation(
                    "incomplete-task" if completions == 0
                    else "multiple-completion",
                    name, f"entered COMPLETE {completions} times"))
        return self.violations

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return (f"{len(self.transitions)} transitions over "
                    f"{len(self._task_names)} tasks, all legal")
        return "; ".join(str(v) for v in self.violations[:5])


def check_equivalence(observed, expected) -> List[str]:
    """Bit-match ``observed`` against ``expected`` outputs.

    Handles numpy arrays, (nested) tuples/lists, and scalars; returns a
    list of human-readable mismatch descriptions (empty = equivalent).
    """
    mismatches: List[str] = []
    _compare(observed, expected, "output", mismatches)
    return mismatches


def _compare(observed, expected, path: str, mismatches: List[str]) -> None:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep here
        np = None
    if np is not None and (isinstance(observed, np.ndarray) or
                           isinstance(expected, np.ndarray)):
        same_shape = np.shape(observed) == np.shape(expected)
        if not same_shape or not np.array_equal(
                np.asarray(observed), np.asarray(expected)):
            mismatches.append(f"{path}: arrays differ")
        return
    if isinstance(observed, (tuple, list)) and \
            isinstance(expected, (tuple, list)):
        if len(observed) != len(expected):
            mismatches.append(
                f"{path}: length {len(observed)} != {len(expected)}")
            return
        for index, (item_o, item_e) in enumerate(zip(observed, expected)):
            _compare(item_o, item_e, f"{path}[{index}]", mismatches)
        return
    if observed != expected:
        mismatches.append(f"{path}: {observed!r} != {expected!r}")
