"""``python -m repro.schedlab`` — schedule exploration from the shell.

Subcommands
-----------

``sweep``
    Run N controlled schedules per scenario, shrink every simulator
    failure to a minimal decision list, and write replay artifacts.
    Exits 1 if any run failed (so CI fuzz jobs fail loudly), 0 otherwise.

``replay``
    Re-run one artifact's schedule deterministically on the simulator.
    Exits 0 when the recorded failure reproduces, 2 when it does not.

``list``
    Show available scenarios, policies and mutations.

Examples::

    python -m repro.schedlab sweep --seeds 50 --backend sim --strict
    python -m repro.schedlab sweep --scenarios racy --seeds 20 \\
        --artifact-dir artifacts
    python -m repro.schedlab sweep --mutate drop-update-signals \\
        --seeds 200 --stop-first --artifact-dir artifacts
    python -m repro.schedlab replay artifacts/racy-sim-seed3.json
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from ..core.errors import FluidError
from .faults import KINDS
from .harness import (MUTATIONS, load_artifact, replay_artifact, sweep)
from .scenarios import SCENARIOS

_log = logging.getLogger("repro.schedlab")


def _parse_fault(text: str) -> dict:
    """Parse ``kind[:task_pattern[:at_chunk]]`` CLI shorthand."""
    parts = text.split(":")
    if not parts[0] or parts[0] not in KINDS:
        raise argparse.ArgumentTypeError(
            f"fault kind must be one of {', '.join(KINDS)} (got {text!r})")
    fault = {"kind": parts[0]}
    if len(parts) > 1 and parts[1]:
        fault["task"] = parts[1]
    if len(parts) > 2 and parts[2]:
        fault["at_chunk"] = int(parts[2])
    if parts[0] == "delay":
        fault["cost"] = 5.0
    return fault


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.schedlab",
        description="Deterministic schedule exploration + fault injection "
                    "for the Fluid runtime")
    parser.add_argument("--debug", action="store_true",
                        help="re-raise runtime errors with their full "
                             "traceback instead of the one-line error "
                             "(tracebacks are always logged at debug level)")
    commands = parser.add_subparsers(dest="command", required=True)

    sweep_cmd = commands.add_parser(
        "sweep", help="explore N schedules per scenario, shrink failures")
    sweep_cmd.add_argument("--seeds", type=int, default=25,
                           help="seeds per scenario (or schedule cap for "
                                "--policy exhaustive)")
    sweep_cmd.add_argument("--scenarios", default="",
                           help="comma-separated scenario names "
                                "(default: all sweep-eligible)")
    sweep_cmd.add_argument("--backend", default="sim",
                           choices=("sim", "thread", "process"))
    sweep_cmd.add_argument("--policy", default="random",
                           choices=("fifo", "random", "pct", "exhaustive"))
    sweep_cmd.add_argument("--depth", type=int, default=3,
                           help="PCT depth / exhaustive enumeration depth")
    sweep_cmd.add_argument("--jitter", type=float, default=0.0,
                           help="max seconds of seeded wake-point jitter "
                                "(thread backend chaos mode)")
    sweep_cmd.add_argument("--strict", action="store_true",
                           help="strict valves + serial-elision "
                                "equivalence check")
    sweep_cmd.add_argument("--mutate", default=None,
                           choices=sorted(MUTATIONS),
                           help="disable a guard seam for every run "
                                "(mutation testing)")
    sweep_cmd.add_argument("--fault", action="append", default=[],
                           type=_parse_fault, metavar="KIND[:TASK[:CHUNK]]",
                           help="inject a fault (repeatable); kinds: "
                                + ", ".join(KINDS))
    sweep_cmd.add_argument("--artifact-dir", default=None,
                           help="write minimized failing schedules here")
    sweep_cmd.add_argument("--stop-first", action="store_true",
                           help="stop at the first failure")
    sweep_cmd.add_argument("--no-shrink", action="store_true",
                           help="skip schedule minimization")
    sweep_cmd.add_argument("--cores", type=int, default=4,
                           help="simulator virtual cores")
    sweep_cmd.add_argument("--timeout", type=float, default=15.0,
                           help="real-backend wall-clock deadline per run")
    sweep_cmd.add_argument("--workers", type=int, default=2,
                           help="process-backend pool size")
    sweep_cmd.add_argument("--scheduler", default=None,
                           metavar="SPEC",
                           help="repro.sched discipline for every run "
                                "(e.g. edf, bounded:capacity=4,inner="
                                "priority); default: fcfs")

    replay_cmd = commands.add_parser(
        "replay", help="re-run one artifact's schedule on the simulator")
    replay_cmd.add_argument("artifact", help="path to a sweep artifact JSON")
    replay_cmd.add_argument("--trace", action="store_true",
                            help="print the replayed execution trace")
    replay_cmd.add_argument("--trace-out", metavar="PATH",
                            help="write a Chrome/Perfetto trace JSON of "
                                 "the replayed schedule")
    replay_cmd.add_argument("--metrics-out", metavar="PATH",
                            help="write a telemetry metrics JSON dump of "
                                 "the replayed schedule")

    commands.add_parser("list", help="show scenarios, policies, mutations")
    return parser


def _cmd_sweep(options) -> int:
    names = [name.strip() for name in options.scenarios.split(",")
             if name.strip()] or None
    report = sweep(
        names, seeds=options.seeds, policy_name=options.policy,
        backend=options.backend, strict=options.strict,
        mutation=options.mutate, faults=options.fault or None,
        depth=options.depth, jitter_scale=options.jitter,
        artifact_dir=options.artifact_dir, shrink=not options.no_shrink,
        stop_first=options.stop_first, cores=options.cores,
        timeout=options.timeout, workers=options.workers,
        scheduler=options.scheduler, log=print)
    print(f"sweep: {report.runs} runs, {len(report.failures)} failures"
          + (f", {report.shrink_checks} shrink checks"
             if report.shrink_checks else ""))
    for path in report.artifacts:
        print(f"artifact: {path}")
    return 1 if report.failures else 0


def _cmd_replay(options) -> int:
    artifact = load_artifact(options.artifact)
    telemetry = None
    if options.trace_out or options.metrics_out:
        from ..telemetry import Telemetry
        telemetry = Telemetry()
    outcome = replay_artifact(artifact, trace=options.trace,
                              telemetry=telemetry)
    print(outcome.describe())
    if outcome.message:
        print(f"  {outcome.message[:200]}")
    if options.trace and outcome.trace is not None:
        print(outcome.trace.render())
    if telemetry is not None:
        telemetry.write(trace_out=options.trace_out,
                        metrics_out=options.metrics_out)
        for label, path in (("trace", options.trace_out),
                            ("metrics", options.metrics_out)):
            if path:
                print(f"wrote {label} to {path}")
    expected = artifact.get("failure")
    if outcome.failure == expected:
        print(f"reproduced: {expected or 'clean run'}")
        return 0
    print(f"DID NOT reproduce: expected {expected!r}, "
          f"got {outcome.failure!r}")
    return 2


def _cmd_list() -> int:
    print("scenarios:")
    for name, scenario in sorted(SCENARIOS.items()):
        flags = []
        if not scenario.in_default_sweep:
            flags.append("opt-in")
        if not scenario.supports_strict:
            flags.append("no-strict")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        print(f"  {name:<14} backends={','.join(scenario.backends)}{suffix}")
    print("policies: fifo, random, pct, exhaustive")
    print("mutations: " + ", ".join(sorted(MUTATIONS)))
    print("fault kinds: " + ", ".join(KINDS))
    from ..sched import SCHEDULER_NAMES

    print("schedulers: " + ", ".join(SCHEDULER_NAMES))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    options = _build_parser().parse_args(argv)
    try:
        if options.command == "sweep":
            return _cmd_sweep(options)
        if options.command == "replay":
            return _cmd_replay(options)
        return _cmd_list()
    except FluidError as error:
        _log.debug("schedlab %s failed", options.command, exc_info=True)
        if options.debug:
            raise
        print(f"error: {error}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
