"""Schedule policies: who wins every tie, and in what order signals land.

A :class:`SchedulePolicy` is consulted at the runtime's nondeterminism
points — event-queue ties, core allocation among ready tasks, guard
signal fan-out order, worker dispatch — through two primitives:

``choose(point, keys)``
    Pick one of ``len(keys) >= 2`` simultaneous alternatives.  ``point``
    names the decision site (``"event"``, ``"core"``, ``"signal"``,
    ``"wake"``, ``"dispatch"``, ...); ``keys`` label the alternatives
    (task or event names) so priority policies can be identity-aware.

``jitter(point)``
    Seconds of artificial pre-decision delay for the *real* backends,
    where wake ordering cannot be dictated but can be perturbed (the
    chaos-mode approach).  Always 0.0 for virtual-time exploration.

``order(...)`` derives a full permutation from repeated ``choose`` calls
so record/replay only ever has to capture one kind of decision.

Determinism contract: given the same program, fault plan and policy
decisions, the simulator's decision *sites* occur in the same sequence —
so a recorded list of ``(point, n, choice)`` triples replays a run
exactly.  Replay of real-backend runs is best-effort (thread timing is
not controlled); deterministic replay artifacts always target ``sim``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..core.errors import SchedulerError

#: One recorded decision: (decision point, arity, chosen index).
Decision = Tuple[str, int, int]


class SchedulePolicy:
    """Base policy: FIFO everywhere (the runtime's historical order)."""

    name = "fifo"

    def begin_run(self) -> None:
        """Reset per-run state; called once before each explored run."""

    def choose(self, point: str, keys: Sequence) -> int:
        """Pick among >= 2 simultaneous alternatives; 0 keeps FIFO."""
        return 0

    def order(self, point: str, keys: Sequence) -> List[int]:
        """A permutation of ``range(len(keys))`` built from choose()."""
        n = len(keys)
        if n <= 1:
            return list(range(n))
        remaining = list(range(n))
        out: List[int] = []
        while len(remaining) > 1:
            index = self.choose(point, [keys[i] for i in remaining])
            out.append(remaining.pop(index))
        out.append(remaining[0])
        return out

    def jitter(self, point: str) -> float:
        """Artificial delay (seconds) before a real-backend wake point."""
        return 0.0

    def describe(self) -> Dict:
        return {"policy": self.name}


class FifoPolicy(SchedulePolicy):
    """Explicit name for the default ordering."""


class SeededRandomPolicy(SchedulePolicy):
    """Uniform random tie-breaks from a seeded PRNG.

    ``jitter_scale > 0`` additionally perturbs real-backend wake points
    with uniform delays in ``[0, jitter_scale)`` seconds.
    """

    name = "random"

    def __init__(self, seed: int = 0, jitter_scale: float = 0.0):
        self.seed = seed
        self.jitter_scale = jitter_scale
        self._rng = random.Random(seed)

    def begin_run(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, point: str, keys: Sequence) -> int:
        return self._rng.randrange(len(keys))

    def jitter(self, point: str) -> float:
        if self.jitter_scale <= 0.0:
            return 0.0
        return self._rng.random() * self.jitter_scale

    def describe(self) -> Dict:
        return {"policy": self.name, "seed": self.seed,
                "jitter_scale": self.jitter_scale}


class PCTPolicy(SchedulePolicy):
    """PCT-style priority scheduling (Burckhardt et al., ASPLOS'10).

    Every distinct key gets a random priority on first sight; each
    decision picks the highest-priority alternative.  ``depth - 1``
    priority-change points are scattered over the first
    ``expected_length`` decisions: when one is crossed, the key just
    scheduled is demoted below everything else.  This finds bugs that
    need a specific task to be *starved*, which uniform random rarely
    produces.
    """

    name = "pct"

    def __init__(self, seed: int = 0, depth: int = 3,
                 expected_length: int = 256):
        if depth < 1:
            raise SchedulerError("PCT depth must be >= 1")
        self.seed = seed
        self.depth = depth
        self.expected_length = max(1, expected_length)
        self.begin_run()

    def begin_run(self) -> None:
        self._rng = random.Random(self.seed)
        self._priorities: Dict[str, float] = {}
        self._decisions = 0
        self._demotions = 0.0
        self._change_points = set(
            self._rng.sample(range(self.expected_length),
                             k=min(self.depth - 1, self.expected_length)))

    def _priority(self, key: str) -> float:
        if key not in self._priorities:
            self._priorities[key] = self._rng.random()
        return self._priorities[key]

    def choose(self, point: str, keys: Sequence) -> int:
        labels = [str(key) for key in keys]
        index = max(range(len(labels)),
                    key=lambda i: (self._priority(labels[i]), -i))
        if self._decisions in self._change_points:
            # Demote the winner below every priority handed out so far.
            self._demotions += 1.0
            self._priorities[labels[index]] = -self._demotions
            index = max(range(len(labels)),
                        key=lambda i: (self._priority(labels[i]), -i))
        self._decisions += 1
        return index

    def describe(self) -> Dict:
        return {"policy": self.name, "seed": self.seed, "depth": self.depth}


class ExhaustivePolicy(SchedulePolicy):
    """DFS enumeration of every tie-break combination up to ``depth``.

    Decisions beyond the first ``depth`` decision sites fall back to
    FIFO, bounding the (otherwise exponential) schedule space.  Use::

        policy = ExhaustivePolicy(depth=6)
        while True:
            policy.begin_run()
            run_once(policy)
            if not policy.advance():
                break
    """

    name = "exhaustive"

    def __init__(self, depth: int = 6):
        if depth < 1:
            raise SchedulerError("exhaustive depth must be >= 1")
        self.depth = depth
        #: DFS stack of [chosen index, arity seen at that site].
        self._stack: List[List[int]] = []
        self._position = 0
        self.schedules_run = 0

    def begin_run(self) -> None:
        self._position = 0
        self.schedules_run += 1

    def choose(self, point: str, keys: Sequence) -> int:
        position = self._position
        self._position += 1
        if position < len(self._stack):
            self._stack[position][1] = len(keys)
            return self._stack[position][0]
        if position < self.depth:
            self._stack.append([0, len(keys)])
        return 0

    def advance(self) -> bool:
        """Move to the next unexplored prefix; False when exhausted."""
        while self._stack:
            self._stack[-1][0] += 1
            if self._stack[-1][0] < self._stack[-1][1]:
                return True
            self._stack.pop()
        return False

    def describe(self) -> Dict:
        return {"policy": self.name, "depth": self.depth}


class RecordingPolicy(SchedulePolicy):
    """Wraps another policy and records every decision it makes."""

    name = "recording"

    def __init__(self, inner: SchedulePolicy):
        self.inner = inner
        self.decisions: List[Decision] = []

    def begin_run(self) -> None:
        self.inner.begin_run()
        self.decisions = []

    def choose(self, point: str, keys: Sequence) -> int:
        index = self.inner.choose(point, keys)
        self.decisions.append((point, len(keys), index))
        return index

    def jitter(self, point: str) -> float:
        return self.inner.jitter(point)

    def describe(self) -> Dict:
        description = dict(self.inner.describe())
        description["recorded"] = len(self.decisions)
        return description


class ReplayPolicy(SchedulePolicy):
    """Replays a recorded decision list; FIFO once it runs dry.

    Replay is *tolerant*: a decision whose arity no longer matches (the
    program changed under the schedule) clamps the recorded choice into
    range instead of failing, so shrunk and hand-edited schedules stay
    usable.  ``divergences`` counts how often that happened.
    """

    name = "replay"

    def __init__(self, decisions: Sequence[Decision]):
        self._decisions = [tuple(d) for d in decisions]
        self.begin_run()

    def begin_run(self) -> None:
        self._cursor = 0
        self.divergences = 0

    def choose(self, point: str, keys: Sequence) -> int:
        if self._cursor >= len(self._decisions):
            return 0
        recorded_point, recorded_n, choice = self._decisions[self._cursor]
        self._cursor += 1
        if recorded_point != point or recorded_n != len(keys):
            self.divergences += 1
        if choice >= len(keys):
            self.divergences += 1
            return 0
        return choice

    def describe(self) -> Dict:
        return {"policy": self.name, "decisions": len(self._decisions)}


def make_policy(name: str, seed: int = 0, depth: int = 3,
                jitter_scale: float = 0.0) -> SchedulePolicy:
    """Build a policy by CLI name."""
    if name == "fifo":
        return FifoPolicy()
    if name == "random":
        return SeededRandomPolicy(seed, jitter_scale=jitter_scale)
    if name == "pct":
        return PCTPolicy(seed, depth=depth)
    if name == "exhaustive":
        return ExhaustivePolicy(depth=depth)
    raise SchedulerError(
        f"unknown schedule policy {name!r}; "
        "expected fifo, random, pct or exhaustive")
