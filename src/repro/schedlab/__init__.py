"""SchedLab: deterministic schedule exploration + fault injection.

The Fluid correctness story (paper Section 6) is that the seven-state
guard machine degenerates to a precise serial execution in the worst
case; with real thread/process backends the guard decisions run truly
concurrently, and relaxation bugs hide in rare schedules rather than the
happy path.  SchedLab makes those schedules reachable and repeatable:

* :mod:`~repro.schedlab.policy` — pluggable :class:`SchedulePolicy`
  implementations (seeded random, PCT-style priorities, exhaustive
  enumeration up to a depth, record/replay) consumed by the event queue,
  the simulator's core allocator, the guard's signal fan-out, and the
  real backends' wake points;
* :mod:`~repro.schedlab.faults` — :class:`FaultPlan`: body exceptions,
  transient valve flakiness, artificial delays, worker kills;
* :mod:`~repro.schedlab.invariants` — :class:`InvariantChecker`: every
  observed transition is a ``LEGAL_TRANSITIONS`` arc, every task reaches
  ``COMPLETE`` exactly once, and strict-valve schedules bit-match the
  serial precise run;
* :mod:`~repro.schedlab.harness` / ``python -m repro.schedlab`` — seed
  sweeps over scenario apps, failure shrinking, replayable artifacts.
"""

from .faults import Fault, FaultInjected, FaultPlan
from .invariants import InvariantChecker, InvariantViolation
from .policy import (ExhaustivePolicy, FifoPolicy, PCTPolicy,
                     RecordingPolicy, ReplayPolicy, SchedulePolicy,
                     SeededRandomPolicy, make_policy)
from .harness import (SCENARIOS, MUTATIONS, Outcome, run_scenario, sweep)
from .shrink import shrink_schedule

__all__ = [
    "Fault", "FaultInjected", "FaultPlan",
    "InvariantChecker", "InvariantViolation",
    "SchedulePolicy", "FifoPolicy", "SeededRandomPolicy", "PCTPolicy",
    "ExhaustivePolicy", "RecordingPolicy", "ReplayPolicy", "make_policy",
    "SCENARIOS", "MUTATIONS", "Outcome", "run_scenario", "sweep",
    "shrink_schedule",
]
