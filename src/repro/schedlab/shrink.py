"""Schedule shrinking: minimize a recorded decision list.

A failing run's schedule is a list of ``(point, arity, choice)`` triples
(see :mod:`~repro.schedlab.policy`).  Replay is positional and falls
back to FIFO (choice 0) once the list runs dry, which gives two cheap,
alignment-preserving reduction moves:

* **truncate** — keep only a prefix; everything after it becomes FIFO;
* **zero** — set one choice to 0 (the FIFO default) in place.

Deleting interior entries is deliberately *not* attempted: it would
shift every later decision onto a different site and garble the replay.
The result is a schedule whose non-default choices are exactly the
ordering constraints needed to reproduce the failure — typically one or
two entries for a real ordering bug.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from .policy import Decision


def shrink_schedule(decisions: Sequence[Decision],
                    still_fails: Callable[[Sequence[Decision]], bool],
                    budget: int = 256) -> Tuple[List[Decision], int]:
    """Greedy minimization of ``decisions`` preserving ``still_fails``.

    ``still_fails(candidate)`` must deterministically re-run the program
    under ``candidate`` and report whether the *same* failure recurs.
    Returns ``(minimized, checks_used)``; the minimized list is always
    verified failing (or is the untouched original, which the caller
    already observed failing).  ``budget`` caps verification runs.
    """
    original = [tuple(decision) for decision in decisions]
    checks = 0

    def check(candidate: Sequence[Decision]) -> bool:
        nonlocal checks
        if checks >= budget:
            return False
        checks += 1
        return still_fails(candidate)

    # Phase 1: shortest failing prefix.  The search assumes prefix
    # monotonicity (a longer prefix of a failing schedule still fails),
    # which holds for single-cause ordering bugs; the final verify below
    # protects against the schedules where it does not.
    low, high = 0, len(original)
    while low < high:
        mid = (low + high) // 2
        if check(original[:mid]):
            high = mid
        else:
            low = mid + 1
    candidate = original[:high]
    if high < len(original) and not check(candidate):
        candidate = original

    # Phase 2: zero individual non-default choices, last site first
    # (later decisions are the likeliest to be incidental).
    result = list(candidate)
    for index in range(len(result) - 1, -1, -1):
        point, arity, choice = result[index]
        if choice == 0:
            continue
        trial = list(result)
        trial[index] = (point, arity, 0)
        if check(trial):
            result = trial

    # Phase 3: trailing zeros are replay no-ops (a dry replay answers 0
    # anyway) — drop them without spending verification runs.
    while result and result[-1][2] == 0:
        result.pop()

    return result, checks
