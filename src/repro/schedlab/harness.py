"""The SchedLab harness: run scenarios under controlled schedules.

One :func:`run_scenario` call executes one scenario on one backend under
one schedule policy (+ optional fault plan and runtime mutation), with
the :class:`~repro.schedlab.invariants.InvariantChecker` installed, and
classifies what happened into an :class:`Outcome`.  :func:`sweep` drives
many such runs (seed sweeps or exhaustive enumeration), shrinks every
simulator failure to a minimal decision list, and serializes each one as
a replayable JSON artifact.

Mutation testing: the :data:`MUTATIONS` registry names guard wake-up
seams that can be disabled for the duration of a run (e.g. dropping the
producer-completion update signal).  A healthy SchedLab setup must catch
every mutation within a modest seed budget — that is the harness's own
acceptance test.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core import guard as guard_module
from ..core.errors import (FluidError, SchedulerError, StateError,
                           TaskBodyError)
from .faults import FaultInjected, FaultPlan
from .invariants import InvariantChecker, check_equivalence
from .policy import (Decision, ExhaustivePolicy, FifoPolicy, RecordingPolicy,
                     ReplayPolicy, SchedulePolicy, make_policy)
from .scenarios import SCENARIOS, default_scenarios
from .shrink import shrink_schedule

ARTIFACT_VERSION = 1

#: Guard wake-up seams that mutation testing may disable: mutation name
#: -> Coordinator method replaced by a no-op for the run.  Each of these
#: is load-bearing — dropping it must deadlock some default scenario.
MUTATIONS: Dict[str, str] = {
    # Producer completion no longer wakes children waiting in W/D.
    "drop-update-signals": "_deliver_update_signals",
    # A task entering W never re-runs on already-advanced inputs and
    # never requests more precise data from idle producers.
    "drop-wait-poke": "_poke_waiting",
}


@contextmanager
def apply_mutation(name: Optional[str]):
    """Temporarily replace a Coordinator seam with a no-op."""
    if not name:
        yield
        return
    if name not in MUTATIONS:
        raise SchedulerError(
            f"unknown mutation {name!r}; expected one of "
            + ", ".join(sorted(MUTATIONS)))
    attribute = MUTATIONS[name]
    original = getattr(guard_module.Coordinator, attribute)

    def disabled(self, *args, **kwargs):
        return None

    setattr(guard_module.Coordinator, attribute, disabled)
    try:
        yield
    finally:
        setattr(guard_module.Coordinator, attribute, original)


@dataclass
class Outcome:
    """What one controlled run did."""

    scenario: str
    backend: str
    strict: bool = False
    mutation: Optional[str] = None
    seed: Optional[int] = None
    #: repro.sched discipline spec the run used (None = default FCFS).
    scheduler: Optional[str] = None
    #: repro.tuning autotune spec the run used (None = static valves).
    autotune: Optional[str] = None
    policy: Dict = field(default_factory=dict)
    #: None = the run passed every check; otherwise a failure kind such
    #: as "scheduler-error", "task-body-error:RacyOrderingBug",
    #: "invariant" or "equivalence".
    failure: Optional[str] = None
    message: str = ""
    decisions: List[Decision] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    faults: List[dict] = field(default_factory=list)
    fault_kinds: List[str] = field(default_factory=list)
    makespan: Optional[float] = None
    divergences: int = 0
    trace: Any = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_artifact(self) -> Dict:
        """The JSON-serializable replay record for this run."""
        return {
            "version": ARTIFACT_VERSION,
            "scenario": self.scenario,
            "backend": self.backend,
            "strict": self.strict,
            "mutation": self.mutation,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "autotune": self.autotune,
            "policy": self.policy,
            "failure": self.failure,
            "message": self.message,
            "faults": self.faults,
            "decisions": [list(d) for d in self.decisions],
        }

    def describe(self) -> str:
        status = "ok" if self.ok else f"FAIL[{self.failure}]"
        extras = []
        if self.seed is not None:
            extras.append(f"seed={self.seed}")
        if self.mutation:
            extras.append(f"mutation={self.mutation}")
        if self.scheduler:
            extras.append(f"scheduler={self.scheduler}")
        if self.autotune:
            extras.append(f"autotune={self.autotune}")
        if self.strict:
            extras.append("strict")
        suffix = (" " + " ".join(extras)) if extras else ""
        return f"{self.scenario}/{self.backend}{suffix}: {status}"


def classify_failure(error: Exception) -> Tuple[str, str]:
    """Map an exception from a run to a stable failure kind.

    The kind is what the shrinker preserves while minimizing, so it must
    be deterministic for a replayed schedule: body errors carry the
    causing exception's class name, fault injections get their own kind.
    """
    if isinstance(error, TaskBodyError):
        cause = error.__cause__
        if isinstance(cause, FaultInjected):
            return "fault-injected", str(error)
        if cause is not None:
            return f"task-body-error:{type(cause).__name__}", str(error)
        return "task-body-error", str(error)
    if isinstance(error, StateError):
        return "state-error", str(error)
    if isinstance(error, SchedulerError):
        return "scheduler-error", str(error)
    if isinstance(error, FluidError):
        return "fluid-error", str(error)
    return "unexpected-error", repr(error)


def _normalize_faults(faults) -> List[dict]:
    if faults is None:
        return []
    if isinstance(faults, FaultPlan):
        return faults.to_list()
    return [dict(record) for record in faults]


def _build_executor(backend: str, policy: SchedulePolicy, *, cores: int,
                    timeout: float, workers: int, trace: bool,
                    telemetry=None, scheduler=None, autotune=None):
    if backend == "sim":
        from ..runtime.simulator import Overheads, SimExecutor

        return SimExecutor(cores=cores, overheads=Overheads.zero(),
                           policy=policy, trace=trace, telemetry=telemetry,
                           scheduler=scheduler, autotune=autotune)
    if backend == "thread":
        from ..runtime.thread_backend import ThreadExecutor

        return ThreadExecutor(policy=policy, timeout=timeout,
                              telemetry=telemetry, scheduler=scheduler,
                              autotune=autotune)
    if backend == "process":
        from ..runtime.process_backend import ProcessExecutor

        return ProcessExecutor(workers=workers, policy=policy,
                               timeout=timeout, telemetry=telemetry,
                               scheduler=scheduler, autotune=autotune)
    raise SchedulerError(
        f"unknown backend {backend!r}; expected sim, thread or process")


def run_scenario(scenario_name: str, *,
                 backend: str = "sim",
                 policy: Optional[SchedulePolicy] = None,
                 seed: Optional[int] = None,
                 faults=None,
                 strict: bool = False,
                 mutation: Optional[str] = None,
                 trace: bool = False,
                 cores: int = 4,
                 timeout: float = 15.0,
                 workers: int = 2,
                 telemetry=None,
                 scheduler: Optional[str] = None,
                 autotune: Optional[str] = None) -> Outcome:
    """Execute one scenario under full SchedLab control.

    Every fault plan is rebuilt fresh from its serialized form, so a
    run never observes another run's consumed fault budgets.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) instruments the
    run with structured metrics and a Perfetto-exportable trace.

    ``scheduler`` (a :mod:`repro.sched` spec string such as ``"edf"`` or
    ``"bounded:capacity=4"``) selects the ready-queue discipline the
    backend runs under; SchedLab policies compose with it — the policy
    resolves whatever tie-break freedom the discipline leaves open.  It
    is recorded in the outcome and its replay artifact.

    ``autotune`` (a :mod:`repro.tuning` spec string such as
    ``"accuracy_floor:target=0.9"``) enables closed-loop valve
    autotuning for the run; its ``tune.*`` adjustment events ride the
    same bus as everything else, so adjustments are visible in replays.
    Recorded in the outcome and its replay artifact like ``scheduler``.
    """
    try:
        scenario = SCENARIOS[scenario_name]
    except KeyError:
        raise SchedulerError(
            f"unknown scenario {scenario_name!r}; expected one of "
            + ", ".join(sorted(SCENARIOS))) from None
    if backend not in scenario.backends:
        raise SchedulerError(
            f"scenario {scenario_name!r} does not support the {backend!r} "
            f"backend (supported: {', '.join(scenario.backends)})")
    if strict and not scenario.supports_strict:
        raise SchedulerError(
            f"scenario {scenario_name!r} has no strict build")

    inner = policy if policy is not None else FifoPolicy()
    recorder = inner if isinstance(inner, RecordingPolicy) \
        else RecordingPolicy(inner)
    recorder.begin_run()

    fault_records = _normalize_faults(faults)
    plan = FaultPlan.from_list(fault_records) if fault_records else None

    outcome = Outcome(scenario=scenario_name, backend=backend, strict=strict,
                      mutation=mutation, seed=seed,
                      scheduler=(scheduler if scheduler is None
                                 else str(scheduler)),
                      autotune=(autotune if autotune is None
                                else str(autotune)),
                      policy=inner.describe(), faults=fault_records)
    checker = InvariantChecker()
    run = scenario.fresh(strict=strict)
    if plan is not None:
        plan.attach(run.regions)
    with checker, apply_mutation(mutation):
        try:
            executor = _build_executor(backend, recorder, cores=cores,
                                       timeout=timeout, workers=workers,
                                       trace=trace, telemetry=telemetry,
                                       scheduler=scheduler,
                                       autotune=autotune)
            run.submit(executor)
            result = executor.run()
            outcome.makespan = result.makespan
            outcome.trace = getattr(result, "trace", None)
        except Exception as error:  # noqa: BLE001 - classified below
            outcome.failure, outcome.message = classify_failure(error)
    outcome.decisions = list(recorder.decisions)
    outcome.divergences = getattr(inner, "divergences", 0)
    if plan is not None:
        outcome.fault_kinds = sorted(plan.kinds_fired())
    if outcome.failure is None:
        checker.check_completion()
        if not checker.ok:
            outcome.failure = "invariant"
            outcome.message = checker.summary()
            outcome.violations = [str(v) for v in checker.violations]
        elif strict:
            mismatches = check_equivalence(run.extract(),
                                           scenario.precise_output())
            if mismatches:
                outcome.failure = "equivalence"
                outcome.message = "; ".join(mismatches[:5])
    return outcome


# ---------------------------------------------------------------- artifacts


def write_artifact(directory: str, outcome: Outcome,
                   minimized: Optional[Sequence[Decision]] = None) -> str:
    """Serialize a failing outcome (and its shrunk schedule) to JSON."""
    os.makedirs(directory, exist_ok=True)
    record = outcome.to_artifact()
    if minimized is not None:
        record["decisions"] = [list(d) for d in minimized]
        record["policy"] = {"policy": "replay",
                            "decisions": len(record["decisions"])}
    parts = [outcome.scenario, outcome.backend]
    if outcome.mutation:
        parts.append(outcome.mutation)
    if outcome.seed is not None:
        parts.append(f"seed{outcome.seed}")
    path = os.path.join(directory, "-".join(parts) + ".json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_artifact(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if record.get("version") != ARTIFACT_VERSION:
        raise SchedulerError(
            f"artifact {path!r} has version {record.get('version')!r}; "
            f"this harness reads version {ARTIFACT_VERSION}")
    return record


def replay_artifact(artifact, *, trace: bool = False,
                    cores: int = 4, telemetry=None) -> Outcome:
    """Re-run a serialized failing schedule on the simulator.

    Replay always targets ``sim`` regardless of the backend that found
    the failure: decision lists are only deterministic under virtual
    time (real backends contribute seeded jitter, not a total order).
    """
    if isinstance(artifact, str):
        artifact = load_artifact(artifact)
    return run_scenario(
        artifact["scenario"], backend="sim",
        policy=ReplayPolicy([tuple(d) for d in artifact["decisions"]]),
        seed=artifact.get("seed"),
        faults=artifact.get("faults") or None,
        strict=bool(artifact.get("strict")),
        mutation=artifact.get("mutation"),
        scheduler=artifact.get("scheduler"),
        trace=trace, cores=cores, telemetry=telemetry)


# -------------------------------------------------------------------- sweep


@dataclass
class SweepReport:
    """Aggregate result of a :func:`sweep`."""

    runs: int = 0
    failures: List[Outcome] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)
    shrink_checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def shrink_outcome(outcome: Outcome, *, cores: int = 4,
                   budget: int = 256) -> Tuple[List[Decision], int]:
    """Minimize a failing sim outcome's decision list.

    Returns the smallest decision list found that still produces the
    same failure kind, plus the number of verification runs spent.
    """
    target = outcome.failure

    def still_fails(decisions: Sequence[Decision]) -> bool:
        replayed = run_scenario(
            outcome.scenario, backend="sim",
            policy=ReplayPolicy(decisions), faults=outcome.faults or None,
            strict=outcome.strict, mutation=outcome.mutation,
            scheduler=outcome.scheduler, cores=cores)
        return replayed.failure == target

    return shrink_schedule(outcome.decisions, still_fails, budget=budget)


def sweep(scenario_names: Optional[Sequence[str]] = None, *,
          seeds: int = 25,
          policy_name: str = "random",
          backend: str = "sim",
          strict: bool = False,
          mutation: Optional[str] = None,
          faults=None,
          depth: int = 3,
          jitter_scale: float = 0.0,
          artifact_dir: Optional[str] = None,
          shrink: bool = True,
          stop_first: bool = False,
          cores: int = 4,
          timeout: float = 15.0,
          workers: int = 2,
          scheduler: Optional[str] = None,
          log: Optional[Callable[[str], None]] = None) -> SweepReport:
    """Run many controlled schedules and harvest failures.

    ``policy_name == "exhaustive"`` enumerates tie-break combinations up
    to ``depth`` (``seeds`` caps the number of schedules); every other
    policy is rebuilt per seed in ``range(seeds)``.  Simulator failures
    are shrunk and written to ``artifact_dir`` as replayable artifacts.
    """
    names = list(scenario_names) if scenario_names \
        else default_scenarios(backend)
    fault_records = _normalize_faults(faults)
    report = SweepReport()

    def emit(text: str) -> None:
        if log is not None:
            log(text)

    def handle(outcome: Outcome) -> bool:
        """Record one outcome; True = the sweep should stop."""
        report.runs += 1
        if outcome.ok:
            return False
        report.failures.append(outcome)
        emit(outcome.describe() + f" — {outcome.message[:120]}")
        minimized = None
        if shrink and backend == "sim" and outcome.decisions:
            minimized, checks = shrink_outcome(outcome, cores=cores)
            report.shrink_checks += checks
            emit(f"  shrunk {len(outcome.decisions)} -> "
                 f"{len(minimized)} decisions ({checks} checks)")
        if artifact_dir:
            path = write_artifact(artifact_dir, outcome, minimized)
            report.artifacts.append(path)
            emit(f"  artifact: {path}")
        return stop_first

    for name in names:
        scenario = SCENARIOS[name]
        if backend not in scenario.backends:
            emit(f"{name}: skipped (no {backend} backend support)")
            continue
        effective_strict = strict and scenario.supports_strict
        common = dict(backend=backend, faults=fault_records or None,
                      strict=effective_strict, mutation=mutation,
                      cores=cores, timeout=timeout, workers=workers,
                      scheduler=scheduler)
        if policy_name == "exhaustive":
            policy = ExhaustivePolicy(depth=depth)
            while policy.schedules_run < seeds:
                outcome = run_scenario(name, policy=policy, **common)
                if handle(outcome):
                    return report
                if not policy.advance():
                    break
            emit(f"{name}: explored {policy.schedules_run} schedules")
        else:
            for seed in range(seeds):
                policy = make_policy(policy_name, seed=seed, depth=depth,
                                     jitter_scale=jitter_scale
                                     if backend != "sim" else 0.0)
                outcome = run_scenario(name, policy=policy, seed=seed,
                                       **common)
                if handle(outcome):
                    return report
    return report
