"""Fault plans: controlled failures at chosen execution steps.

A :class:`FaultPlan` is attached to a region (``region.fault_plan =
plan``) before the run; the core seams consult it:

* body faults (``raise``, ``delay``) are applied by
  :meth:`~repro.core.task.FluidTask.make_generator` wrapping the body
  generator — a ``raise`` fires at a chosen chunk boundary of a chosen
  run, a ``delay`` stretches a chunk (extra virtual cost under the
  simulator, a real sleep under the thread/process backends);
* valve faults (``valve_false``, ``valve_true``) transiently force a
  task's start/end valve verdict for a bounded number of checks —
  modelling flaky quality functions and premature starts;
* ``kill_worker`` (process backend only) SIGKILLs the worker a task was
  just dispatched to, exercising the parent's dead-worker detection.

Plans are JSON-serializable so a failing (schedule, faults) pair can be
stored in one replay artifact.  Every fault that actually fires is
recorded in :attr:`FaultPlan.fired` so tests can assert coverage.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from fnmatch import fnmatchcase
from typing import Iterable, List, Optional

from ..core.errors import FluidError

#: Fault kinds a plan may contain.
KINDS = ("raise", "delay", "valve_false", "valve_true", "kill_worker")


class FaultInjected(FluidError):
    """Raised from inside a task body by a ``raise`` fault."""


@dataclass
class Fault:
    """One planned fault.

    ``task`` is an ``fnmatch`` pattern over task names; ``run_index``
    restricts the fault to one run attempt (None = any attempt);
    ``at_chunk`` positions body faults at a chunk boundary; ``count``
    bounds how many times the fault fires (valve flakes are transient
    by nature); ``cost``/``wall`` size a ``delay`` in virtual cost units
    and wall-clock seconds respectively.
    """

    kind: str
    task: str = "*"
    run_index: Optional[int] = None
    at_chunk: int = 0
    count: int = 1
    cost: float = 0.0
    wall: float = 0.0
    valve: str = "any"          # "start" | "end" | "any" (valve faults)
    remaining: int = field(default=-1, repr=False)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise FluidError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if self.remaining < 0:
            self.remaining = self.count

    def matches(self, task_name: str, run_index: Optional[int]) -> bool:
        if self.remaining == 0:
            return False
        if not fnmatchcase(task_name, self.task):
            return False
        if self.run_index is not None and run_index is not None and \
                self.run_index != run_index:
            return False
        return True

    def fire(self) -> None:
        if self.remaining > 0:
            self.remaining -= 1


class FaultPlan:
    """A set of faults plus a log of the ones that actually fired."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: List[Fault] = list(faults)
        #: (kind, task name, run index, detail) for every fired fault.
        self.fired: List[tuple] = []

    # ------------------------------------------------------------- seams

    def wrap_body(self, task, generator):
        """Wrap a task-body generator with raise/delay faults.

        A ``raise`` fault replaces the matching chunk boundary with an
        exception; a ``delay`` fault inserts an extra chunk of
        ``fault.cost`` virtual time (which the simulator serves like any
        other chunk) and sleeps ``fault.wall`` real seconds (visible to
        the thread/process backends).
        """
        def wrapped():
            chunk = 0
            for cost in generator:
                extra = self._body_step(task, chunk)
                if extra > 0.0:
                    yield extra
                yield cost
                chunk += 1
            self._body_step(task, chunk, final=True)
        return wrapped()

    def _body_step(self, task, chunk: int, final: bool = False) -> float:
        extra_cost = 0.0
        for fault in self.faults:
            if fault.kind != "raise" and fault.kind != "delay":
                continue
            if not fault.matches(task.name, task.run_index):
                continue
            if fault.at_chunk != chunk and not (final and fault.at_chunk >= chunk):
                continue
            fault.fire()
            if fault.kind == "raise":
                self.fired.append(("raise", task.name, task.run_index, chunk))
                raise FaultInjected(
                    f"fault plan: injected failure in task {task.name!r} "
                    f"(run {task.run_index}, chunk {chunk})")
            self.fired.append(("delay", task.name, task.run_index, chunk))
            extra_cost += fault.cost
            if fault.wall > 0.0:
                time.sleep(fault.wall)
        return extra_cost

    def valve_override(self, task, which: str) -> Optional[bool]:
        """Transiently force a start ("start") / end ("end") verdict."""
        for fault in self.faults:
            if fault.kind not in ("valve_false", "valve_true"):
                continue
            if fault.valve not in ("any", which):
                continue
            if not fault.matches(task.name, task.run_index):
                continue
            fault.fire()
            self.fired.append((fault.kind, task.name, task.run_index, which))
            return fault.kind == "valve_true"
        return None

    def should_kill_worker(self, task) -> bool:
        """Process backend: SIGKILL the worker this task was sent to?"""
        for fault in self.faults:
            if fault.kind != "kill_worker":
                continue
            if not fault.matches(task.name, task.run_index):
                continue
            fault.fire()
            self.fired.append(
                ("kill_worker", task.name, task.run_index, None))
            return True
        return False

    # ----------------------------------------------------- serialization

    def to_list(self) -> List[dict]:
        out = []
        for fault in self.faults:
            record = asdict(fault)
            record.pop("remaining", None)
            out.append(record)
        return out

    @classmethod
    def from_list(cls, records: Iterable[dict]) -> "FaultPlan":
        return cls(Fault(**record) for record in records)

    def attach(self, regions) -> "FaultPlan":
        """Install this plan on every region in ``regions``."""
        for region in regions:
            region.fault_plan = self
        return self

    def kinds_fired(self) -> set:
        return {entry[0] for entry in self.fired}
