"""Synthetic image generation for Edge Detection and K-means.

Images are float64 grayscale in ``[0, 255]`` built from smooth gradients
plus geometric shapes, with controllable additive noise (drives the
Edge-Detection noise-filter stage) and *pixel diversity* — the number of
distinct intensity clusters — which is the axis the paper varies for
K-means ("three input images with different pixel diversities").
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def synthetic_image(height: int = 64, width: int = 64,
                    diversity: int = 4, noise: float = 8.0,
                    seed: int = 0) -> np.ndarray:
    """Generate one seeded grayscale image.

    Parameters
    ----------
    diversity:
        Number of distinct intensity plateaus (cluster structure for
        K-means).
    noise:
        Standard deviation of additive Gaussian noise (what the
        Gaussian/Mean filter stage of Edge Detection removes).
    """
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width]
    image = 40.0 + 30.0 * np.sin(xs / max(4, width // 8)) \
        + 30.0 * np.cos(ys / max(4, height // 8))

    # Plateau structure: 'diversity' intensity levels in random rectangles.
    levels = np.linspace(30.0, 225.0, max(1, diversity))
    for level in levels:
        y0 = int(rng.integers(0, max(1, height - height // 4)))
        x0 = int(rng.integers(0, max(1, width - width // 4)))
        h = int(rng.integers(height // 8 + 1, height // 3 + 2))
        w = int(rng.integers(width // 8 + 1, width // 3 + 2))
        image[y0:y0 + h, x0:x0 + w] = level

    image += rng.normal(0.0, noise, size=image.shape)
    return np.clip(image, 0.0, 255.0)


def synthetic_rgb_image(height: int = 64, width: int = 64,
                        diversity: int = 4, noise: float = 8.0,
                        seed: int = 0) -> np.ndarray:
    """A seeded color image: three correlated channels with per-channel
    plateau structure (the natural input for multichannel K-means)."""
    channels = [synthetic_image(height, width, diversity=diversity,
                                noise=noise, seed=seed + offset)
                for offset in (0, 1000, 2000)]
    return np.stack(channels, axis=-1)


def image_classes(height: int = 64, width: int = 64,
                  seed: int = 0) -> Dict[str, np.ndarray]:
    """The three input classes used for Edge Detection (Figure 9).

    ``EM`` mimics the paper's electron-microscopy inputs (fine texture,
    moderate noise), ``MSC`` is the high-noise class the paper singles
    out ("this input contains more noise than the others"), and ``SYN``
    is a clean synthetic scene.
    """
    return {
        "EM": synthetic_image(height, width, diversity=8, noise=10.0,
                              seed=seed),
        "MSC": synthetic_image(height, width, diversity=5, noise=25.0,
                               seed=seed + 1),
        "SYN": synthetic_image(height, width, diversity=3, noise=3.0,
                               seed=seed + 2),
    }
