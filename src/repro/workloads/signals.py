"""Random vectors and tensors for the FFT and DCT workloads."""

from __future__ import annotations

import numpy as np


def random_vector(length: int, seed: int = 0,
                  num_tones: int = 5) -> np.ndarray:
    """A seeded test signal: a few sinusoid tones plus noise.

    Tonal content makes spectral error metrics meaningful (a pure-noise
    signal would hide approximation error in the noise floor).
    """
    if length & (length - 1):
        raise ValueError("FFT inputs must be a power of two")
    rng = np.random.default_rng(seed)
    t = np.arange(length) / length
    signal = np.zeros(length)
    for _ in range(num_tones):
        freq = rng.integers(1, max(2, length // 4))
        amp = rng.uniform(0.5, 2.0)
        phase = rng.uniform(0, 2 * np.pi)
        signal += amp * np.sin(2 * np.pi * freq * t + phase)
    signal += rng.normal(0, 0.1, size=length)
    return signal


def random_tensor(height: int, width: int, seed: int = 0) -> np.ndarray:
    """A seeded 2-D block-structured tensor for the DCT workload."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width]
    base = 64.0 * np.sin(xs / 5.0) * np.cos(ys / 7.0) + 128.0
    return base + rng.normal(0, 4.0, size=(height, width))
