"""Synthetic protein/ligand poses for the MedusaDock workload.

MedusaDock scores candidate ligand *poses* against a protein with a
force-field energy and keeps the lowest-energy poses.  The substitution
here (DESIGN.md): seeded random atom clouds, a Lennard-Jones-style
pairwise interaction energy, and one planted low-energy pose per
"protein" so top-k selection accuracy is well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DockingInput:
    name: str
    protein: np.ndarray          # (atoms, 3) receptor atom coordinates
    poses: np.ndarray            # (poses, ligand_atoms, 3)
    seed: int

    @property
    def num_poses(self) -> int:
        return len(self.poses)


def synthetic_poses(num_poses: int = 64, protein_atoms: int = 48,
                    ligand_atoms: int = 12, seed: int = 0,
                    placement: str = "early",
                    early_fraction: float = 0.4,
                    name: str = "protein") -> DockingInput:
    """One synthetic docking problem.

    A quarter of the poses are jittered copies of a planted "good" pose
    near the receptor surface.  ``placement`` controls where the good
    poses land in the scoring order:

    * ``"early"`` — inside the first ``early_fraction`` of the scan, so
      the running minimum energy converges early.  This is the paper's
      "the lowest pose energy will be converged at an early stage for
      many proteins", the structure that makes convergence valves win
      (Figure 8);
    * ``"uniform"`` — anywhere, modelling the proteins for which eager
      selection is risky (the ~51% that fail the paper's floor check).
    """
    if placement not in ("early", "uniform"):
        raise ValueError(f"unknown placement {placement!r}")
    rng = np.random.default_rng(seed)
    protein = rng.uniform(-5.0, 5.0, size=(protein_atoms, 3))
    # The planted pose docks onto the receptor's +x face: each ligand
    # atom sits near the Lennard-Jones optimum distance (r ~ 1) outward
    # of one surface atom, clear of the rest of the cloud, giving a
    # deeply negative energy random poses essentially never reach.
    surface = protein[np.argsort(protein[:, 0])[-ligand_atoms:]]
    offsets = np.column_stack([
        np.full(ligand_atoms, 1.05),
        rng.normal(0.0, 0.05, size=ligand_atoms),
        rng.normal(0.0, 0.05, size=ligand_atoms)])
    good_pose = surface + offsets
    # Nudge any ligand atom that landed too close to a *different*
    # receptor atom outward until it is collision-free; otherwise dense
    # receptor seeds would poison the planted minimum with repulsion.
    for atom in range(ligand_atoms):
        for _ in range(64):
            distances = np.linalg.norm(protein - good_pose[atom], axis=1)
            if distances.min() >= 0.95:
                break
            good_pose[atom, 0] += 0.25
    poses = np.empty((num_poses, ligand_atoms, 3))
    num_good = max(1, num_poses // 4)
    for index in range(num_poses):
        if index < num_good:
            poses[index] = good_pose + rng.normal(
                0.0, 0.02 * (index + 1), size=(ligand_atoms, 3))
        else:
            poses[index] = rng.uniform(-8.0, 8.0, size=(ligand_atoms, 3))
    if placement == "early":
        early_cut = max(num_good, int(num_poses * early_fraction))
        early_slots = rng.permutation(early_cut)[:num_good]
        order = np.empty(num_poses, dtype=np.int64)
        order[:] = -1
        order[early_slots] = np.arange(num_good)
        rest = rng.permutation(np.arange(num_good, num_poses))
        order[order < 0] = rest
    else:
        order = rng.permutation(num_poses)
    return DockingInput(name, protein, poses[order], seed)


def pose_energy(protein: np.ndarray, pose: np.ndarray) -> float:
    """Lennard-Jones-flavoured interaction energy (lower is better)."""
    deltas = protein[:, None, :] - pose[None, :, :]
    r2 = np.maximum((deltas ** 2).sum(axis=-1), 0.25)
    inv6 = 1.0 / r2 ** 3
    return float((inv6 ** 2 - 2.0 * inv6).sum())


def energy_reference(docking: DockingInput) -> np.ndarray:
    """Precise energies of every pose."""
    return np.array([pose_energy(docking.protein, pose)
                     for pose in docking.poses])
