"""Synthetic workload generators.

The paper evaluates on AxBench images, EM cell images, random graphs,
Mnist/ImageNet and pdbbind; none of those ship here, so every input is
generated — seeded and parameterized along the axes the paper's
sensitivity studies actually vary (image noise/diversity, graph size and
density, vector length, network/batch size, pose count).  See DESIGN.md
substitution table.
"""

from .graphs import GraphInput, random_graph
from .images import (image_classes, synthetic_image,
                     synthetic_rgb_image)
from .mnist import DigitDataset, synthetic_digits
from .molecules import DockingInput, synthetic_poses
from .signals import random_tensor, random_vector

__all__ = [
    "GraphInput", "random_graph",
    "image_classes", "synthetic_image", "synthetic_rgb_image",
    "DigitDataset", "synthetic_digits",
    "DockingInput", "synthetic_poses",
    "random_tensor", "random_vector",
]
