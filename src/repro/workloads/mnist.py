"""Synthetic digit-classification data for the Neural-Network workload.

The paper tests LeNet on Mnist and VGG on ImageNet.  Offline, we plant a
seeded *teacher* linear map from class prototypes to inputs: each sample
is a noisy prototype of its class, so a reasonable network separates the
classes and "prediction accuracy" is a meaningful metric, exactly the
role Mnist plays in the paper's Figures 6/7/10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DigitDataset:
    name: str
    inputs: np.ndarray    # (samples, features)
    labels: np.ndarray    # (samples,) int class ids
    num_classes: int

    def __len__(self) -> int:
        return len(self.labels)


def synthetic_digits(samples: int = 256, features: int = 196,
                     num_classes: int = 10, noise: float = 0.35,
                     seed: int = 0, name: str = "mnist-syn") -> DigitDataset:
    """Noisy-prototype classification data.

    ``noise`` controls class overlap: 0.35 leaves the classes separable
    by a linear model at ~95%+ accuracy, so approximation-induced drops
    are visible without being drowned out.
    """
    rng = np.random.default_rng(seed)
    prototypes = rng.normal(0.0, 1.0, size=(num_classes, features))
    labels = rng.integers(0, num_classes, size=samples)
    inputs = prototypes[labels] + rng.normal(0.0, noise,
                                             size=(samples, features))
    return DigitDataset(name, inputs.astype(np.float64), labels, num_classes)
