"""Random graph generation for Bellman-Ford and Graph Coloring.

The paper's sensitivity axis is size x density (input labels like
``5K_2M`` vs ``5K_200K``): fluid gains grow with density because denser
graphs carry more per-iteration work relative to framework overheads.
The generator builds a connected weighted digraph: a random spanning
tree (guaranteeing reachability from the source) plus ``m - n + 1``
random extra edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GraphInput:
    """Edge-list representation (numpy arrays for vectorized relaxing)."""

    name: str
    num_vertices: int
    src: np.ndarray      # int32 edge sources
    dst: np.ndarray      # int32 edge destinations
    weight: np.ndarray   # float64 positive edge weights
    seed: int

    @property
    def num_edges(self) -> int:
        return len(self.src)

    @property
    def density(self) -> float:
        return self.num_edges / max(1, self.num_vertices)

    def adjacency_lists(self):
        """Neighbour lists (used by graph coloring)."""
        neighbours = [[] for _ in range(self.num_vertices)]
        for s, d in zip(self.src.tolist(), self.dst.tolist()):
            if s != d:
                neighbours[s].append(d)
                neighbours[d].append(s)
        return [sorted(set(adjacent)) for adjacent in neighbours]

    # -- interop ------------------------------------------------------------

    @classmethod
    def from_networkx(cls, graph, weight: str = "weight",
                      default_weight: float = 1.0,
                      name: str = "networkx") -> "GraphInput":
        """Build a :class:`GraphInput` from a networkx (di)graph.

        Node labels are compacted to 0..n-1 in sorted order; undirected
        graphs contribute one directed edge per direction.
        """
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        src, dst, weights = [], [], []
        for u, v, attributes in graph.edges(data=True):
            w = float(attributes.get(weight, default_weight))
            src.append(index[u])
            dst.append(index[v])
            weights.append(w)
            if not graph.is_directed():
                src.append(index[v])
                dst.append(index[u])
                weights.append(w)
        return cls(name, len(nodes),
                   np.asarray(src, dtype=np.int32),
                   np.asarray(dst, dtype=np.int32),
                   np.asarray(weights, dtype=float), seed=0)

    def to_networkx(self):
        """Export as a weighted :class:`networkx.DiGraph`."""
        import networkx

        graph = networkx.DiGraph()
        graph.add_nodes_from(range(self.num_vertices))
        for s, d, w in zip(self.src.tolist(), self.dst.tolist(),
                           self.weight.tolist()):
            if graph.has_edge(s, d):
                graph[s][d]["weight"] = min(graph[s][d]["weight"], w)
            else:
                graph.add_edge(s, d, weight=w)
        return graph


def random_graph(num_vertices: int, num_edges: int, seed: int = 0,
                 max_weight: float = 10.0,
                 name: str = "") -> GraphInput:
    """Connected random digraph with ``num_edges`` total edges."""
    if num_edges < num_vertices - 1:
        raise ValueError("need at least n-1 edges for connectivity")
    rng = np.random.default_rng(seed)

    # Spanning tree rooted at 0: vertex i (>0) gets an incoming edge from
    # a uniformly random earlier vertex.
    tree_src = rng.integers(0, np.arange(1, num_vertices),
                            dtype=np.int64) if num_vertices > 1 else \
        np.empty(0, dtype=np.int64)
    tree_dst = np.arange(1, num_vertices, dtype=np.int64)

    extra = num_edges - (num_vertices - 1)
    extra_src = rng.integers(0, num_vertices, size=extra)
    extra_dst = rng.integers(0, num_vertices, size=extra)

    src = np.concatenate([tree_src, extra_src]).astype(np.int32)
    dst = np.concatenate([tree_dst, extra_dst]).astype(np.int32)
    weight = rng.uniform(1.0, max_weight, size=len(src))
    label = name or f"{num_vertices}V_{num_edges}E"
    return GraphInput(label, num_vertices, src, dst, weight, seed)


def bellman_ford_reference(graph: GraphInput, source: int = 0) -> np.ndarray:
    """Precise single-source shortest paths (full |V|-1 iterations)."""
    dist = np.full(graph.num_vertices, np.inf)
    dist[source] = 0.0
    for _ in range(graph.num_vertices - 1):
        relaxed = dist[graph.src] + graph.weight
        before = dist.copy()
        np.minimum.at(dist, graph.dst, relaxed)
        if np.array_equal(before, dist):
            break
    return dist


def greedy_coloring_reference(graph: GraphInput) -> np.ndarray:
    """Jones-Plassmann style round-based coloring (the paper's baseline
    is itself approximate; this is the precise execution of that
    algorithm, priorities seeded from the graph seed)."""
    rng = np.random.default_rng(graph.seed + 12345)
    priority = rng.permutation(graph.num_vertices)
    neighbours = graph.adjacency_lists()
    colors = np.full(graph.num_vertices, -1, dtype=np.int64)
    while (colors < 0).any():
        selected = []
        for vertex in range(graph.num_vertices):
            if colors[vertex] >= 0:
                continue
            if all(colors[other] >= 0 or
                   priority[other] < priority[vertex]
                   for other in neighbours[vertex]):
                selected.append(vertex)
        for vertex in selected:
            used = {colors[other] for other in neighbours[vertex]
                    if colors[other] >= 0}
            color = 0
            while color in used:
                color += 1
            colors[vertex] = color
    return colors
