"""Error metrics used by the evaluation (paper Section 7.1)."""

from .error import (coloring_error, kmeans_objective, normalized_accuracy,
                    normalized_mse, normalized_path_error,
                    prediction_agreement, psnr, topk_overlap)

__all__ = [
    "coloring_error", "kmeans_objective", "normalized_accuracy",
    "normalized_mse", "normalized_path_error", "prediction_agreement",
    "psnr", "topk_overlap",
]
