"""Error metrics, one per application class (paper Section 7.1).

===============  =========================================================
Application      Metric
===============  =========================================================
K-means          summed squared distance of every pixel to its centroid
Bellman-Ford     average path length error, normalized per destination
Graph Coloring   number of colors, normalized to the (already
                 approximate) baseline algorithm's count
Edge Detection   PSNR of the fluid edge map against the precise one
FFT / DCT        normalized MSE of the output
NN / MedusaDock  prediction accuracy / top-k selection agreement
===============  =========================================================

The cross-application "normalized accuracy" of Figure 6 is
``abs(fluid_metric - base_metric) / base_metric``.
"""

from __future__ import annotations

import numpy as np


def normalized_accuracy(fluid_metric: float, base_metric: float) -> float:
    """The paper's normalization: ABS(fluid - base) / base."""
    if base_metric == 0:
        return abs(fluid_metric - base_metric)
    return abs(fluid_metric - base_metric) / abs(base_metric)


def kmeans_objective(pixels: np.ndarray, assignments: np.ndarray,
                     centroids: np.ndarray) -> float:
    """Sum over pixels of squared Euclidean distance to their centroid."""
    return float(((pixels - centroids[assignments]) ** 2).sum())


def normalized_path_error(dist: np.ndarray,
                          dist_reference: np.ndarray) -> float:
    """Average relative shortest-path error over reachable destinations."""
    reachable = np.isfinite(dist_reference) & (dist_reference > 0)
    if not reachable.any():
        return 0.0
    approx = np.where(np.isfinite(dist[reachable]), dist[reachable],
                      dist_reference[reachable] * 10.0)
    rel = np.abs(approx - dist_reference[reachable]) / \
        dist_reference[reachable]
    return float(rel.mean())


def coloring_error(colors: np.ndarray,
                   colors_reference: np.ndarray) -> float:
    """Relative growth in the number of colors (spectral number)."""
    used = int(colors.max()) + 1
    used_reference = int(colors_reference.max()) + 1
    return normalized_accuracy(used, used_reference)


def psnr(image: np.ndarray, reference: np.ndarray,
         peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (higher is better)."""
    mse = float(((image - reference) ** 2).mean())
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def normalized_mse(output: np.ndarray, reference: np.ndarray) -> float:
    """Mean squared error normalized by the reference signal power."""
    power = float((np.abs(reference) ** 2).mean())
    mse = float((np.abs(output - reference) ** 2).mean())
    return mse / power if power > 0 else mse


def prediction_agreement(predictions: np.ndarray,
                         reference: np.ndarray) -> float:
    """Fraction of samples classified identically (NN accuracy proxy)."""
    if len(predictions) == 0:
        return 1.0
    return float((predictions == reference).mean())


def topk_overlap(selected, selected_reference) -> float:
    """|intersection| / k for pose selection (MedusaDock accuracy)."""
    chosen = set(int(i) for i in selected)
    reference = set(int(i) for i in selected_reference)
    if not reference:
        return 1.0
    return len(chosen & reference) / len(reference)
