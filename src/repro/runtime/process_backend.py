"""The true-parallel backend: Fluid task bodies in a process pool.

CPython's GIL serializes the thread backend's task bodies, so only the
virtual-time simulator could demonstrate the paper's latency numbers.
This backend runs bodies on real cores: a pool of forked worker
processes *does* the work while the parent process keeps *deciding* —
every valve check, Figure-5 transition and re-execution decision goes
through the same :class:`~repro.core.guard.Coordinator` as the
simulator and the thread backend, serialized in the parent's single
control loop.

Division of labour
------------------

parent (control loop)
    Region admission, start-valve checks, dispatch, the whole guard
    state machine, end-quality evaluation, early termination,
    modulation.  Owns the authoritative ``FluidData``/``Count`` objects.

workers (forked processes)
    Execute one task body at a time against their own forked copies of
    the region objects.  Inputs/outputs/counts are (re)installed from
    parent snapshots at dispatch; count updates and payload writes are
    streamed back in chunk-boundary batches.

Data crosses the boundary as picklable snapshots
(:func:`~repro.core.data.export_payload`); large numpy payloads ride
shared-memory buffers instead of the pickle stream.  Workers check a
shared cancellation flag at every chunk boundary, giving the same
cooperative early-termination the other backends have.

Granularity: where the thread backend publishes every count update and
element write immediately, a worker publishes at chunk boundaries,
batched to at most one flush per ``flush_interval`` seconds.  A
concurrent consumer therefore sees the producer's payload as of the
last flush — a coarser but still monotonically-growing prefix, which is
exactly the relaxation Fluid licenses.

Requirements and limits (see docs/runtime-semantics.md for the matrix):

* ``fork`` start method (POSIX only) — bodies are closures, inherited
  rather than pickled;
* honest guard tuples — a body may only read/write the cells declared
  in its ``inputs``/``outputs`` (already a Fluid rule; here it is what
  makes snapshot installation correct);
* each data cell needs its own payload object (two cells aliasing one
  buffer would overwrite each other's flushes);
* dynamic task graphs (``ctx.spawn``) are not supported — the spawned
  closure would live in the worker only.
"""

from __future__ import annotations

import logging
import os
import queue as queue_module
import time
import traceback
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.count import RecordingSink
from ..core.data import import_payload, payload_nbytes
from ..core.errors import SchedulerError, TaskBodyError
from ..core.guard import Coordinator, GuardHost, ModulationPolicy
from ..core.region import FluidRegion
from ..core.states import TaskState
from ..core.task import FluidTask, TaskContext
from .context import RegionRun, RunContext
from .executor import Executor, RunResult, emit_memo_summary

#: Worker -> parent message kinds.
_PROGRESS, _FINISHED, _CANCELLED, _ERROR = "progress", "finished", "cancelled", "error"

logger = logging.getLogger(__name__)


class ProcessExecutor(Executor, GuardHost):
    """Executes regions with task bodies on a multiprocessing pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    flush_interval:
        Minimum seconds between a worker's mid-run publications of count
        updates and payload snapshots.  Smaller values tighten the
        approximation granularity at the cost of more IPC.
    poll_interval / timeout:
        Legacy control-loop wakeup period (now only the timed-``get``
        granularity of the non-event fallback path) and the overall
        wall-clock deadline, as in
        :class:`~repro.runtime.thread_backend.ThreadExecutor`.
    fallback_interval:
        Upper bound on one control-loop block.  The loop is woken by
        events — worker messages arriving on the outbox, or a busy
        worker's process sentinel closing — so this only bounds how
        stale the deadline check can get; default
        ``max(poll_interval * 20, 0.1)``.
    """

    def __init__(self, workers: Optional[int] = None,
                 modulation: Optional[ModulationPolicy] = None,
                 poll_interval: float = 0.005,
                 fallback_interval: Optional[float] = None,
                 timeout: float = 60.0,
                 cancel_first_runs: bool = False,
                 flush_interval: float = 0.01,
                 policy: Optional[object] = None,
                 telemetry: Optional[object] = None,
                 scheduler: Optional[object] = None,
                 autotune: Optional[object] = None):
        if workers is not None and workers < 1:
            raise SchedulerError("need at least one worker process")
        self.workers = workers or (os.cpu_count() or 1)
        self.modulation = modulation
        # Closed-loop SLO autotuning (repro.tuning): parent-side, like
        # the guards — valves live in the parent, so actuations need no
        # IPC.  A tuner needs a bus, hence the lightweight Telemetry.
        # Imported lazily for the same cycle reason as repro.sched.
        from ..tuning import make_autotuner
        self.autotuner = make_autotuner(autotune)
        if self.autotuner is not None and telemetry is None:
            from ..telemetry import Telemetry
            telemetry = Telemetry(metrics=False, chrome=False)
        #: Optional repro.telemetry.Telemetry; every publish point is in
        #: the parent control loop, which is single-threaded, so the bus
        #: serialization contract holds.  Workers fork before any region
        #: launches and never see the bus.
        self.telemetry = telemetry
        self._bus = telemetry.bus if telemetry is not None else None
        if self.autotuner is not None:
            self.autotuner.bind(self._bus)
        self.cancel_first_runs = cancel_first_runs
        self.poll_interval = poll_interval
        self.fallback_interval = (fallback_interval
                                  if fallback_interval is not None
                                  else max(poll_interval * 20, 0.1))
        self.timeout = timeout
        self.flush_interval = flush_interval
        #: SchedLab schedule policy: chooses which ready task is
        #: dispatched to a free worker, and orders the Coordinator's
        #: signal fan-out (all in the parent's control loop, so these
        #: decisions are deterministic even though body timing is not).
        self.policy = policy
        #: repro.sched discipline ordering the ready queue; the default
        #: FCFS reproduces the historical dispatch order (including the
        #: SchedLab "dispatch"-point policy choice) bit for bit.
        #: Imported lazily: repro.sched pulls in repro.telemetry, which
        #: reaches back into repro.runtime at import time.
        from ..sched import make_scheduler

        self.scheduler = make_scheduler(scheduler).bind(
            policy=policy, bus=self._bus, point="dispatch",
            workers=self.workers)
        # Per-run state (submissions, completion bookkeeping, telemetry
        # and autotuner binding) lives in a RunContext, shared shape
        # with the other backends; this single-shot executor owns one.
        self._ctx = RunContext(
            telemetry=telemetry, autotuner=self.autotuner,
            modulation=modulation, cancel_first_runs=cancel_first_runs,
            label="process-run")
        self._task_run: Dict[int, RegionRun] = {}
        self._task_index: Dict[int, Tuple[int, int]] = {}
        self._queued: set = set()
        self._idle: List[int] = []
        self._slot_task: Dict[int, FluidTask] = {}
        #: Delta-aware payload export: per slot, the parent-side version
        #: of each cell as of its last shipment to that worker.  A cell
        #: whose version is unchanged is skipped at dispatch — the
        #: worker's forked copy already holds identical content.
        self._shipped: Dict[int, Dict[Tuple[int, str], int]] = {}
        self._epoch = 0.0
        self._started = False
        self._error: Optional[Exception] = None
        self._context = None
        self._processes: List = []
        self._inboxes: List = []
        self._outbox = None
        self._cancel_flags = None

    # ------------------------------------------------------------- public

    @property
    def _runs(self) -> List[RegionRun]:
        """Per-run region bookkeeping (``sync()`` duck-types on it)."""
        return self._ctx.runs

    def submit(self, region: FluidRegion,
               after: Iterable[FluidRegion] = ()) -> FluidRegion:
        self._ctx.submit(region, tuple(after))
        return region

    def run(self) -> RunResult:
        if self._started:
            raise SchedulerError("executors are single-shot; build a new one")
        self._started = True
        if not self._runs:
            return RunResult(0.0, [])
        self._start_pool()
        self._epoch = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.bind_clock(self.now, 1e6)
        deadline = self._epoch + self.timeout
        try:
            while True:
                self._try_launches()
                self._check_start_valves()
                self._dispatch_ready()
                if self._error is not None:
                    raise self._error
                if all(run.done for run in self._runs):
                    break
                self._drain_events()
                self._check_workers()
                if time.perf_counter() > deadline:
                    raise SchedulerError(
                        f"process backend timed out after {self.timeout}s: "
                        + self._diagnose())
        finally:
            self._shutdown()
            if self.telemetry is not None:
                self.telemetry.record_autotuner(self.autotuner)
                self.telemetry.record_scheduler(self.scheduler)
                self.telemetry.run_finished(self.now(), self.workers,
                                            now=self.now())
        makespan = time.perf_counter() - self._epoch
        return RunResult(makespan, [run.region for run in self._runs])

    # ---------------------------------------------------------- GuardHost

    def now(self) -> float:
        return time.perf_counter() - self._epoch

    def schedule_run(self, task: FluidTask) -> None:
        self._enqueue(task)

    def request_cancel(self, task: FluidTask) -> None:
        super().request_cancel(task)
        for slot, running in self._slot_task.items():
            if running is task:
                self._cancel_flags[slot] = 1

    def task_completed(self, task: FluidTask) -> None:
        run = self._task_run[id(task)]
        if not run.done and run.region.complete:
            run.done = True
            run.region.stats.makespan = self.now() - run.launch_time
            for sibling in run.region.tasks:
                sibling.stats.finish(self.now())
            if self._bus is not None:
                self._bus.emit(
                    "sched", run.region.name, "", "region-done",
                    data={"detail":
                          f"makespan={run.region.stats.makespan:.3f}"})
                emit_memo_summary(self._bus, run.region)

    def task_failed(self, task: FluidTask, error: Exception) -> None:
        if self._error is None:
            self._error = error

    def admit_dynamic_task(self, region: FluidRegion,
                           task: FluidTask) -> None:  # pragma: no cover
        raise SchedulerError(
            "the process backend does not support dynamic task graphs: "
            "a spawned body would exist only in the worker process")

    # ----------------------------------------------------- pool lifecycle

    def _start_pool(self) -> None:
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise SchedulerError(
                "the process backend needs the 'fork' start method "
                "(task bodies are closures and cannot be pickled); "
                "use the thread backend on this platform")
        context = multiprocessing.get_context("fork")
        self._context = context
        self._outbox = context.Queue()
        self._cancel_flags = context.Array("b", self.workers, lock=False)
        for slot in range(self.workers):
            inbox = context.Queue()
            process = context.Process(
                target=self._worker_main, args=(slot, inbox),
                name=f"fluid-worker-{slot}", daemon=True)
            self._inboxes.append(inbox)
            self._processes.append(process)
        # Fork only after every queue exists and before the first put
        # spawns a feeder thread (forking a multi-threaded parent is
        # where fork-based pools go wrong).
        for process in self._processes:
            process.start()
        self._idle = list(range(self.workers))

    def _shutdown(self) -> None:
        for inbox in self._inboxes:
            try:
                inbox.put_nowait(None)
            except (ValueError, OSError, queue_module.Full):
                pass  # queue already closed/broken or worker gone
            except Exception:
                logger.exception("unexpected error sending worker shutdown")
        # One deadline covers the whole pool: joining N workers
        # sequentially with a per-process timeout used to stall shutdown
        # for N x timeout when the pool was wedged.  Workers that miss
        # the graceful window are terminated in one pass, then killed in
        # one pass, each pass sharing a single (shorter) deadline.
        self._join_all(self._processes, 0.5)
        stragglers = [p for p in self._processes if p.is_alive()]
        for process in stragglers:
            process.terminate()
        self._join_all(stragglers, 0.5)
        stubborn = [p for p in stragglers if p.is_alive()]
        for process in stubborn:  # pragma: no cover - stubborn worker
            process.kill()
        self._join_all(stubborn, 0.5)
        self._discard_pending_events()
        for channel in self._inboxes + ([self._outbox] if self._outbox else []):
            try:
                channel.cancel_join_thread()
                channel.close()
            except (ValueError, OSError):
                pass  # already closed
            except Exception:
                logger.exception("unexpected error closing worker queue")

    @staticmethod
    def _join_all(processes, timeout: float) -> None:
        """Join ``processes`` under one shared deadline (not per-join)."""
        deadline = time.perf_counter() + timeout
        for process in processes:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            process.join(timeout=remaining)

    def _discard_pending_events(self) -> None:
        """Drop unapplied events, releasing any shared-memory payloads."""
        if self._outbox is None:
            return
        while True:
            try:
                message = self._outbox.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                return
            if message and message[0] in (_PROGRESS, _FINISHED, _CANCELLED):
                for handle in message[5].values():
                    handle.discard()

    def _check_workers(self) -> None:
        for slot, task in list(self._slot_task.items()):
            process = self._processes[slot]
            if not process.is_alive():
                run = self._task_run[id(task)]
                raise SchedulerError(
                    f"worker {slot} died (exit code {process.exitcode}) "
                    f"while running {run.region.name}/{task.name}")

    # ------------------------------------------------- admission/dispatch

    def _try_launches(self) -> None:
        for run in self._runs:
            if run.launched:
                continue
            if any(not self._run_for(dep).done for dep in run.after):
                continue
            run.launched = True
            self._launch_region(run)

    def _run_for(self, region: FluidRegion) -> RegionRun:
        return self._ctx.run_for(region)

    def _launch_region(self, run: RegionRun) -> None:
        region = run.region
        graph = region.finalize()
        region.telemetry = self._bus
        run.launch_time = self.now()
        run.coordinator = Coordinator(self, graph, modulation=self.modulation,
                                      cancel_first_runs=self.cancel_first_runs,
                                      policy=self.policy, telemetry=self._bus)
        if self.autotuner is not None:
            # Parent-side, before any task reaches START_CHECK, so the
            # inherited position lands before the first valve verdict.
            self.autotuner.attach_region(region)
        if self._bus is not None:
            self._bus.emit("sched", region.name, "", "launch",
                           data={"detail": f"{len(graph)} tasks"})
        for task_index, task in enumerate(region.tasks):
            self._task_run[id(task)] = run
            self._task_index[id(task)] = (run.index, task_index)
            task.stats.enter(TaskState.INIT, self.now())
            task.transition(TaskState.START_CHECK, self.now())

    def _check_start_valves(self) -> None:
        for run in self._runs:
            if not run.launched or run.done:
                continue
            for task in run.region.tasks:
                if task.state is TaskState.START_CHECK and \
                        id(task) not in self._queued and \
                        task.start_valves_satisfied():
                    self._enqueue(task)

    def _enqueue(self, task: FluidTask) -> None:
        if id(task) not in self._queued:
            self._queued.add(id(task))
            # Never sheddable: dropping a Fluid task would deadlock its
            # region, so a bounded scheduler parks overflow instead.
            self.scheduler.submit(task, now=self.now())

    def _dispatch_ready(self) -> None:
        while self._idle and self.scheduler.pending():
            # _send_run pops the *last* idle slot, so that is the worker
            # hint a work-stealing discipline should see.
            task = self.scheduler.pick(now=self.now(), worker=self._idle[-1])
            if task is None:
                break
            self._queued.discard(id(task))
            if task.state not in (TaskState.START_CHECK, TaskState.WAITING,
                                  TaskState.DEP_STALLED):
                continue  # completed (or started) while queued
            if self._skip_pointless_rerun(task):
                continue
            if task.state is TaskState.START_CHECK and \
                    not task.start_valves_satisfied():
                continue  # non-monotone valve flipped back off
            self._send_run(task)

    def _skip_pointless_rerun(self, task: FluidTask) -> bool:
        """Early termination before the body even starts (Section 6.1)."""
        if not task.is_leaf and \
                task.state in (TaskState.WAITING, TaskState.DEP_STALLED) and \
                task.descendants_complete():
            self._task_run[id(task)].coordinator.skip_rerun(task)
            return True
        return False

    def _send_run(self, task: FluidTask) -> None:
        slot = self._idle.pop()
        region_index, task_index = self._task_index[id(task)]
        region = self._runs[region_index].region
        self._slot_task[slot] = task
        self._cancel_flags[slot] = 0
        task.transition(TaskState.RUNNING, self.now())
        task.begin_run()
        shipped = self._shipped.setdefault(slot, {})
        payloads = {}
        skipped = 0
        for data in tuple(task.spec.inputs) + tuple(task.spec.outputs):
            if data.name in payloads:
                continue
            key = (region_index, data.name)
            if shipped.get(key) == data.version:
                # Unchanged since the last shipment to this worker; its
                # copy already holds identical bytes.  (Cells a body ran
                # against on this slot are forgotten when the run ends,
                # so worker-local dirt can never satisfy this test.)
                skipped += 1
                continue
            payloads[data.name] = data.export_payload()
            shipped[key] = data.version
        counts = {name: count.export_state()
                  for name, count in region.counts.items()}
        self._inboxes[slot].put(
            ("run", region_index, task_index, task.run_index, payloads, counts))
        if self._bus is not None:
            self._bus.emit("sched", region.name, task.name, "run",
                           data={"detail": f"attempt={task.run_index}"})
            self._bus.emit("worker", region.name, task.name, "dispatch",
                           data={"slot": slot})
            self._bus.emit(
                "payload", region.name, task.name, "to-worker",
                data={"bytes": sum(payload_nbytes(handle)
                                   for handle in payloads.values()),
                      "cells": len(payloads), "skipped": skipped})
        self._maybe_kill_worker(region, task, slot)

    def _maybe_kill_worker(self, region: FluidRegion, task: FluidTask,
                           slot: int) -> None:
        """SchedLab fault injection: SIGKILL the worker a task was just
        dispatched to, exercising the parent's dead-worker detection
        (``_check_workers`` surfaces it as a SchedulerError)."""
        fault_plan = getattr(region, "fault_plan", None)
        if fault_plan is None or not fault_plan.should_kill_worker(task):
            return
        import signal

        process = self._processes[slot]
        if process.is_alive() and process.pid:
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=1.0)

    # ----------------------------------------------------- event handling

    def _drain_events(self) -> None:
        if not self._await_activity():
            return
        while True:
            try:
                message = self._outbox.get_nowait()
            except queue_module.Empty:
                return
            self._apply_event(message)

    def _await_activity(self) -> bool:
        """Block until something happened: a worker message landed on the
        outbox, or a busy worker's process died (its sentinel became
        ready).  Event-driven — the old timed-``get`` spin remains only
        as a fallback for interpreters whose ``Queue`` lacks the
        ``_reader`` connection.  Returns True when the outbox may hold
        messages; the ``fallback_interval`` bound keeps the caller's
        deadline check live even if no event ever arrives."""
        reader = getattr(self._outbox, "_reader", None)
        if reader is None:  # pragma: no cover - non-CPython Queue layout
            try:
                message = self._outbox.get(timeout=self.poll_interval)
            except queue_module.Empty:
                return False
            self._apply_event(message)
            return True
        from multiprocessing.connection import wait as connection_wait

        sentinels = [self._processes[slot].sentinel
                     for slot in self._slot_task]
        try:
            ready = connection_wait([reader] + sentinels,
                                    timeout=self.fallback_interval)
        except OSError:  # pragma: no cover - raced a worker teardown
            return False
        return reader in ready

    def _apply_event(self, message: Tuple) -> None:
        kind, slot, region_index, task_index = message[:4]
        run = self._runs[region_index]
        task = run.region.tasks[task_index]
        if self._bus is not None:
            if kind in (_PROGRESS, _FINISHED) and message[5]:
                self._bus.emit(
                    "payload", run.region.name, task.name, "from-worker",
                    data={"bytes": sum(payload_nbytes(handle)
                                       for handle in message[5].values()),
                          "cells": len(message[5])})
            if kind in (_FINISHED, _CANCELLED, _ERROR):
                self._bus.emit("worker", run.region.name, task.name, "free",
                               data={"slot": slot})
        if kind == _PROGRESS:
            if task.state is TaskState.COMPLETE:
                # Completed by a cascade while the body was still
                # running: a late flush must not clear `final` on cells
                # nobody will produce again.
                for handle in message[5].values():
                    handle.discard()
            else:
                self._apply_payloads(run.region, message[5])
            self._replay_counts(run.region, message[4])
            return
        # Terminal events give the worker slot back.  Forget the run's
        # output cells from the slot's shipped-version memo: the body
        # mutated its local copies, and a cancelled/errored run dirties
        # them *without* a parent-side version bump, so equality of
        # versions must not be trusted for them on the next dispatch.
        shipped = self._shipped.get(slot)
        if shipped is not None:
            for data in task.spec.outputs:
                shipped.pop((region_index, data.name), None)
        self._slot_task.pop(slot, None)
        self._cancel_flags[slot] = 0
        self._idle.append(slot)
        if kind == _ERROR:
            exc_repr, tb_text = message[4], message[5]
            cause = RuntimeError(f"{exc_repr}\n{tb_text}")
            error = TaskBodyError(run.region.name, task.name,
                                  task.run_index, cause)
            error.__cause__ = cause
            run.coordinator.body_failed(task, error)
            return
        if task.state is TaskState.COMPLETE:
            # Completed concurrently by a cascade while the body was
            # still running remotely; its output will never be consumed,
            # but the count observations are real — replay them.
            for handle in message[5].values():
                handle.discard()
            self._replay_counts(run.region, message[4])
            return
        if kind == _FINISHED:
            # Order matters (mirrors the simulator's _body_done): install
            # the final payloads, mark outputs final via body_finished,
            # and only then publish the last count batch, so a consumer
            # whose valve flips on the final update observes final data.
            self._apply_payloads(run.region, message[5])
            task.transition(TaskState.END_CHECK, self.now())
            run.coordinator.body_finished(task)
            self._replay_counts(run.region, message[4])
        elif kind == _CANCELLED:
            for handle in message[5].values():
                handle.discard()
            run.coordinator.body_cancelled(task)
            self._replay_counts(run.region, message[4])

    def _apply_payloads(self, region: FluidRegion, payloads: Dict) -> None:
        for name, handle in payloads.items():
            region.datas[name].apply_payload(import_payload(handle))

    def _replay_counts(self, region: FluidRegion,
                       records: List[Tuple[str, Any]]) -> None:
        for name, value in records:
            region.counts[name].replay(value)

    # ------------------------------------------------------------- worker

    def _worker_main(self, slot: int, inbox) -> None:
        """Entry point of one forked worker: run bodies, stream updates."""
        sink = RecordingSink()
        prepared: set = set()
        while True:
            message = inbox.get()
            if message is None:
                return
            _kind, region_index, task_index, run_index, payloads, counts = \
                message
            region = self._runs[region_index].region
            if region_index not in prepared:
                # The worker's forked copy finalizes independently;
                # build() must therefore be structurally deterministic
                # (the graphs in this repo all are).
                region.finalize()
                region.bind_sink(sink)
                prepared.add(region_index)
            for name, (value, updates) in counts.items():
                region.counts[name].install_state(value, updates)
            for name, handle in payloads.items():
                region.datas[name].apply_payload(import_payload(handle),
                                                 bump=False)
            task = region.tasks[task_index]
            self._worker_run_body(slot, region_index, task_index, run_index,
                                  task, sink)

    def _worker_run_body(self, slot: int, region_index: int, task_index: int,
                         run_index: int, task: FluidTask,
                         sink: RecordingSink) -> None:
        outbox = self._outbox
        task.run_index = run_index
        task.cancel_requested = False
        task.state = TaskState.RUNNING  # worker-local; parent is authoritative
        sink.drain()  # drop anything buffered outside a body
        versions = {data.name: data.version for data in task.spec.outputs}
        last_flush = time.monotonic()
        try:
            generator = task.make_generator(TaskContext(task))
            for _cost in generator:
                if self._cancel_flags[slot]:
                    task.cancel_requested = True
                    generator.close()
                    outbox.put((_CANCELLED, slot, region_index, task_index,
                                sink.drain(), {}))
                    return
                now = time.monotonic()
                if now - last_flush >= self.flush_interval:
                    last_flush = now
                    payloads = {}
                    for data in task.spec.outputs:
                        if data.version != versions[data.name]:
                            versions[data.name] = data.version
                            payloads[data.name] = data.export_payload()
                    if sink.buffer or payloads:
                        outbox.put((_PROGRESS, slot, region_index, task_index,
                                    sink.drain(), payloads))
        except Exception as exc:
            outbox.put((_ERROR, slot, region_index, task_index,
                        repr(exc), traceback.format_exc()))
            return
        payloads = {data.name: data.export_payload()
                    for data in task.spec.outputs}
        outbox.put((_FINISHED, slot, region_index, task_index,
                    sink.drain(), payloads))

    # ------------------------------------------------------------- debug

    def _diagnose(self) -> str:
        lines = []
        for run in self._runs:
            if run.done:
                continue
            for task in run.region.tasks:
                if task.state is not TaskState.COMPLETE:
                    lines.append(f"{run.region.name}/{task.name}={task.state}")
        busy = ", ".join(f"worker{slot}={task.name}"
                         for slot, task in self._slot_task.items())
        return "; ".join(lines) + (f" [busy: {busy}]" if busy else "")
